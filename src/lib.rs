//! # SDVM — The Self Distributing Virtual Machine
//!
//! A Rust reproduction of *"The SDVM — an approach for future adaptive
//! computer clusters"* (Haase, Eschmann, Waldschmidt; IPPS 2005).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`types`] — ids, addresses, values, errors, policies
//! - [`wire`] — the SDMessage binary wire format
//! - [`crypto`] — the security-manager substrate (ChaCha20, HMAC-SHA-256)
//! - [`net`] — transports (in-memory with fault injection, TCP)
//! - [`cdag`] — controlflow/dataflow allocation graphs and critical paths
//! - [`core`] — the SDVM daemon: managers, attraction memory, scheduling,
//!   checkpointing, and the program-building API
//! - [`sim`] — the discrete-event cluster simulator (virtual time)
//! - [`apps`] — example applications (the paper's prime search and more)
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.
//!
//! # Example
//!
//! A two-site cluster computing a parallel sum through dataflow-fired
//! microthreads:
//!
//! ```
//! use sdvm::core::{AppBuilder, InProcessCluster, SiteConfig};
//! use sdvm::types::Value;
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cluster = InProcessCluster::new(2, SiteConfig::default())?;
//!
//! let mut app = AppBuilder::new("doubles");
//! let double = app.thread("double", |ctx| {
//!     let n = ctx.param(0)?.as_u64()?;
//!     let slot = ctx.param(1)?.as_u64()? as u32;
//!     ctx.send(ctx.target(0)?, slot, Value::from_u64(n * 2))
//! });
//! let sum = app.thread("sum", |ctx| {
//!     let mut acc = 0;
//!     for i in 0..ctx.param_count() as u32 {
//!         acc += ctx.param(i)?.as_u64()?;
//!     }
//!     ctx.send(ctx.target(0)?, 0, Value::from_u64(acc))
//! });
//!
//! let handle = cluster.site(0).launch(&app, |ctx, result| {
//!     let reducer = ctx.create_frame(sum, 4, vec![result], Default::default());
//!     for i in 0..4 {
//!         let w = ctx.create_frame(double, 2, vec![reducer], Default::default());
//!         ctx.send(w, 0, Value::from_u64(i + 1))?;
//!         ctx.send(w, 1, Value::from_u64(i))?;
//!     }
//!     Ok(())
//! })?;
//!
//! let result = handle.wait(Duration::from_secs(30))?;
//! assert_eq!(result.as_u64()?, 2 * (1 + 2 + 3 + 4));
//! # Ok(())
//! # }
//! ```

pub use sdvm_apps as apps;
pub use sdvm_cdag as cdag;
pub use sdvm_core as core;
pub use sdvm_crypto as crypto;
pub use sdvm_net as net;
pub use sdvm_sim as sim;
pub use sdvm_types as types;
pub use sdvm_wire as wire;

pub use sdvm_types::{SdvmError, SdvmResult};
