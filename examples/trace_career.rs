//! Figures 4 & 5 of the paper, reproduced as a machine-checkable event
//! trace: the *execution cycle* through the managers and the *career of
//! microframes* — incomplete → executable → ready → executed — including
//! a migration via help request on a 2-site cluster.
//!
//! ```text
//! cargo run --release --example trace_career
//! ```

use sdvm::core::{AppBuilder, InProcessCluster, SiteConfig, TraceEvent, TraceLog};
use sdvm::types::Value;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceLog::new();
    let cluster =
        InProcessCluster::with_configs(vec![SiteConfig::default(); 2], Some(trace.clone()))?;

    let mut app = AppBuilder::new("career-demo");
    let work = app.thread("work", |ctx| {
        std::thread::sleep(Duration::from_millis(15));
        let n = ctx.param(0)?.as_u64()?;
        let slot = ctx.param(1)?.as_u64()? as u32;
        ctx.send(ctx.target(0)?, slot, Value::from_u64(n * 10))
    });
    let join = app.thread("join", |ctx| {
        let mut acc = 0;
        for i in 0..ctx.param_count() as u32 {
            acc += ctx.param(i)?.as_u64()?;
        }
        ctx.send(ctx.target(0)?, 0, Value::from_u64(acc))
    });

    let n = 12usize;
    let handle = cluster.site(0).launch(&app, |ctx, result| {
        let j = ctx.create_frame(join, n, vec![result], Default::default());
        for i in 0..n {
            let w = ctx.create_frame(work, 2, vec![j], Default::default());
            ctx.send(w, 0, Value::from_u64(i as u64))?;
            ctx.send(w, 1, Value::from_u64(i as u64))?;
        }
        Ok(())
    })?;
    handle.wait(Duration::from_secs(60))?;

    // Figure 5: the career of each microframe.
    println!("=== career of microframes (Fig. 5) ===");
    let created: Vec<_> = trace
        .filter(|e| matches!(e, TraceEvent::FrameCreated { slots: 2, .. }))
        .into_iter()
        .filter_map(|e| match e {
            TraceEvent::FrameCreated { frame, .. } => Some(frame),
            _ => None,
        })
        .collect();
    for frame in &created {
        println!("{frame}: {}", trace.career_of(*frame).join(" → "));
    }
    let migrated = created
        .iter()
        .filter(|f| trace.career_of(**f).contains(&"migrated".to_string()))
        .count();
    println!(
        "({migrated} of {} frames migrated to the other site via help requests)",
        created.len()
    );

    // Figure 4: one frame's walk through the managers.
    println!();
    println!("=== execution-cycle manager hops (Fig. 4/6), first 14 events ===");
    for e in trace
        .filter(|e| matches!(e, TraceEvent::MessageHop { .. }))
        .into_iter()
        .take(14)
    {
        if let TraceEvent::MessageHop {
            site,
            manager,
            payload,
            outgoing,
            ..
        } = e
        {
            let dir = if outgoing { "→" } else { "←" };
            println!("{site} {dir} [{manager}] {payload}");
        }
    }
    Ok(())
}
