//! The ops console: a chaos-stressed cluster observed end to end
//! through its *live* ops plane — every site runs an HTTP listener
//! serving `GET /metrics` (Prometheus text, including the
//! `sdvm_cluster_*` rollup merged from heartbeat-piggybacked digests),
//! `/healthz` (200/503) and `/status` (membership JSON) — plus the
//! crash-triggered flight recorder, the timestamped event bus (with a
//! live subscriber tap) and the Perfetto + Prometheus exporters.
//!
//! Unlike a test harness poking `site.inner()`, this example watches
//! the cluster the way an operator would: it scrapes its own HTTP
//! endpoints while a partition heals and a paused site gets declared
//! dead, then checks that the flight recorder left a postmortem black
//! box behind.
//!
//! The event-bus filter honors `SDVM_TELEMETRY` (comma-separated
//! categories: `career,help,code,hops,membership,detector,recovery`,
//! or `all` / `off`). Note that filtering only trims the *event bus*;
//! the metrics registry and the ops plane are always on.
//!
//! ```text
//! cargo run --release --example cluster_monitor [-- OUT_DIR]
//! SDVM_TELEMETRY=career,detector cargo run --release --example cluster_monitor
//! ```
//!
//! Writes `OUT_DIR/trace.json` (open at <https://ui.perfetto.dev>),
//! `OUT_DIR/metrics.prom` (Prometheus text exposition) and
//! `OUT_DIR/postmortems/postmortem-*.json` (the flight recorder's
//! black boxes). `OUT_DIR` defaults to the current directory.

use sdvm::apps::primes::PrimesProgram;
use sdvm::core::{
    perfetto_trace_json, prometheus_text, ChaosAction, ChaosScenario, InProcessCluster, SiteConfig,
    SiteMetrics, TraceEvent, TraceLog,
};
use sdvm::types::SiteId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CATEGORY_NAMES: [&str; 7] = [
    "career",
    "help",
    "code",
    "hops",
    "membership",
    "detector",
    "recovery",
];

/// Plain HTTP GET against an ops listener: `(status, body)`. Errors
/// (refused, timed out — e.g. the site is frozen) become status 0.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let attempt = || -> std::io::Result<(u16, String)> {
        let mut s = TcpStream::connect_timeout(&addr, Duration::from_millis(500))?;
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        s.set_write_timeout(Some(Duration::from_millis(500)))?;
        write!(s, "GET {path} HTTP/1.1\r\nHost: sdvm\r\n\r\n")?;
        let mut raw = String::new();
        s.read_to_string(&mut raw)?;
        let code = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        Ok((code, body))
    };
    attempt().unwrap_or((0, String::new()))
}

/// Pull one un-labelled or single-series sample out of a Prometheus
/// text body: the last whitespace-separated token of the first sample
/// line whose name matches.
fn sample(body: &str, family: &str) -> u64 {
    body.lines()
        .find(|l| {
            !l.starts_with('#')
                && (l.starts_with(&format!("{family}{{")) || l.starts_with(&format!("{family} ")))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.0) as u64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let pm_dir = format!("{out_dir}/postmortems");
    let _ = std::fs::remove_dir_all(&pm_dir);

    // The event bus, filtered by SDVM_TELEMETRY (unset = everything).
    let trace = TraceLog::from_env();

    // A live, non-blocking tap: a monitoring thread counts events per
    // category as they happen. If it fell behind, events would be
    // dropped for the tap only (counted), never stalling the sites.
    let tap = trace.subscribe();
    let tap_counts: Arc<[AtomicU64; 7]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    {
        let counts = tap_counts.clone();
        std::thread::spawn(move || {
            while let Ok(b) = tap.recv() {
                let idx = (b.event.category() as u32).trailing_zeros() as usize;
                counts[idx.min(6)].fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    // Four sites with the fast failure detector, crash tolerance, an
    // ops-plane HTTP listener each, and the flight recorder armed.
    let mut cfg = SiteConfig::default()
        .with_crash_tolerance()
        .with_ops_addr("127.0.0.1:0")
        .with_postmortem_dir(&pm_dir);
    cfg.heartbeat_interval = Duration::from_millis(50);
    cfg.suspect_timeout = Duration::from_millis(200);
    cfg.crash_timeout = Duration::from_millis(1_000);
    let cluster = InProcessCluster::with_configs(vec![cfg; 4], Some(trace.clone()))?;
    let ops: Vec<SocketAddr> = (0..cluster.len())
        .map(|i| cluster.site(i).ops_addr().expect("ops listener bound"))
        .collect();
    println!(
        "ops plane up: {}",
        ops.iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );

    // The workload: the paper's prime-search, slow enough that frames
    // migrate between sites via help requests.
    let prog = PrimesProgram {
        p: 60,
        width: 12,
        spin: 0,
        sleep_us: 10_000,
    };

    // The chaos schedule: a link partition that heals (suspicion raised,
    // then refuted through indirect probes) and a long pause that gets
    // site 3 declared dead (detection latency!), fenced as a zombie on
    // resume, and re-admitted at a bumped incarnation. The crash verdict
    // is exactly what trips the survivors' flight recorders.
    let scenario = ChaosScenario::new()
        .at(
            Duration::from_millis(300),
            ChaosAction::Partition {
                a: 0,
                b: 1,
                heal_after: Duration::from_millis(1_200),
            },
        )
        .at(
            Duration::from_millis(800),
            ChaosAction::Pause {
                site: 3,
                for_: Duration::from_millis(2_500),
            },
        );

    let started = Instant::now();
    let result = std::thread::scope(|s| -> Result<_, Box<dyn std::error::Error>> {
        s.spawn(|| scenario.run(&cluster));
        let handle = prog.launch(cluster.site(0))?;

        // Watch the cluster through its own HTTP endpoints while the
        // chaos plays out — metrics scraped, health checked, exactly
        // what a Prometheus + load-balancer pair would see.
        for tick in 0..4 {
            std::thread::sleep(Duration::from_millis(600));
            println!(
                "── tick {tick} (+{:?}) ─────────────────────────────────────────",
                started.elapsed()
            );
            println!(
                "{:>6} {:>8} {:>6} {:>6} {:>6} {:>8} {:>9} {:>9}",
                "site", "healthz", "execd", "sent", "recvd", "suspect", "declared", "clust-ex"
            );
            for (i, addr) in ops.iter().enumerate() {
                let (health, hbody) = http_get(*addr, "/healthz");
                let (_, mbody) = http_get(*addr, "/metrics");
                let health = match health {
                    200 => "ok".to_string(),
                    0 => "frozen".to_string(),
                    c => format!("{c}"),
                };
                println!(
                    "{:>6} {:>8} {:>6} {:>6} {:>6} {:>8} {:>9} {:>9}",
                    cluster.site(i).id().to_string(),
                    health,
                    sample(&mbody, "sdvm_frames_executed_total"),
                    sample(&mbody, "sdvm_messages_sent_total"),
                    sample(&mbody, "sdvm_messages_received_total"),
                    sample(&mbody, "sdvm_detector_suspicions_raised_total"),
                    sample(&mbody, "sdvm_detector_crashes_declared_total"),
                    sample(&mbody, "sdvm_cluster_frames_executed_total"),
                );
                if health != "ok" && !hbody.is_empty() {
                    println!("       └─ {}", hbody.trim());
                }
            }
        }
        Ok(handle.wait(Duration::from_secs(600))?)
    })?;
    println!();
    println!(
        "the {}-th prime is {} — found in {:?} despite a partition and a paused site",
        prog.p,
        result.as_u64()?,
        started.elapsed()
    );

    // Let the paused site's zombie fencing / rejoin play out before the
    // final snapshot, so the detector metrics show the full story.
    std::thread::sleep(Duration::from_millis(1_200));

    // ---- the flight recorder's verdict ----
    // Site 3's 2.5 s freeze outlived the 1 s crash timeout, so a
    // survivor declared it crashed — and its recorder must have dumped
    // a black box naming that verdict.
    let postmortems: Vec<_> = std::fs::read_dir(&pm_dir)
        .map(|entries| {
            entries
                .flatten()
                .filter(|e| {
                    e.file_name().to_string_lossy().starts_with("postmortem-")
                        && e.file_name().to_string_lossy().ends_with(".json")
                })
                .collect()
        })
        .unwrap_or_default();
    assert!(
        !postmortems.is_empty(),
        "the crash verdict must leave a postmortem in {pm_dir}"
    );
    let first = std::fs::read_to_string(postmortems[0].path())?;
    assert!(
        first.contains("\"schema\": \"sdvm-postmortem-v1\""),
        "postmortem must carry its schema marker"
    );
    let trigger = first
        .lines()
        .find(|l| l.trim_start().starts_with("\"trigger\""))
        .unwrap_or("")
        .trim();
    println!();
    println!(
        "flight recorder: {} black box(es) in {pm_dir} — first: {} ({trigger})",
        postmortems.len(),
        postmortems[0].file_name().to_string_lossy(),
    );

    // The cluster rollup, scraped from one site like Prometheus would.
    let (_, rollup) = http_get(ops[0], "/metrics");
    println!(
        "cluster rollup via site {}: sites={} frames={} messages={} career-p99={}µs",
        cluster.site(0).id(),
        sample(&rollup, "sdvm_cluster_sites"),
        sample(&rollup, "sdvm_cluster_frames_executed_total"),
        sample(&rollup, "sdvm_cluster_messages_sent_total"),
        sample(&rollup, "sdvm_cluster_frame_career_quantile_us{q=\"0.99\"}"),
    );

    // ---- export ----
    let events = trace.timestamped();
    let migrations: Vec<_> = events
        .iter()
        .filter_map(|b| match &b.event {
            TraceEvent::HelpGranted { frame, .. } => Some(*frame),
            _ => None,
        })
        .collect();

    let trace_path = format!("{out_dir}/trace.json");
    std::fs::write(&trace_path, perfetto_trace_json(&events))?;

    let snapshots: Vec<(SiteId, SiteMetrics)> = (0..cluster.len())
        .map(|i| {
            let site = cluster.site(i);
            let inner = site.inner();
            let st = inner.site_mgr.status(inner);
            (st.id, st.metrics)
        })
        .collect();
    let prom_path = format!("{out_dir}/metrics.prom");
    std::fs::write(&prom_path, prometheus_text(&snapshots))?;

    println!();
    println!(
        "telemetry bus: {} events recorded ({} overwritten by the ring, {} dropped by slow taps)",
        trace.total_emitted(),
        trace.dropped(),
        trace.tap_dropped()
    );
    print!("live tap saw:");
    for (i, name) in CATEGORY_NAMES.iter().enumerate() {
        let n = tap_counts[i].load(Ordering::Relaxed);
        if n > 0 {
            print!(" {name}={n}");
        }
    }
    println!();
    println!(
        "{} frame migrations; their careers are stitched across sites by trace id in {trace_path}",
        migrations.len()
    );
    println!("wrote {trace_path} (open at https://ui.perfetto.dev) and {prom_path}");
    Ok(())
}
