//! A cluster monitor: the site manager's status interface ("query the
//! status of the local site, i.e. all local managers", §4) and the
//! accounting ledger (goal 14), sampled live while two programs from
//! different users share the cluster (goals 10/11: multitasking,
//! multiuser).
//!
//! ```text
//! cargo run --release --example cluster_monitor
//! ```

use sdvm::apps::mandelbrot::MandelbrotProgram;
use sdvm::apps::primes::PrimesProgram;
use sdvm::core::{InProcessCluster, SiteConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = InProcessCluster::new(3, SiteConfig::default())?;

    // Two users, two programs, concurrently — even launched from
    // different sites ("access the cluster from any machine", goal 15).
    let primes = PrimesProgram {
        p: 150,
        width: 12,
        spin: 0,
        sleep_us: 15_000,
    };
    let h1 = primes.launch(cluster.site(0))?;
    let mandel = MandelbrotProgram {
        rows: 96,
        cols: 128,
        max_iter: 600,
    };
    let h2 = mandel.launch(cluster.site(1))?;

    // Sample the cluster status a few times while they run.
    for tick in 0..3 {
        std::thread::sleep(Duration::from_millis(150));
        println!("── tick {tick} ───────────────────────────────────────────────");
        println!(
            "{:>6} {:>7} {:>6} {:>8} {:>8} {:>9} {:>7}",
            "site", "queued", "busy", "frames", "objects", "programs", "known"
        );
        for i in 0..cluster.len() {
            let s = cluster.site(i).inner();
            let st = s.site_mgr.status(s);
            println!(
                "{:>6} {:>7} {:>6} {:>8} {:>8} {:>9} {:>7}",
                st.id.to_string(),
                st.queued_frames,
                st.busy_slots,
                st.incomplete_frames,
                st.objects,
                st.programs,
                st.known_sites
            );
        }
    }

    let r1 = h1.wait(Duration::from_secs(600))?;
    let r2 = h2.wait(Duration::from_secs(600))?;
    println!();
    println!(
        "primes result: {}  mandelbrot checksum: {}",
        r1.as_u64()?,
        r2.as_u64()?
    );
    assert_eq!(r2.as_u64()?, mandel.reference());

    // The bill, per site and program (goal 14: accounting).
    println!();
    println!("accounting ledger (who used what, where):");
    for i in 0..cluster.len() {
        let s = cluster.site(i).inner();
        for (program, usage) in s.site_mgr.accounting() {
            println!(
                "  {}: {program} executed {:>4} microthreads, {:>10.3?} slot time",
                cluster.site(i).id(),
                usage.frames_executed,
                usage.cpu
            );
        }
    }
    Ok(())
}
