//! The telemetry console: a chaos-stressed cluster observed end to end
//! through PR 3's telemetry layer — the timestamped event bus (with a
//! live subscriber tap), the per-site metrics registry folded into the
//! site manager's status (§4), causal trace ids stitching migrated
//! frames across sites, and the Perfetto + Prometheus exporters.
//!
//! The event-bus filter honors `SDVM_TELEMETRY` (comma-separated
//! categories: `career,help,code,hops,membership,detector,recovery`,
//! or `all` / `off`). Note that filtering only trims the *event bus*;
//! the metrics registry is always on.
//!
//! ```text
//! cargo run --release --example cluster_monitor [-- OUT_DIR]
//! SDVM_TELEMETRY=career,detector cargo run --release --example cluster_monitor
//! ```
//!
//! Writes `OUT_DIR/trace.json` (open at <https://ui.perfetto.dev>) and
//! `OUT_DIR/metrics.prom` (Prometheus text exposition). `OUT_DIR`
//! defaults to the current directory.

use sdvm::apps::primes::PrimesProgram;
use sdvm::core::{
    perfetto_trace_json, prometheus_text, ChaosAction, ChaosScenario, InProcessCluster, SiteConfig,
    SiteMetrics, TraceEvent, TraceLog,
};
use sdvm::types::SiteId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CATEGORY_NAMES: [&str; 7] = [
    "career",
    "help",
    "code",
    "hops",
    "membership",
    "detector",
    "recovery",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());

    // The event bus, filtered by SDVM_TELEMETRY (unset = everything).
    let trace = TraceLog::from_env();

    // A live, non-blocking tap: a monitoring thread counts events per
    // category as they happen. If it fell behind, events would be
    // dropped for the tap only (counted), never stalling the sites.
    let tap = trace.subscribe();
    let tap_counts: Arc<[AtomicU64; 7]> = Arc::new(std::array::from_fn(|_| AtomicU64::new(0)));
    {
        let counts = tap_counts.clone();
        std::thread::spawn(move || {
            while let Ok(b) = tap.recv() {
                let idx = (b.event.category() as u32).trailing_zeros() as usize;
                counts[idx.min(6)].fetch_add(1, Ordering::Relaxed);
            }
        });
    }

    // Four sites with the fast failure detector and crash tolerance on,
    // so the chaos schedule below is survivable and observable.
    let mut cfg = SiteConfig::default().with_crash_tolerance();
    cfg.heartbeat_interval = Duration::from_millis(50);
    cfg.suspect_timeout = Duration::from_millis(200);
    cfg.crash_timeout = Duration::from_millis(1_000);
    let cluster = InProcessCluster::with_configs(vec![cfg; 4], Some(trace.clone()))?;

    // The workload: the paper's prime-search, slow enough that frames
    // migrate between sites via help requests.
    let prog = PrimesProgram {
        p: 60,
        width: 12,
        spin: 0,
        sleep_us: 10_000,
    };

    // The chaos schedule: a link partition that heals (suspicion raised,
    // then refuted through indirect probes) and a long pause that gets
    // site 3 declared dead (detection latency!), fenced as a zombie on
    // resume, and re-admitted at a bumped incarnation.
    let scenario = ChaosScenario::new()
        .at(
            Duration::from_millis(300),
            ChaosAction::Partition {
                a: 0,
                b: 1,
                heal_after: Duration::from_millis(1_200),
            },
        )
        .at(
            Duration::from_millis(800),
            ChaosAction::Pause {
                site: 3,
                for_: Duration::from_millis(2_500),
            },
        );

    let started = Instant::now();
    let result = std::thread::scope(|s| -> Result<_, Box<dyn std::error::Error>> {
        s.spawn(|| scenario.run(&cluster));
        let handle = prog.launch(cluster.site(0))?;

        // Sample the status interface — now carrying SiteMetrics — while
        // the chaos plays out.
        for tick in 0..4 {
            std::thread::sleep(Duration::from_millis(600));
            println!(
                "── tick {tick} (+{:?}) ─────────────────────────────────────────",
                started.elapsed()
            );
            println!(
                "{:>6} {:>7} {:>6} {:>6} {:>6} {:>8} {:>8} {:>9}",
                "site", "queued", "execd", "sent", "recvd", "career", "suspect", "declared"
            );
            for i in 0..cluster.len() {
                let site = cluster.site(i);
                let inner = site.inner();
                let st = inner.site_mgr.status(inner);
                let m = &st.metrics;
                println!(
                    "{:>6} {:>7} {:>6} {:>6} {:>6} {:>7.0}µ {:>8} {:>9}",
                    st.id.to_string(),
                    st.queued_frames,
                    m.frames_executed,
                    m.messages_sent,
                    m.messages_received,
                    m.career_total_us.mean_us(),
                    m.suspicions_raised,
                    m.crashes_declared,
                );
            }
        }
        Ok(handle.wait(Duration::from_secs(600))?)
    })?;
    println!();
    println!(
        "the {}-th prime is {} — found in {:?} despite a partition and a paused site",
        prog.p,
        result.as_u64()?,
        started.elapsed()
    );

    // Let the paused site's zombie fencing / rejoin play out before the
    // final snapshot, so the detector metrics show the full story.
    std::thread::sleep(Duration::from_millis(1_200));

    // ---- export ----
    let events = trace.timestamped();
    let migrations: Vec<_> = events
        .iter()
        .filter_map(|b| match &b.event {
            TraceEvent::HelpGranted { frame, .. } => Some(*frame),
            _ => None,
        })
        .collect();

    let trace_path = format!("{out_dir}/trace.json");
    std::fs::write(&trace_path, perfetto_trace_json(&events))?;

    let snapshots: Vec<(SiteId, SiteMetrics)> = (0..cluster.len())
        .map(|i| {
            let site = cluster.site(i);
            let inner = site.inner();
            let st = inner.site_mgr.status(inner);
            (st.id, st.metrics)
        })
        .collect();
    let prom_path = format!("{out_dir}/metrics.prom");
    std::fs::write(&prom_path, prometheus_text(&snapshots))?;

    println!();
    println!(
        "telemetry bus: {} events recorded ({} overwritten by the ring, {} dropped by slow taps)",
        trace.total_emitted(),
        trace.dropped(),
        trace.tap_dropped()
    );
    print!("live tap saw:");
    for (i, name) in CATEGORY_NAMES.iter().enumerate() {
        let n = tap_counts[i].load(Ordering::Relaxed);
        if n > 0 {
            print!(" {name}={n}");
        }
    }
    println!();
    println!(
        "{} frame migrations; their careers are stitched across sites by trace id in {trace_path}",
        migrations.len()
    );
    println!("wrote {trace_path} (open at https://ui.perfetto.dev) and {prom_path}");
    Ok(())
}
