//! Quickstart: build a 3-site SDVM cluster in one process, split a tiny
//! application into microthreads, and run it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sdvm::core::{AppBuilder, InProcessCluster, SiteConfig};
use sdvm::types::Value;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A cluster: the first site founds it, the others sign on through
    //    it at runtime — exactly the paper's §3.4 entry protocol.
    let cluster = InProcessCluster::new(3, SiteConfig::default())?;
    println!(
        "cluster up: sites {:?}",
        (0..cluster.len())
            .map(|i| cluster.site(i).id().to_string())
            .collect::<Vec<_>>()
    );

    // 2. An application, split into microthreads. Each microthread gets
    //    its arguments from a microframe and sends results to target
    //    frames — dataflow synchronization does the rest.
    let mut app = AppBuilder::new("sum-of-squares");
    let square = app.thread("square", |ctx| {
        let n = ctx.param(0)?.as_u64()?;
        let slot = ctx.param(1)?.as_u64()? as u32;
        let target = ctx.target(0)?;
        ctx.send(target, slot, Value::from_u64(n * n))
    });
    let reduce = app.thread("reduce", |ctx| {
        let mut total = 0;
        for i in 0..ctx.param_count() as u32 {
            total += ctx.param(i)?.as_u64()?;
        }
        ctx.output(format!("sum of squares = {total}"));
        ctx.send(ctx.target(0)?, 0, Value::from_u64(total))
    });

    // 3. Launch: the bootstrap creates the initial microframes. The SDVM
    //    distributes them over the cluster automatically.
    let n = 32usize;
    let handle = cluster.site(0).launch(&app, |ctx, result| {
        let reducer = ctx.create_frame(reduce, n, vec![result], Default::default());
        for i in 0..n {
            let worker = ctx.create_frame(square, 2, vec![reducer], Default::default());
            ctx.send(worker, 0, Value::from_u64(i as u64 + 1))?;
            ctx.send(worker, 1, Value::from_u64(i as u64))?;
        }
        Ok(())
    })?;

    // 4. The result arrives at the hidden result frame on the starting
    //    site; program output is routed to this frontend.
    let result = handle.wait(Duration::from_secs(60))?;
    println!("frontend got: {:?}", handle.drain_output());
    println!("result: {}", result.as_u64()?);
    assert_eq!(result.as_u64()?, (1..=n as u64).map(|x| x * x).sum::<u64>());
    Ok(())
}
