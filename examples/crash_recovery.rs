//! Crash management (paper §2.2/§6): a site is killed abruptly mid-run;
//! the cluster detects the crash via missed heartbeats, revives the lost
//! microframes from backups, and the application still delivers the
//! correct result.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use sdvm::apps::primes::{nth_prime, PrimesProgram};
use sdvm::core::{InProcessCluster, SiteConfig, TraceEvent, TraceLog};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceLog::new();
    let mut cfg = SiteConfig::default().with_crash_tolerance();
    cfg.heartbeat_interval = Duration::from_millis(50);
    cfg.crash_timeout = Duration::from_millis(400);
    let cluster = InProcessCluster::with_configs(vec![cfg; 3], Some(trace.clone()))?;

    let prog = PrimesProgram {
        p: 60,
        width: 16,
        spin: 0,
        sleep_us: 6_000,
    };
    let handle = prog.launch(cluster.site(0))?;
    let victim = cluster.site(2).id();

    // Wait until the victim demonstrably holds work, then pull the plug.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while trace
        .filter(|e| matches!(e, TraceEvent::HelpGranted { requester, .. } if *requester == victim))
        .is_empty()
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(40));
    println!("crashing {victim} (no sign-off, no relocation — the machine just dies)");
    cluster.crash(2);

    let result = handle.wait(Duration::from_secs(600))?;
    println!(
        "result: {} (expected {})",
        result.as_u64()?,
        nth_prime(prog.p)
    );
    assert_eq!(result.as_u64()?, nth_prime(prog.p));

    // Detection can lag completion; wait for the trace to show it.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while trace
        .filter(|e| matches!(e, TraceEvent::SiteGone { crashed: true, .. }))
        .is_empty()
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(50));
    }
    for e in trace.filter(|e| {
        matches!(
            e,
            TraceEvent::SiteGone { crashed: true, .. } | TraceEvent::Recovered { .. }
        )
    }) {
        println!("  {e:?}");
    }
    println!("the crash was overcome without loss of data (at-least-once re-execution)");
    Ok(())
}
