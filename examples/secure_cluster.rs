//! A *real TCP* SDVM cluster with the security manager enabled: three
//! daemons on localhost sockets, keyed by a shared start password,
//! running the prime search over encrypted connections (paper §4,
//! security + network managers; message delivery as in Fig. 6).
//!
//! In a real deployment each daemon runs in its own process/machine; the
//! sites here share a process but talk *only* through TCP.
//!
//! ```text
//! cargo run --release --example secure_cluster [-- --trace]
//! ```

use sdvm::apps::primes::{nth_prime, PrimesProgram};
use sdvm::core::{AppRegistry, Site, SiteConfig, TraceEvent, TraceLog};
use sdvm::net::TcpTransport;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let want_trace = std::env::args().any(|a| a == "--trace");
    let trace = TraceLog::new();
    let registry = AppRegistry::new();
    let cfg = SiteConfig::default().with_password("start-password-by-hand");

    // Three daemons, each on its own TCP socket.
    let mk = |cfg: &SiteConfig| -> Result<Site, Box<dyn std::error::Error>> {
        let transport = TcpTransport::bind("127.0.0.1:0")?;
        Ok(Site::new(
            cfg.clone(),
            transport as Arc<dyn sdvm::net::Transport>,
            registry.clone(),
            Some(trace.clone()),
        ))
    };
    let first = mk(&cfg)?;
    first.start_first();
    println!("first site {} listening on {}", first.id(), first.addr());

    let second = mk(&cfg)?;
    second.sign_on(&first.addr())?;
    println!("site {} signed on via TCP ({})", second.id(), second.addr());

    let third = mk(&cfg)?;
    // Join through the *second* site: any member can be the contact.
    third.sign_on(&second.addr())?;
    println!("site {} signed on via TCP ({})", third.id(), third.addr());

    // A wrong password cannot join: its sign-on is undecryptable noise.
    let intruder = mk(&SiteConfig::default().with_password("wrong"))?;
    match intruder.sign_on(&first.addr()) {
        Err(e) => println!("intruder with wrong password rejected: {e}"),
        Ok(()) => unreachable!("intruder must not join"),
    }

    let prog = PrimesProgram {
        p: 50,
        width: 10,
        spin: 0,
        sleep_us: 2_000,
    };
    let handle = prog.launch(&first)?;
    let result = handle.wait(Duration::from_secs(600))?;
    println!(
        "the {}-th prime is {} — computed over encrypted TCP",
        prog.p,
        result.as_u64()?
    );
    assert_eq!(result.as_u64()?, nth_prime(prog.p));

    if want_trace {
        println!();
        println!("=== message delivery through the manager stack (Fig. 6) ===");
        for e in trace
            .filter(|e| matches!(e, TraceEvent::MessageHop { .. }))
            .into_iter()
            .take(20)
        {
            if let TraceEvent::MessageHop {
                site,
                manager,
                payload,
                outgoing,
                ..
            } = e
            {
                let dir = if outgoing { "send" } else { "recv" };
                println!("{site} {dir:<4} [{manager}] {payload}");
            }
        }
    }

    third.sign_off()?;
    second.sign_off()?;
    println!("sites signed off; done");
    Ok(())
}
