//! The simulator on a heterogeneous, churning cluster (paper §3.5 and
//! §2.2's SoC/power scenarios): mixed CPU speeds, a mid-run join, an
//! orderly leave and a crash — with per-site utilization reported.
//!
//! ```text
//! cargo run --release --example heterogeneous_sim
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm::apps::mandelbrot::MandelbrotProgram;
use sdvm::sim::{NetworkModel, SimConfig, SimSite, Simulation};

fn main() {
    // A workload with uneven task costs: Mandelbrot rows.
    let prog = MandelbrotProgram {
        rows: 256,
        cols: 256,
        max_iter: 300,
    };
    let graph = prog.graph();
    println!(
        "workload: mandelbrot {}x{} ({} tasks, uneven costs)",
        prog.rows,
        prog.cols,
        graph.node_count() - 1
    );

    let mut cfg = SimConfig::default();
    cfg.net = NetworkModel::lan();
    cfg.sites = vec![
        SimSite::with_speed(2.0), // fast founder
        SimSite::with_speed(1.0), // reference
        SimSite {
            speed: 0.5,
            ..SimSite::reference()
        }, // slow
        SimSite {
            speed: 1.0,
            join_at: 0.02,
            ..SimSite::reference()
        }, // late joiner
        SimSite {
            speed: 1.0,
            leave_at: Some(0.05),
            ..SimSite::reference()
        }, // leaves early
        SimSite {
            speed: 1.5,
            crash_at: Some(0.04),
            ..SimSite::reference()
        }, // crashes
    ];
    let m = Simulation::new(cfg, graph).run();

    println!("makespan: {:.3}s (virtual)", m.makespan);
    println!(
        "tasks executed: {} (re-executions after crash: {})",
        m.tasks_executed, m.reexecutions
    );
    println!(
        "help requests: {} ({} granted)",
        m.help_requests, m.help_granted
    );
    println!();
    println!("site  role                  tasks   busy(s)");
    let roles = [
        "fast founder (2.0x)",
        "reference (1.0x)",
        "slow (0.5x)",
        "late joiner (t=0.02)",
        "leaves at t=0.05",
        "crashes at t=0.04",
    ];
    for (i, role) in roles.iter().enumerate() {
        println!(
            "{i:>4}  {role:<20} {:>6} {:>9.3}",
            m.executed_per_site[i], m.busy[i]
        );
    }
    println!();
    println!("work follows speed; the leaver's and the crasher's work was redistributed.");
}
