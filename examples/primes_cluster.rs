//! The paper's evaluation application (§5): parallel prime search on a
//! real (in-process) SDVM cluster, with the work distribution shown per
//! site afterwards.
//!
//! ```text
//! cargo run --release --example primes_cluster [p] [width] [sites]
//! ```

use sdvm::apps::primes::{nth_prime, PrimesProgram};
use sdvm::core::{InProcessCluster, SiteConfig, TraceEvent, TraceLog};
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let p: u64 = args.next().map(|a| a.parse()).transpose()?.unwrap_or(100);
    let width: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(10);
    let sites: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(4);

    let trace = TraceLog::new();
    let cluster =
        InProcessCluster::with_configs(vec![SiteConfig::default(); sites], Some(trace.clone()))?;

    // sleep_us gives each candidate test measurable duration while
    // yielding the CPU, so the whole cluster's threads stay schedulable
    // on small machines.
    let prog = PrimesProgram {
        p,
        width,
        spin: 0,
        sleep_us: 2_000,
    };
    let t0 = Instant::now();
    let handle = prog.launch(cluster.site(0))?;
    let result = handle.wait(Duration::from_secs(600))?;
    let elapsed = t0.elapsed();

    println!(
        "the {p}-th prime is {} (found in {elapsed:?})",
        result.as_u64()?
    );
    assert_eq!(result.as_u64()?, nth_prime(p));

    // Where did the microthreads actually run?
    let mut per_site = std::collections::BTreeMap::new();
    for e in trace.filter(|e| matches!(e, TraceEvent::FrameExecuted { .. })) {
        if let TraceEvent::FrameExecuted { site, .. } = e {
            *per_site.entry(site).or_insert(0u64) += 1;
        }
    }
    println!("microthreads executed per site:");
    for (site, count) in per_site {
        println!("  {site}: {count}");
    }
    let grants = trace
        .filter(|e| matches!(e, TraceEvent::HelpGranted { .. }))
        .len();
    let denials = trace
        .filter(|e| matches!(e, TraceEvent::HelpDenied { .. }))
        .len();
    println!("help requests granted: {grants}, denied: {denials}");
    Ok(())
}
