//! CI's live ops-plane drill: boot a 4-site cluster with the HTTP
//! introspection listeners and the flight recorder armed, run a small
//! workload, publish the bound endpoint addresses, and then follow a
//! file-based handshake with the harness (CI shell script):
//!
//! 1. write `OUT_DIR/ops_addrs.txt` (one `host:port` per line) — the
//!    harness curls `/healthz` (expects 200) and `/metrics` (expects the
//!    `sdvm_cluster_*` rollup and quantile gauges) against live sockets;
//! 2. wait for the harness to `touch OUT_DIR/kill`, then crash site 3 —
//!    the harness polls a survivor's `/healthz` until it flips to 503
//!    and `json.load`s the flight recorder's postmortem;
//! 3. wait for `touch OUT_DIR/done`, then exit 0.
//!
//! ```text
//! cargo run --release --example ops_drill [-- OUT_DIR]   # default ops_out
//! ```

use sdvm::apps::primes::PrimesProgram;
use sdvm::core::{InProcessCluster, SiteConfig, TraceLog};
use std::path::Path;
use std::time::{Duration, Instant};

/// Poll for a handshake file (the harness `touch`es it).
fn wait_for(path: &Path, timeout: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if path.exists() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    false
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ops_out".to_string());
    std::fs::create_dir_all(&out_dir)?;
    let pm_dir = format!("{out_dir}/postmortems");
    let _ = std::fs::remove_dir_all(&pm_dir);
    let _ = std::fs::remove_file(format!("{out_dir}/kill"));
    let _ = std::fs::remove_file(format!("{out_dir}/done"));

    let config = SiteConfig::default()
        .with_crash_tolerance()
        .with_ops_addr("127.0.0.1:0")
        .with_postmortem_dir(&pm_dir);
    // A trace bus is attached so the flight recorder's postmortems carry
    // the last-N event tail (including the triggering crash verdict).
    let cluster = InProcessCluster::with_configs(vec![config; 4], Some(TraceLog::from_env()))?;

    // A real workload first, so /metrics and the heartbeat-fed rollup
    // carry non-trivial numbers when the harness scrapes them.
    let prog = PrimesProgram {
        p: 40,
        width: 8,
        spin: 0,
        sleep_us: 0,
    };
    let result = prog
        .launch(cluster.site(0))?
        .wait(Duration::from_secs(60))?;
    println!("workload done: {}-th prime = {}", prog.p, result.as_u64()?);

    // A few heartbeat rounds spread the digests before we publish.
    std::thread::sleep(Duration::from_millis(500));
    let addrs: Vec<String> = (0..cluster.len())
        .map(|i| {
            cluster
                .site(i)
                .ops_addr()
                .map(|a| a.to_string())
                .unwrap_or_default()
        })
        .collect();
    std::fs::write(format!("{out_dir}/ops_addrs.txt"), addrs.join("\n") + "\n")?;
    println!("ops plane up: {}", addrs.join(" "));

    if !wait_for(
        Path::new(&format!("{out_dir}/kill")),
        Duration::from_secs(120),
    ) {
        return Err("harness never requested the crash (no kill file)".into());
    }
    println!("crashing site {}", cluster.site(3).id());
    cluster.crash(3);

    if !wait_for(
        Path::new(&format!("{out_dir}/done")),
        Duration::from_secs(120),
    ) {
        return Err("harness never acknowledged the drill (no done file)".into());
    }
    println!("drill complete");
    Ok(())
}
