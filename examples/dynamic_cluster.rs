//! Dynamic entry and exit at runtime (paper §3.4): sites join the
//! cluster mid-run, pick up work, and one signs off orderly — the
//! running application is transparently redistributed and finishes
//! correctly.
//!
//! ```text
//! cargo run --release --example dynamic_cluster
//! ```

use sdvm::apps::primes::{nth_prime, PrimesProgram};
use sdvm::core::{InProcessCluster, SiteConfig, TraceEvent, TraceLog};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = TraceLog::new();
    let mut cluster =
        InProcessCluster::with_configs(vec![SiteConfig::default(); 2], Some(trace.clone()))?;
    println!("started with 2 sites");

    let prog = PrimesProgram {
        p: 80,
        width: 12,
        spin: 0,
        sleep_us: 3_000,
    };
    let handle = prog.launch(cluster.site(0))?;
    println!(
        "program launched: first {} primes, width {}",
        prog.p, prog.width
    );

    // Two machines join while the application runs...
    std::thread::sleep(Duration::from_millis(150));
    let a = cluster.add_site(SiteConfig::default())?;
    println!("site {} joined at runtime", cluster.site(a).id());
    std::thread::sleep(Duration::from_millis(100));
    let b = cluster.add_site(SiteConfig::default())?;
    println!("site {} joined at runtime", cluster.site(b).id());

    // ...and one of them is needed elsewhere and signs off again. Its
    // frames and memory objects relocate before it leaves.
    std::thread::sleep(Duration::from_millis(200));
    cluster.sign_off(a)?;
    println!("site signed off orderly (work relocated)");

    let result = handle.wait(Duration::from_secs(600))?;
    println!(
        "result: {} (expected {})",
        result.as_u64()?,
        nth_prime(prog.p)
    );
    assert_eq!(result.as_u64()?, nth_prime(prog.p));

    let joins = trace
        .filter(|e| matches!(e, TraceEvent::SiteJoined { .. }))
        .len();
    let leaves = trace
        .filter(|e| matches!(e, TraceEvent::SiteGone { crashed: false, .. }))
        .len();
    println!("membership events observed: {joins} joins, {leaves} orderly departures");
    Ok(())
}
