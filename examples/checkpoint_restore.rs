//! Checkpointing (paper §6: "automatic backup and recovery mechanism
//! (which uses checkpointing)"): a long-running program is snapshotted
//! cluster-wide, the *entire cluster* is then destroyed — and a freshly
//! built cluster resumes the program from the checkpoint file. This is
//! the paper's hardware-upgrade/migration story taken to the extreme.
//!
//! ```text
//! cargo run --release --example checkpoint_restore
//! ```

use sdvm::apps::primes::{nth_prime, PrimesProgram};
use sdvm::core::{InProcessCluster, ProgramSnapshot, SiteConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = PrimesProgram {
        p: 80,
        width: 12,
        spin: 0,
        sleep_us: 20_000,
    };
    let ckpt_path = std::env::temp_dir().join("sdvm-demo.ckpt");

    let snapshot: ProgramSnapshot;
    {
        let cluster = InProcessCluster::new(3, SiteConfig::default())?;
        let handle = prog.launch(cluster.site(0))?;
        println!("program running on 3 sites (first {} primes)…", prog.p);
        std::thread::sleep(Duration::from_millis(300));

        snapshot = cluster.site(0).checkpoint_program(handle.program)?;
        snapshot.save_to_file(&ckpt_path)?;
        println!(
            "checkpoint taken: epoch {}, {} live frames, {} objects → {}",
            snapshot.epoch,
            snapshot.frames.len(),
            snapshot.objects.len(),
            ckpt_path.display()
        );
        println!("…and now the whole cluster dies (no orderly sign-off).");
        // Cluster dropped here: every site gone.
    }

    let cluster = InProcessCluster::new(3, SiteConfig::default())?;
    println!("fresh cluster built (same logical site ids).");
    let loaded = ProgramSnapshot::load_from_file(&ckpt_path)?;
    let handle = cluster.site(0).restore_program(&prog.app(), &loaded)?;
    let result = handle.wait(Duration::from_secs(600))?;
    println!(
        "restored program finished: the {}-th prime is {} (expected {})",
        prog.p,
        result.as_u64()?,
        nth_prime(prog.p)
    );
    assert_eq!(result.as_u64()?, nth_prime(prog.p));
    let _ = std::fs::remove_file(&ckpt_path);
    Ok(())
}
