//! Shared harness code for the experiment binaries: the calibrated cost
//! model tying the simulator to the paper's Pentium-IV testbed, and
//! small table-printing helpers.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (or one ablation DESIGN.md calls out); see DESIGN.md §3 for the
//! index and EXPERIMENTS.md for paper-vs-measured numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sdvm_apps::primes::PrimesProgram;
use sdvm_cdag::Cdag;
use sdvm_sim::{SimConfig, SimMetrics, Simulation};

/// Calibrated per-candidate cost of the paper's prime tester, in sim
/// work units (1e6 units = 1 virtual second on a reference site).
///
/// Calibration: the paper measures 33.9 s for p=100, width=10 on one
/// Pentium-IV 1.7 GHz site. p=100 → candidates 2..=541 → 540 tests, so
/// one candidate ≈ 62.7 ms ≈ 62 700 units. The paper's per-candidate
/// cost is approximately constant in the candidate (its 1-site times
/// scale with the candidate count: 455.9/33.9 ≈ 13.4 ≈ 7919/541), which
/// this constant reproduces; `division_count` adds the small real
/// trial-division growth.
pub const UNIT_COST: u64 = 62_700;

/// Cost of one collect step (bookkeeping + spawning the next pair).
pub const COLLECT_COST: u64 = 1_000;

/// Calibrated CPU cost of handling one inter-site data message (frame or
/// result) on the receiving site, in seconds. Calibration: the paper's
/// measured efficiencies (≈0.85–0.90 at 4 sites, ≈0.80–0.88 at 8) imply
/// a distribution overhead proportional to traffic; 2 ms per data
/// message (2005-era C++ serialization + TCP + manager dispatch on a
/// 1.7 GHz P4) lands both cluster sizes inside the paper's bands.
pub const MSG_OVERHEAD: f64 = 2.0e-3;

/// The simulated cluster configuration used by the paper-reproduction
/// experiments: `n` homogeneous reference sites on a LAN with the
/// calibrated message-handling overhead.
pub fn cluster_config(n: usize) -> SimConfig {
    let mut cfg = SimConfig::homogeneous(n);
    cfg.cost.msg_overhead = MSG_OVERHEAD;
    cfg
}

/// Build the calibrated prime-search CDAG for a Table 1 cell.
pub fn primes_graph(p: u64, width: usize) -> Cdag {
    PrimesProgram::new(p, width).graph(UNIT_COST, COLLECT_COST)
}

/// Run one simulation.
pub fn simulate(cfg: SimConfig, graph: Cdag) -> SimMetrics {
    Simulation::new(cfg, graph).run()
}

/// Format seconds like the paper's table (`33.9s`).
pub fn secs(t: f64) -> String {
    format!("{t:.1}s")
}

/// Format a speedup like the paper (`(3.4)`).
pub fn speedup(base: f64, t: f64) -> String {
    format!("({:.1})", base / t)
}

/// Print a separator line of the given width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvm_apps::primes::nth_prime;

    #[test]
    fn calibration_matches_paper_single_site() {
        // One site, p=100, width=10 must land near the paper's 33.9 s.
        let m = simulate(SimConfig::homogeneous(1), primes_graph(100, 10));
        assert!(
            (m.makespan - 33.9).abs() < 5.0,
            "1-site virtual time {} should be ≈ 33.9 s",
            m.makespan
        );
    }

    #[test]
    fn calibration_scales_with_p_like_the_paper() {
        let t100 = simulate(SimConfig::homogeneous(1), primes_graph(100, 10)).makespan;
        let t500 = simulate(SimConfig::homogeneous(1), primes_graph(500, 10)).makespan;
        let ratio = t500 / t100;
        // Paper: 207.0 / 33.9 ≈ 6.1.
        assert!((ratio - 6.1).abs() < 1.2, "p-scaling ratio {ratio}");
        let _ = nth_prime(10);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(33.91), "33.9s");
        assert_eq!(speedup(33.9, 10.0), "(3.4)");
    }
}
