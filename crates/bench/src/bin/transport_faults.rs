//! E11 — the paper's transport finding (§4, network manager): UDP
//! "proved not usable at the current expansion stage": packets may be
//! lost or reordered and the SDVM has no resequencing layer, so it runs
//! on TCP.
//!
//! Demonstrated on the in-memory transport's fault injection: the same
//! message stream under reliable (TCP-like) semantics and under
//! UDP-like loss/duplication/reordering, with the delivered-stream
//! damage quantified.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin transport_faults
//! ```

use sdvm_bench::rule;
use sdvm_net::{FaultPlan, MemHub, Transport};
use sdvm_types::PhysicalAddr;

fn run_plan(name: &str, plan: FaultPlan) {
    let hub = MemHub::new();
    let a = hub.endpoint();
    let b = hub.endpoint();
    let (PhysicalAddr::Mem(aid), PhysicalAddr::Mem(bid)) = (a.local_addr(), b.local_addr()) else {
        unreachable!("mem transport yields mem addresses");
    };
    hub.set_link_plan(aid, bid, plan);
    const N: u32 = 100_000;
    for i in 0..N {
        a.send_body(&b.local_addr(), &i.to_le_bytes())
            .expect("send");
    }
    let rx = b.incoming();
    let mut got = Vec::new();
    while let Ok(m) = rx.try_recv() {
        got.push(u32::from_le_bytes(m[..].try_into().expect("4 bytes")));
    }
    let mut seen = vec![0u32; N as usize];
    let mut out_of_order = 0u32;
    let mut last = None;
    for &v in &got {
        seen[v as usize] += 1;
        if let Some(prev) = last {
            if v < prev {
                out_of_order += 1;
            }
        }
        last = Some(v);
    }
    let lost = seen.iter().filter(|&&c| c == 0).count();
    let duplicated = seen.iter().filter(|&&c| c > 1).count();
    println!(
        "{name:>22}: delivered {:>6}/{N}  lost {:>5} ({:.2}%)  dup {:>4}  reordered {:>5}",
        got.len(),
        lost,
        100.0 * lost as f64 / N as f64,
        duplicated,
        out_of_order
    );
}

fn main() {
    println!("E11: transport semantics — why the SDVM runs on TCP, not UDP");
    rule(90);
    run_plan("reliable (TCP-like)", FaultPlan::reliable());
    run_plan("udp-like (seed 1)", FaultPlan::udp_like(1));
    run_plan("udp-like (seed 2)", FaultPlan::udp_like(2));
    let heavy = FaultPlan {
        drop_prob: 0.05,
        dup_prob: 0.02,
        reorder_prob: 0.15,
        seed: 3,
        ..FaultPlan::reliable()
    };
    run_plan("congested udp-like", heavy);
    rule(90);
    println!("every lost message is a lost microframe parameter: the waiting frame");
    println!("never fires and the application hangs — exactly the paper's verdict that");
    println!("UDP needs a resequencing/retransmission layer the SDVM does not have.");
}
