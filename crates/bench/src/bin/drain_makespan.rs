//! Drain makespan and online-checkpoint pause, machine-readable.
//!
//! Two questions about the zero-downtime operations work, answered with
//! numbers in `BENCH_drain.json`:
//!
//! 1. **How long does a graceful drain take as a function of how much
//!    the departing site owns?** A three-site cluster is loaded with N
//!    objects on the drained site; the reported makespan covers the
//!    whole planned departure — Draining gossip, quiesce, duty
//!    hand-offs, relocation to the successor, SignOff, outbound flush.
//!
//! 2. **What does a checkpoint cost the running program?** The classic
//!    cut (`checkpoint_program`) pauses the program cluster-wide for
//!    the whole collect round; the incremental cut
//!    (`snapshot_program_incremental`) never stops execution and only
//!    holds one memory shard lock at a time. The bench reports the
//!    full-checkpoint pause next to the incremental cut's worst
//!    single-shard hold — the longest a concurrent worker could have
//!    been blocked — and **asserts the hold stays under 1 ms**.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin drain_makespan
//! ```

use sdvm_apps::primes::PrimesProgram;
use sdvm_core::{InProcessCluster, SiteConfig};
use sdvm_types::{ProgramId, Value};
use std::time::{Duration, Instant};

/// Worst single-shard lock hold allowed for the incremental cut.
const BLOCK_BUDGET_US: u128 = 1_000;

fn drain_config() -> SiteConfig {
    // The drain sleeps one help_timeout to let in-flight help replies
    // settle; keep that constant small so the curve shows the
    // size-dependent part (relocation) instead of a fixed sleep.
    SiteConfig {
        help_timeout: Duration::from_millis(10),
        ..SiteConfig::default()
    }
}

/// Time a full planned departure of a site owning `n` objects.
fn drain_once(n: usize) -> (f64, u64) {
    let cluster = InProcessCluster::new(3, drain_config()).expect("cluster");
    let s1 = cluster.site(1).inner();
    for i in 0..n {
        s1.memory.alloc(s1, ProgramId(1), Value::from_u64(i as u64));
    }
    let start = Instant::now();
    cluster.site(1).drain().expect("drain");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let relocated = cluster
        .site(1)
        .inner()
        .metrics
        .drain_objects_relocated
        .get();
    // Keep the cluster handle alive until after the measurement; the
    // remaining two sites wind down on drop.
    drop(cluster);
    (ms, relocated)
}

fn main() {
    println!("drain makespan and checkpoint pause");
    sdvm_bench::rule(72);

    // Part 1: drain time vs owned-object count.
    let sizes = [0usize, 500, 8_000, 50_000];
    let mut drains = Vec::new();
    for &n in &sizes {
        let (ms, relocated) = drain_once(n);
        println!("drain with {n:>5} owned objects: {ms:>8.1} ms ({relocated} relocated)");
        drains.push((n, ms, relocated));
    }

    // Part 2: checkpoint pause, full vs incremental, on a loaded
    // cluster with a program mid-flight.
    let cluster = InProcessCluster::new(3, drain_config()).expect("cluster");
    // Long enough that both checkpoints land mid-flight.
    let prog = PrimesProgram {
        p: 60,
        width: 16,
        spin: 0,
        sleep_us: 8_000,
    };
    let handle = prog.launch(cluster.site(0)).expect("launch");
    let program = handle.program;
    // Give the snapshot something to carry beyond the program's own
    // frames: a few thousand objects spread over the shards.
    let s0 = cluster.site(0).inner();
    for i in 0..4_000u64 {
        s0.memory.alloc(s0, program, Value::from_u64(i));
    }
    std::thread::sleep(Duration::from_millis(100));

    let start = Instant::now();
    let full = cluster
        .site(0)
        .checkpoint_program(program)
        .expect("full checkpoint");
    let full_pause_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        !full.objects.is_empty(),
        "full checkpoint must land mid-flight (program finished too early)"
    );

    let start = Instant::now();
    let incr = cluster
        .site(0)
        .checkpoint_program_incremental(program)
        .expect("incremental checkpoint");
    let incr_wall_ms = start.elapsed().as_secs_f64() * 1e3;

    // The worker-visible cost of the incremental cut: the longest any
    // single shard lock was held. Measured directly per site (the cut
    // reports it), dirty shards re-captured after 100 ms of execution.
    std::thread::sleep(Duration::from_millis(100));
    let mut worst_block = Duration::ZERO;
    for i in 0..3 {
        let cut = cluster
            .site(i)
            .inner()
            .memory
            .snapshot_program_incremental(program);
        worst_block = worst_block.max(cut.max_block);
    }
    let worst_block_us = worst_block.as_micros();
    println!(
        "full checkpoint pause: {full_pause_ms:.1} ms ({} frames, {} objects)",
        full.frames.len(),
        full.objects.len()
    );
    println!(
        "incremental cut wall:  {incr_wall_ms:.1} ms ({} frames, {} objects), worst single-shard hold {worst_block_us} µs",
        incr.frames.len(),
        incr.objects.len()
    );
    let pass = worst_block_us < BLOCK_BUDGET_US;
    sdvm_bench::rule(72);
    println!(
        "incremental cut worker block: {worst_block_us} µs against a {BLOCK_BUDGET_US} µs budget ({})",
        if pass { "PASS, < 1 ms" } else { "FAIL, >= 1 ms" }
    );
    handle
        .wait(Duration::from_secs(120))
        .expect("program finishes after both checkpoints");

    let mut json = String::from("{\n  \"bench\": \"drain_makespan\",\n  \"drain\": [\n");
    for (i, (n, ms, relocated)) in drains.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"objects\": {n}, \"drain_ms\": {ms:.1}, \"relocated\": {relocated}}}{}\n",
            if i + 1 < drains.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"checkpoint\": {\n");
    json.push_str(&format!(
        "    \"full_pause_ms\": {full_pause_ms:.1},\n    \"incremental_wall_ms\": {incr_wall_ms:.1},\n"
    ));
    json.push_str(&format!(
        "    \"incremental_worst_block_us\": {worst_block_us},\n    \"block_budget_us\": {BLOCK_BUDGET_US}\n  }},\n"
    ));
    json.push_str(&format!("  \"pass\": {pass}\n}}\n"));
    std::fs::write("BENCH_drain.json", &json).expect("write BENCH_drain.json");
    println!("wrote BENCH_drain.json");
    assert!(
        pass,
        "incremental cut must never block a worker for 1 ms or more"
    );
}
