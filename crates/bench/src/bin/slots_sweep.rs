//! E3 — the paper's §4 finding: "Tests showed that a number of about 5
//! microthreads run in (virtual) parallel produce good results."
//!
//! Sweeps the processing manager's slot count on a latency-bound
//! workload (tasks blocking on remote memory accesses): too few slots
//! leave the CPU idle during blocks; beyond the knee more slots add
//! nothing (and in the real system would add switching overhead and
//! starve other sites).
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin slots_sweep
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::{cluster_config, rule};
use sdvm_cdag::generators;
use sdvm_sim::{Simulation, TaskCostModel};

fn main() {
    println!("E3: makespan vs processing slots (paper: ~5 is a good value)");
    println!("workload: 4 sites, tasks with 4 blocking remote reads each");
    rule(60);
    println!("{:>6} {:>12} {:>12}", "slots", "makespan", "vs slots=5");
    rule(60);
    // Tasks: 10 ms CPU in 5 segments, separated by 4 × 10 ms blocking
    // remote reads — i.e. ~80% of a task's life is waiting.
    let g = generators::iterative_fork_join(8, 24, 10_000);
    let mut results = Vec::new();
    for slots in [1usize, 2, 3, 4, 5, 6, 8, 10, 12, 16] {
        let mut cfg = cluster_config(4);
        cfg.slots = slots;
        cfg.cost = TaskCostModel {
            remote_reads: 4,
            read_latency: 1e-2,
            msg_overhead: cfg.cost.msg_overhead,
            ..TaskCostModel::default()
        };
        let m = Simulation::new(cfg, g.clone()).run();
        results.push((slots, m.makespan));
    }
    let at5 = results
        .iter()
        .find(|(s, _)| *s == 5)
        .map(|(_, t)| *t)
        .expect("slots=5 in sweep");
    for (slots, t) in results {
        println!("{:>6} {:>11.3}s {:>11.2}x", slots, t, t / at5);
    }
    rule(60);
    println!("expected shape: steep improvement to ~5 slots, flat beyond");
}
