//! E8 — the three site-id allocation concepts (paper §4, cluster
//! manager): a central contact site ("obviously leads to a central point
//! of failure"), id contingents distributed to several servers, and a
//! fixed number of modulo servers.
//!
//! Real runtime: joins a burst of sites under each strategy, measures
//! join latency, then removes the *first* site and tries to join again —
//! demonstrating the central strategy's point of failure and the
//! distributed strategies' survival.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin idalloc_compare
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::rule;
use sdvm_core::{InProcessCluster, SiteConfig};
use sdvm_types::IdAllocStrategy;
use std::time::Instant;

fn main() {
    println!("E8: site-id allocation strategies (real runtime, in-process cluster)");
    rule(76);
    println!(
        "{:>18} {:>8} {:>14} {:>12} {:>18}",
        "strategy", "joins", "total join", "ids unique", "join after s1 gone"
    );
    rule(76);
    for strategy in [
        IdAllocStrategy::CentralServer,
        IdAllocStrategy::Contingents { chunk: 64 },
        IdAllocStrategy::Modulo { servers: 3 },
    ] {
        let mut cfg = SiteConfig::default();
        cfg.id_alloc = strategy;
        let mut cluster = InProcessCluster::new(1, cfg.clone()).expect("cluster");
        let joins = 9usize;
        let t0 = Instant::now();
        for _ in 0..joins {
            cluster.add_site(cfg.clone()).expect("join");
        }
        let join_time = t0.elapsed().as_secs_f64();
        let mut ids: Vec<u32> = (0..cluster.len()).map(|i| cluster.site(i).id().0).collect();
        ids.sort_unstable();
        let unique = {
            let mut v = ids.clone();
            v.dedup();
            v.len() == ids.len()
        };
        // Kill the first site (the central id server under the central
        // strategy) and try to join through site 1.
        cluster.crash(0);
        let contact = cluster.site(1).addr();
        let after = cluster.add_site_via(cfg.clone(), &contact);
        let verdict = match after {
            Ok(_) => "OK (cluster survives)",
            Err(_) => "REFUSED (central point of failure)",
        };
        println!(
            "{:>18} {:>8} {:>13.3}s {:>12} {:>24}",
            strategy.to_string(),
            joins,
            join_time,
            unique,
            verdict
        );
    }
    rule(76);
    println!("paper: the central concept \"obviously leads to a central point of failure\";");
    println!("contingents and modulo servers keep accepting new sites.");
}
