//! E7b — the cost of crash tolerance: "a recovery costs time and
//! resources nonetheless" (§2.2) — but so does *preparing* for one.
//! Backup mirroring duplicates every frame creation, result application
//! and consumption to a buddy site. This ablation measures that standing
//! overhead on the real runtime: message volume (via the in-memory
//! hub's delivery counter) and wall-clock, with crash tolerance off/on,
//! plus the checkpoint path's quiesce cost.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin backup_overhead
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_apps::primes::{nth_prime, PrimesProgram};
use sdvm_bench::rule;
use sdvm_core::{InProcessCluster, SiteConfig};
use std::time::{Duration, Instant};

fn run(crash_tolerance: bool) -> (f64, u64) {
    let mut cfg = SiteConfig::default();
    cfg.crash_tolerance = crash_tolerance;
    let cluster = InProcessCluster::new(3, cfg).expect("cluster");
    let prog = PrimesProgram {
        p: 120,
        width: 16,
        spin: 0,
        sleep_us: 1_500,
    };
    let before = cluster.hub().delivered_count();
    let t0 = Instant::now();
    let handle = prog.launch(cluster.site(0)).expect("launch");
    let result = handle.wait(Duration::from_secs(600)).expect("result");
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(result.as_u64().unwrap(), nth_prime(120));
    let messages = cluster.hub().delivered_count() - before;
    (wall, messages)
}

fn main() {
    println!("E7b: standing cost of crash tolerance (real runtime, 3 sites)");
    println!("workload: primes p=120 w=16, ~1.5ms/candidate");
    rule(70);
    println!("{:>22} {:>12} {:>16}", "mode", "wall", "messages");
    rule(70);
    // Interleave best-of-3 per mode to damp timing noise.
    let mut off = (f64::INFINITY, u64::MAX);
    let mut on = (f64::INFINITY, u64::MAX);
    for _ in 0..3 {
        let r = run(false);
        off = (off.0.min(r.0), off.1.min(r.1));
        let r = run(true);
        on = (on.0.min(r.0), on.1.min(r.1));
    }
    println!(
        "{:>22} {:>11.3}s {:>16}",
        "crash tolerance off", off.0, off.1
    );
    println!("{:>22} {:>11.3}s {:>16}", "crash tolerance on", on.0, on.1);
    println!(
        "{:>22} {:>+11.1}% {:>+15.1}%",
        "overhead",
        (on.0 / off.0 - 1.0) * 100.0,
        (on.1 as f64 / off.1 as f64 - 1.0) * 100.0
    );
    rule(70);

    // Checkpoint cost: quiesce + collect + store, measured mid-run.
    let cluster = InProcessCluster::new(3, SiteConfig::default()).expect("cluster");
    let prog = PrimesProgram {
        p: 200,
        width: 16,
        spin: 0,
        sleep_us: 4_000,
    };
    let handle = prog.launch(cluster.site(0)).expect("launch");
    std::thread::sleep(Duration::from_millis(200));
    let t0 = Instant::now();
    let snap = cluster
        .site(0)
        .checkpoint_program(handle.program)
        .expect("checkpoint");
    let ckpt_time = t0.elapsed();
    println!(
        "one cluster-wide checkpoint: {ckpt_time:?} (quiesce + collect + store; \
         {} frames, {} bytes)",
        snap.frames.len(),
        snap.to_bytes().len()
    );
    handle.wait(Duration::from_secs(600)).expect("result");
    println!("expected shape: mirroring roughly doubles message volume for a modest");
    println!("wall cost; a checkpoint pauses the program for ~the longest microthread");
    println!("plus the settle window.");
}
