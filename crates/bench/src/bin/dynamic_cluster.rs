//! E6 — dynamic entry and exit at runtime (paper §3.4): "If sites join
//! or leave the cluster, the running application is transparently
//! redistributed on the newly structured cluster."
//!
//! Simulated: the prime search on 4 founding sites, with 4 more sites
//! joining mid-run (growth), 2 of 8 leaving mid-run (shrink), compared
//! to static 4- and 8-site clusters. A late joiner should push the
//! makespan toward the static-8 figure; an orderly leaver should cost
//! little beyond the lost capacity.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin dynamic_cluster
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::{cluster_config, primes_graph, rule, simulate};
use sdvm_sim::SimSite;

fn main() {
    println!("E6: dynamic entry/exit at runtime (simulated, primes p=500 width=20)");
    rule(72);
    let g = primes_graph(500, 20);
    let t4 = simulate(cluster_config(4), g.clone()).makespan;
    let t8 = simulate(cluster_config(8), g.clone()).makespan;

    // Growth: 4 founders + 4 joining at 25% of the static-4 makespan.
    let mut grow = cluster_config(8);
    for i in 4..8 {
        grow.sites[i] = SimSite {
            join_at: t4 * 0.25,
            ..SimSite::reference()
        };
    }
    let tg = simulate(grow, g.clone());

    // Shrink: 8 founders, 2 leave orderly at 25% of the static-8 makespan.
    let mut shrink = cluster_config(8);
    shrink.sites[6].leave_at = Some(t8 * 0.25);
    shrink.sites[7].leave_at = Some(t8 * 0.25);
    let ts = simulate(shrink, g.clone());

    // Churn: one joins, one leaves, one crashes.
    let mut churn = cluster_config(6);
    churn.sites[4] = SimSite {
        join_at: t4 * 0.2,
        ..SimSite::reference()
    };
    churn.sites[5].leave_at = Some(t4 * 0.5);
    churn.sites[3].crash_at = Some(t4 * 0.35);
    let tc = simulate(churn, g.clone());

    println!("static 4 sites                        : {t4:>8.1}s");
    println!("static 8 sites                        : {t8:>8.1}s");
    println!(
        "4 sites + 4 join at 25%               : {:>8.1}s (between static 4 and 8)",
        tg.makespan
    );
    println!(
        "8 sites, 2 leave orderly at 25%       : {:>8.1}s (all work preserved: {} tasks)",
        ts.makespan, ts.tasks_executed
    );
    println!(
        "6 sites: 1 joins, 1 leaves, 1 crashes : {:>8.1}s ({} re-executions)",
        tc.makespan, tc.reexecutions
    );
    rule(72);
    assert!(
        tg.makespan < t4 && tg.makespan > t8 * 0.95,
        "growth lands between static sizes"
    );
    println!("the application finished correctly under every membership change");
}
