//! E10 — hedged dispatch and replication overhead.
//!
//! Tail latency: a four-site cluster with one pathologically slow site
//! (a straggler, not a crash — it heartbeats fine) runs a fan-out
//! program repeatedly, hedging off vs on. Hedging bounds the tail at
//! roughly `hedge delay + fast execution`, where the unhedged runs
//! eat the straggler's full service time whenever work lands on it.
//!
//! Overhead: on a healthy cluster, the same fan under k = 2 and k = 3
//! voting, reported as a makespan factor over `Off` — the price of the
//! silent-data-corruption defence when nothing is wrong.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin hedged_tail
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::rule;
use sdvm_core::{
    AppBuilder, ExecCtx, InProcessCluster, ProgramHandle, ReplicaSelector, ReplicationPolicy,
    SiteConfig,
};
use sdvm_types::{SchedulingHint, SiteId, Value};
use std::time::{Duration, Instant};

const SITES: usize = 4;
const FRAMES: usize = 16;
const BASE_MS: u64 = 10;
const SLOW_MS: u64 = 250;
const HEDGE_DELAY_MS: u64 = 30;

fn iters() -> usize {
    std::env::var("SDVM_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20)
}

fn bench_config() -> SiteConfig {
    let mut cfg = SiteConfig::default();
    // Maintenance tick drives hedge deadlines; keep it well under the
    // hedge delay so firing jitter stays small.
    cfg.heartbeat_interval = Duration::from_millis(10);
    cfg
}

/// The measured program: FRAMES squaring leaves into one sticky join.
/// Leaves sleep `base` everywhere except `slow_site`, where they sleep
/// `slow` — the straggler.
fn fan_app(
    policy: ReplicationPolicy,
    slow_site: Option<SiteId>,
    base: u64,
    slow: u64,
) -> AppBuilder {
    let mut app = AppBuilder::new("hedged-tail").replicate(policy);
    app.thread("work", move |ctx: &mut ExecCtx<'_>| {
        let v = ctx.param(0)?.as_u64()?;
        let slot = ctx.param(1)?.as_u64()? as u32;
        let ms = if Some(ctx.site_id()) == slow_site {
            slow
        } else {
            base
        };
        std::thread::sleep(Duration::from_millis(ms));
        ctx.send(ctx.target(0)?, slot, Value::from_u64(v * v))
    });
    app.thread("join", |ctx| {
        let mut acc = 0;
        for i in 0..ctx.param_count() as u32 {
            acc += ctx.param(i)?.as_u64()?;
        }
        ctx.send(ctx.target(0)?, 0, Value::from_u64(acc))
    });
    app
}

fn launch(cluster: &InProcessCluster, app: &AppBuilder) -> ProgramHandle {
    cluster
        .site(0)
        .launch(app, move |ctx, result| {
            let sticky = SchedulingHint {
                sticky: true,
                ..Default::default()
            };
            let join = ctx.create_frame(1, FRAMES, vec![result], sticky);
            for i in 0..FRAMES {
                let w = ctx.create_frame(0, 2, vec![join], Default::default());
                ctx.send(w, 0, Value::from_u64(i as u64))?;
                ctx.send(w, 1, Value::from_u64(i as u64))?;
            }
            Ok(())
        })
        .expect("launch")
}

/// Run `iters` makespans of the fan on `cluster` and return them (ms).
fn makespans(cluster: &InProcessCluster, app: &AppBuilder, iters: usize) -> Vec<f64> {
    let expect: u64 = (0..FRAMES as u64).map(|i| i * i).sum();
    (0..iters)
        .map(|_| {
            let started = Instant::now();
            let handle = launch(cluster, app);
            let r = handle.wait(Duration::from_secs(60)).expect("result");
            assert_eq!(r.as_u64().expect("u64"), expect, "wrong sum");
            started.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

/// Nearest-rank percentile of a sample (p in [0, 100]).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn stats(mut v: Vec<f64>) -> (f64, f64, f64) {
    v.sort_by(|a, b| a.total_cmp(b));
    (
        percentile(&v, 50.0),
        percentile(&v, 99.0),
        percentile(&v, 99.9),
    )
}

fn main() {
    let iters = iters();
    println!(
        "E10: hedged dispatch — {SITES} sites, one straggler ({SLOW_MS}ms vs {BASE_MS}ms), \
{FRAMES}-frame fan, {iters} runs"
    );
    rule(76);

    // Tail latency, hedging off vs on, same straggler.
    let mut tails: Vec<(String, f64, f64, f64)> = Vec::new();
    let mut hedge_counters = (0u64, 0u64);
    for hedged in [false, true] {
        let cluster =
            InProcessCluster::with_configs(vec![bench_config(); SITES], None).expect("cluster");
        let slow = cluster.site(SITES - 1).id();
        let policy = if hedged {
            ReplicationPolicy::Hedge {
                delay: Duration::from_millis(HEDGE_DELAY_MS),
                selector: ReplicaSelector::Thread(0),
            }
        } else {
            ReplicationPolicy::Off
        };
        let app = fan_app(policy, Some(slow), BASE_MS, SLOW_MS);
        let (p50, p99, p999) = stats(makespans(&cluster, &app, iters));
        if hedged {
            for i in 0..SITES {
                let s = cluster.site(i).inner().metrics.snapshot();
                hedge_counters.0 += s.hedges_fired;
                hedge_counters.1 += s.hedge_wins;
            }
        }
        tails.push((
            if hedged { "hedged" } else { "off" }.to_string(),
            p50,
            p99,
            p999,
        ));
    }
    println!(
        "{:>8} {:>10} {:>10} {:>10}",
        "hedging", "p50 (ms)", "p99 (ms)", "p999 (ms)"
    );
    for (name, p50, p99, p999) in &tails {
        println!("{name:>8} {p50:>10.1} {p99:>10.1} {p999:>10.1}");
    }
    println!(
        "hedges fired: {}, hedge wins: {}",
        hedge_counters.0, hedge_counters.1
    );
    rule(76);

    // Replication overhead on a healthy cluster: median factor over Off.
    println!("replication overhead (no straggler, median of {iters} runs)");
    let mut medians: Vec<(String, f64)> = Vec::new();
    for (name, policy) in [
        ("off".to_string(), ReplicationPolicy::Off),
        (
            "k2".to_string(),
            ReplicationPolicy::Replicate {
                k: 2,
                selector: ReplicaSelector::Thread(0),
            },
        ),
        (
            "k3".to_string(),
            ReplicationPolicy::Replicate {
                k: 3,
                selector: ReplicaSelector::Thread(0),
            },
        ),
    ] {
        let cluster =
            InProcessCluster::with_configs(vec![bench_config(); SITES], None).expect("cluster");
        let app = fan_app(policy, None, BASE_MS, BASE_MS);
        let (p50, _, _) = stats(makespans(&cluster, &app, iters));
        medians.push((name, p50));
    }
    let base = medians[0].1;
    for (name, p50) in &medians {
        println!("{name:>8}: {p50:>8.1} ms   ({:.2}x vs off)", p50 / base);
    }
    rule(76);

    let mut json = String::from("{\n  \"bench\": \"hedged_tail\",\n");
    json.push_str(&format!("  \"sites\": {SITES},\n"));
    json.push_str(&format!("  \"frames\": {FRAMES},\n"));
    json.push_str(&format!("  \"iters\": {iters},\n"));
    json.push_str(&format!("  \"base_ms\": {BASE_MS},\n"));
    json.push_str(&format!("  \"slow_ms\": {SLOW_MS},\n"));
    json.push_str(&format!("  \"hedge_delay_ms\": {HEDGE_DELAY_MS},\n"));
    for (name, p50, p99, p999) in &tails {
        json.push_str(&format!(
            "  \"{name}\": {{ \"p50_ms\": {p50:.1}, \"p99_ms\": {p99:.1}, \"p999_ms\": {p999:.1} }},\n"
        ));
    }
    json.push_str(&format!("  \"hedges_fired\": {},\n", hedge_counters.0));
    json.push_str(&format!("  \"hedge_wins\": {},\n", hedge_counters.1));
    json.push_str(&format!(
        "  \"overhead_factor_k2\": {:.3},\n",
        medians[1].1 / base
    ));
    json.push_str(&format!(
        "  \"overhead_factor_k3\": {:.3}\n",
        medians[2].1 / base
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_hedge.json", &json).expect("write BENCH_hedge.json");
    println!("wrote BENCH_hedge.json");
}
