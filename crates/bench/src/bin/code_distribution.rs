//! E10 — code distribution and compile-on-the-fly (paper §4, code
//! manager): binaries are fetched from code distribution sites; a site
//! of a platform nobody compiled for yet receives *source* and compiles
//! it on the fly — "fast enough not to slow the system too much, mainly
//! since microthreads are short code fragments".
//!
//! Simulated: homogeneous vs foreign-platform sites under varying
//! compile costs; plus the real runtime's code-manager counters on a
//! mixed-platform cluster.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin code_distribution
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_apps::primes::PrimesProgram;
use sdvm_bench::{cluster_config, primes_graph, rule, simulate};
use sdvm_core::{InProcessCluster, SiteConfig};
use sdvm_types::PlatformId;
use std::time::Duration;

fn main() {
    println!("E10: code distribution — binary fetch vs compile on the fly");
    rule(72);
    let g = primes_graph(200, 10);
    let base = simulate(cluster_config(4), g.clone());
    println!(
        "4 same-platform sites : {:>7.1}s  (binary fetches: {}, compiles: {})",
        base.makespan, base.binary_fetches, base.compiles
    );
    for &foreign in &[1usize, 2, 3] {
        for &compile in &[0.05f64, 0.5, 2.0] {
            let mut cfg = cluster_config(4);
            cfg.compile = compile;
            for i in 0..foreign {
                cfg.sites[3 - i].platform = 9;
            }
            let m = simulate(cfg, g.clone());
            println!(
                "{foreign} foreign site(s), compile {compile:>4.2}s : {:>7.1}s  (compiles: {})",
                m.makespan, m.compiles
            );
        }
    }
    rule(72);
    println!("expected shape: compiles are one-off per (microthread, site); even a");
    println!("2 s compile barely moves the makespan of a long run — the paper's");
    println!("\"fast enough\" observation.");
    println!();

    // Real runtime: 1 home-platform + 2 foreign-platform sites.
    let mut cfg_home = SiteConfig::default();
    cfg_home.platform = PlatformId(1);
    let mut cfg_foreign = SiteConfig::default();
    cfg_foreign.platform = PlatformId(2);
    cfg_foreign.compile_latency = Duration::from_millis(10);
    let cluster =
        InProcessCluster::with_configs(vec![cfg_home, cfg_foreign.clone(), cfg_foreign], None)
            .expect("cluster");
    let prog = PrimesProgram {
        p: 60,
        width: 8,
        spin: 0,
        sleep_us: 4_000,
    };
    let handle = prog.launch(cluster.site(0)).expect("launch");
    handle.wait(Duration::from_secs(120)).expect("result");
    println!("real runtime, mixed platforms (1×home + 2×foreign):");
    for i in 0..3 {
        let s = cluster.site(i).inner();
        let stats = s.code.stats();
        println!(
            "  site {}: on-the-fly compiles = {}, remote code fetches = {}",
            cluster.site(i).id(),
            stats.compiles,
            stats.remote_fetches
        );
    }
    rule(72);
}
