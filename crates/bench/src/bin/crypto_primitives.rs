//! Crypto primitive throughput, machine-readable.
//!
//! Measures the v2 hot-path primitives in isolation — ChaCha20
//! keystream XOR (wide 4-block path), HMAC-SHA-256 with precomputed
//! ipad/opad midstates, and whole-record seal/open — and writes
//! `BENCH_crypto.json` into the working directory. These are the
//! numbers the batch-sealed record design trades against: per-record
//! cost ≈ keystream setup + MAC, so batching N records pays one of each.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin crypto_primitives
//! ```

use sdvm_bench::rule;
use sdvm_crypto::chacha::ChaChaKey;
use sdvm_crypto::hmac::{hmac_sha256, HmacKey};
use sdvm_crypto::SecureChannel;
use std::hint::black_box;
use std::time::{Duration, Instant};

const MEASURE: Duration = Duration::from_millis(600);

/// Run `step` repeatedly for the measurement window; returns ns/call.
fn measure(mut step: impl FnMut()) -> f64 {
    for _ in 0..32 {
        step();
    }
    let start = Instant::now();
    let mut calls = 0u64;
    while start.elapsed() < MEASURE {
        for _ in 0..64 {
            step();
        }
        calls += 64;
    }
    start.elapsed().as_secs_f64() * 1e9 / calls as f64
}

fn mib_per_sec(bytes: usize, ns_per_call: f64) -> f64 {
    bytes as f64 / (ns_per_call / 1e9) / (1024.0 * 1024.0)
}

struct Row {
    name: String,
    ns_per_call: f64,
    mib_per_sec: f64,
}

fn main() {
    println!("crypto primitives: wide ChaCha20, HMAC midstates, seal/open");
    rule(72);
    let mut rows: Vec<Row> = Vec::new();

    // ChaCha20 keystream XOR throughput.
    let key = ChaChaKey::new(&[7u8; 32]);
    let nonce = [9u8; 12];
    for size in [64usize, 256, 1 << 20] {
        let mut buf = vec![0xa5u8; size];
        let ns = measure(|| key.xor(&nonce, 1, black_box(&mut buf)));
        rows.push(Row {
            name: format!("chacha20_xor/{size}"),
            ns_per_call: ns,
            mib_per_sec: mib_per_sec(size, ns),
        });
    }

    // HMAC on a short (64 B) message: one-shot vs midstate keying.
    let data = vec![0x5au8; 64];
    let ns = measure(|| {
        black_box(hmac_sha256(b"key material here", black_box(&data)));
    });
    rows.push(Row {
        name: "hmac_oneshot/64".into(),
        ns_per_call: ns,
        mib_per_sec: mib_per_sec(64, ns),
    });
    let hk = HmacKey::new(b"key material here");
    let ns = measure(|| {
        black_box(hk.mac_of(black_box(&data)));
    });
    rows.push(Row {
        name: "hmac_midstate/64".into(),
        ns_per_call: ns,
        mib_per_sec: mib_per_sec(64, ns),
    });

    // Whole-record seal and in-place open per payload size.
    for size in [64usize, 256, 1024, 4096] {
        let payload = vec![0xabu8; size];
        let mut tx = SecureChannel::new(&[3u8; 32]);
        let ns = measure(|| {
            black_box(tx.seal(black_box(&payload)));
        });
        rows.push(Row {
            name: format!("seal/{size}"),
            ns_per_call: ns,
            mib_per_sec: mib_per_sec(size, ns),
        });

        let mut tx = SecureChannel::new(&[3u8; 32]);
        let mut rx = SecureChannel::new(&[3u8; 32]);
        let ns = measure(|| {
            let mut sealed = tx.seal(black_box(&payload)).to_vec();
            rx.open_in_place(&mut sealed, 0).expect("authentic");
            black_box(&sealed);
        });
        rows.push(Row {
            name: format!("seal_plus_open_in_place/{size}"),
            ns_per_call: ns,
            mib_per_sec: mib_per_sec(size, ns),
        });
    }

    for r in &rows {
        println!(
            "{:>28}: {:>9.0} ns/call  {:>9.1} MiB/s",
            r.name, r.ns_per_call, r.mib_per_sec
        );
    }
    rule(72);

    let mut json = String::from("{\n  \"bench\": \"crypto_primitives\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_call\": {:.1}, \"mib_per_sec\": {:.3}}}{}\n",
            r.name,
            r.ns_per_call,
            r.mib_per_sec,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_crypto.json", &json).expect("write BENCH_crypto.json");
    println!("wrote BENCH_crypto.json");
}
