//! E9 — heterogeneous clusters and load adaptation (paper §3.5): "Sites
//! having less computing power are relieved while more powerful sites
//! get more work due to the load balancing mechanism."
//!
//! Simulated: mixed-speed clusters on the prime search; compares each
//! site's share of executed tasks with its share of the cluster's total
//! speed, plus the makespan against the equivalent-total-speed
//! homogeneous cluster.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin heterogeneous
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::{cluster_config, primes_graph, rule, simulate};
use sdvm_sim::SimSite;

fn run_mix(name: &str, speeds: &[f64]) {
    let g = primes_graph(500, 20);
    let mut cfg = cluster_config(speeds.len());
    cfg.sites = speeds.iter().map(|&s| SimSite::with_speed(s)).collect();
    let m = simulate(cfg, g);
    let total_speed: f64 = speeds.iter().sum();
    println!("cluster: {name} (total speed {total_speed:.1})");
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>12}",
        "site", "speed", "speed share", "work share", "busy (s)"
    );
    let total_tasks: u64 = m.executed_per_site.iter().sum();
    for (i, &s) in speeds.iter().enumerate() {
        println!(
            "{:>6} {:>7.1} {:>11.1}% {:>11.1}% {:>12.1}",
            i,
            s,
            100.0 * s / total_speed,
            100.0 * m.executed_per_site[i] as f64 / total_tasks as f64,
            m.busy[i]
        );
    }
    println!("makespan: {:.1}s  (tasks: {total_tasks})", m.makespan);
    rule(64);
}

fn main() {
    println!("E9: heterogeneous clusters — work follows speed (simulated)");
    rule(64);
    run_mix("4 equal sites", &[1.0, 1.0, 1.0, 1.0]);
    run_mix("1 fast + 3 slow", &[4.0, 1.0, 1.0, 1.0]);
    run_mix("stair", &[4.0, 2.0, 1.0, 0.5]);
    run_mix("one very slow straggler", &[1.0, 1.0, 1.0, 0.1]);
    println!("expected shape: work share tracks speed share; a straggler is");
    println!("relieved (its share collapses) instead of gating the makespan.");
}
