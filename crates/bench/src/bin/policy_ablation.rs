//! E4 — scheduling-policy ablation (paper §3.3/§4): the SDVM uses FIFO
//! for local scheduling ("to avoid starving of microframes") and LIFO
//! for answering help requests ("to hide the communication latencies"),
//! and leaves the policy space as "room for more research". This
//! experiment walks that space, including the CDAG-priority policy fed
//! by scheduling hints (§3.3).
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin policy_ablation
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::{cluster_config, primes_graph, rule};
use sdvm_cdag::generators;
use sdvm_sim::Simulation;
use sdvm_types::QueuePolicy;

const POLICIES: [QueuePolicy; 3] = [QueuePolicy::Fifo, QueuePolicy::Lifo, QueuePolicy::Priority];

fn run_case(name: &str, graph: sdvm_cdag::Cdag, sites: usize) {
    println!("workload: {name} on {sites} sites");
    rule(66);
    println!(
        "{:>10} {:>10} {:>12} {:>10} {:>10}",
        "local", "help", "makespan", "migrations", "help-req"
    );
    rule(66);
    let mut best: Option<(f64, QueuePolicy, QueuePolicy)> = None;
    for local in POLICIES {
        for help in POLICIES {
            let mut cfg = cluster_config(sites);
            cfg.local_policy = local;
            cfg.help_policy = help;
            cfg.use_hints = local == QueuePolicy::Priority || help == QueuePolicy::Priority;
            let m = Simulation::new(cfg, graph.clone()).run();
            println!(
                "{:>10} {:>10} {:>11.3}s {:>10} {:>10}",
                local.to_string(),
                help.to_string(),
                m.makespan,
                m.migrations,
                m.help_requests
            );
            if best.map(|(t, _, _)| m.makespan < t).unwrap_or(true) {
                best = Some((m.makespan, local, help));
            }
        }
    }
    if let Some((t, l, h)) = best {
        println!("best: local={l} help={h} ({t:.3}s)");
    }
    rule(66);
}

fn main() {
    println!("E4: queue-policy ablation (paper default: local=fifo, help=lifo)");
    println!();
    run_case("primes p=200 width=10", primes_graph(200, 10), 4);
    println!();
    run_case(
        "layered random DAG (12 layers × 32)",
        generators::layered_random(12, 32, 42),
        4,
    );
    println!();
    run_case("wavefront 24×24", generators::wavefront(24, 40_000), 4);
}
