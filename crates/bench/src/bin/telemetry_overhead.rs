//! Telemetry overhead on the message hot path, machine-readable.
//!
//! PR 1 established the outbound pipeline cost (`BENCH_message_path.json`,
//! encrypted zero-copy seal ≈ µs/msg). PR 3 adds per-message telemetry:
//! seal timing into the metrics registry, a `Metrics::observe` of the
//! outgoing hop, and a ring-buffer event-bus emit. This bench measures
//! the same sealed encode path bare (the PR 1 baseline) and with the
//! telemetry layer in its three configurations — metrics only (the
//! always-on floor, what a `TraceLog`-less site pays), bus filtered off
//! (`SDVM_TELEMETRY=off`), and everything on — and writes
//! `BENCH_telemetry_overhead.json` with the relative overhead.
//!
//! The acceptance bar is `overhead_percent < 5` for the telemetry a
//! production site pays *unconditionally* per message on the current
//! hot path. Since the crypto-v2 PR that path is drain-sealed: the
//! seal-duration histogram is sampled once per *batch* at the writer's
//! drain, and the send path reads no clocks unless a trace bus is
//! attached and wants `Hops` events — the always-on floor is two
//! counter observes plus a branch, with a 1/64 batch share of the seal
//! timing. Full capture (`SDVM_TELEMETRY=all` with a bus attached) is
//! an explicit opt-in priced separately below, like running with a
//! profiler attached; it is reported, not gated.
//!
//! The denominator is the recorded `message_path` number for the
//! per-frame sealed path (`encrypted/new/1peer` in
//! `BENCH_message_path.json`): the recorded reference keeps the gate
//! stable across runs, where a live re-measured denominator would make
//! it flap with scheduler and thermal jitter. The live baseline is
//! still measured and reported so drift from the recorded number stays
//! visible. Without the reference file the live baseline is the
//! denominator.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin telemetry_overhead
//! ```

use bytes::Bytes;
use sdvm_bench::rule;
use sdvm_core::telemetry::Metrics;
use sdvm_core::{TraceEvent, TraceLog};
use sdvm_crypto::{KeyStore, NONCE_PREFIX_LEN};
use sdvm_types::{FileHandle, ManagerId, SiteId};
use sdvm_wire::{begin_frame, finish_frame, Payload, SdMessage, WireWriter};
use std::time::{Duration, Instant};

const TAG_PEER: u8 = 1;
const PAYLOAD_LEN: usize = 256;
const MEASURE: Duration = Duration::from_millis(600);

fn sample_msg(dst: u32) -> SdMessage {
    SdMessage::new(
        SiteId(1),
        ManagerId::Memory,
        SiteId(dst),
        ManagerId::Memory,
        42,
        Payload::FileData {
            handle: FileHandle {
                site: SiteId(1),
                local: 7,
            },
            data: Bytes::from(vec![0xabu8; PAYLOAD_LEN]),
        },
    )
}

/// The PR 1 zero-copy sealed encode path, verbatim.
fn seal(cap: &mut usize, ks: &mut KeyStore, dst: u32, msg: &SdMessage) -> Bytes {
    let mut buf = begin_frame(*cap);
    buf.put_u8(TAG_PEER);
    buf.extend_from_slice(&1u32.to_le_bytes());
    let seal_start = buf.len();
    buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
    let mut w = WireWriter::from_buf(buf);
    msg.encode_into(&mut w);
    let mut buf = w.into_buf();
    ks.seal_for_in_place(dst, &mut buf, seal_start);
    let frame = finish_frame(buf).expect("frame");
    *cap = frame.len() + 32;
    frame
}

fn hop_event(manager: ManagerId) -> TraceEvent {
    TraceEvent::MessageHop {
        site: SiteId(1),
        manager,
        payload: "FileData",
        outgoing: true,
        trace: 7,
    }
}

/// Exactly the telemetry the runtime's send path adds around one sealed
/// outbound message: two shared clock reads stamping the
/// message-manager and network-manager hops, the seal-duration
/// histogram, and both hop events pushed to the bus under one
/// ring-lock acquisition.
fn send_telemetry(metrics: &Metrics, bus: &TraceLog, t0: Instant, t1: Instant) {
    metrics
        .seal_us
        .observe_duration(t1.saturating_duration_since(t0));
    let ev0 = hop_event(ManagerId::Message);
    metrics.observe(&ev0);
    let ev1 = hop_event(ManagerId::Network);
    metrics.observe(&ev1);
    bus.emit_pair_at(ev0, t0, ev1, t1);
}

/// The PR 1 recorded cost of this exact path: `encrypted/new/1peer`
/// from `BENCH_message_path.json`, extracted with a plain string scan
/// (the repo carries no JSON dependency).
fn pr1_reference_ns() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_message_path.json").ok()?;
    let line = text
        .lines()
        .find(|l| l.contains("\"encrypted/new/1peer\""))?;
    let rest = line.split("\"ns_per_msg\":").nth(1)?;
    rest.trim()
        .trim_end_matches(['}', ',', ' '])
        .parse::<f64>()
        .ok()
}

fn measure_once(step: &mut impl FnMut()) -> f64 {
    for _ in 0..64 {
        step();
    }
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed() < MEASURE {
        for _ in 0..32 {
            step();
        }
        ops += 32;
    }
    start.elapsed().as_secs_f64() * 1e9 / ops as f64
}

fn main() {
    println!("telemetry overhead on the sealed message path (vs PR 1 baseline)");
    rule(78);
    let msg = sample_msg(2);

    // Per-config state. Each closure reproduces the telemetry work the
    // runtime adds around one sealed outbound message.
    let mut ks0 = KeyStore::from_password(1, "bench-pw");
    let mut cap0 = 128usize;
    // PR 1 baseline: seal only, no telemetry anywhere.
    let mut baseline_step = || {
        std::hint::black_box(seal(&mut cap0, &mut ks0, 2, &msg));
    };

    // Always-on floor: timing + Metrics::observe of both hops (what
    // every site pays even without a TraceLog attached). The
    // filtered-off bus drops both emits on the category mask.
    let metrics1 = Metrics::new();
    let bus_none = TraceLog::with_filter(0);
    let mut ks1 = KeyStore::from_password(1, "bench-pw");
    let mut cap1 = 128usize;
    let mut metrics_step = || {
        let t0 = Instant::now();
        std::hint::black_box(seal(&mut cap1, &mut ks1, 2, &msg));
        let t1 = Instant::now();
        send_telemetry(&metrics1, &bus_none, t0, t1);
    };

    // Everything on: metrics + two ring-buffer emits per message (with
    // wraparound, since the loop emits far more events than the ring
    // holds).
    let metrics3 = Metrics::new();
    let bus_on = TraceLog::new();
    let mut ks3 = KeyStore::from_password(1, "bench-pw");
    let mut cap3 = 128usize;
    let mut on_step = || {
        let t0 = Instant::now();
        std::hint::black_box(seal(&mut cap3, &mut ks3, 2, &msg));
        let t1 = Instant::now();
        send_telemetry(&metrics3, &bus_on, t0, t1);
    };

    // The capture-mode telemetry layer in isolation: exactly the
    // per-message additions with a bus attached and unfiltered (both
    // clock reads included), no seal underneath. Timing this directly —
    // instead of subtracting two large, jittery totals — gives the
    // added cost at nanosecond resolution.
    let metrics4 = Metrics::new();
    let bus4 = TraceLog::new();
    let mut ops_step = || {
        let t0 = Instant::now();
        let t1 = Instant::now();
        send_telemetry(&metrics4, &bus4, t0, t1);
    };

    // The always-on floor of the drain-sealed send path, per message:
    // two hop-counter observes and the bus check (no bus attached — the
    // production default), plus a 1/64 batch share of the seal timing
    // the writer's drain records once per batch.
    const BATCH: u64 = 64;
    let metrics5 = Metrics::new();
    let bus5: Option<TraceLog> = None;
    let mut floor_step = || {
        for _ in 0..BATCH {
            if bus5
                .as_ref()
                .is_some_and(|b| b.wants(sdvm_core::Category::Hops))
            {
                unreachable!("no bus attached in the floor configuration");
            }
            let ev0 = hop_event(ManagerId::Message);
            metrics5.observe(&ev0);
            let ev1 = hop_event(ManagerId::Network);
            metrics5.observe(&ev1);
            std::hint::black_box(&metrics5);
        }
        // Once per batch: the drain's seal timing.
        let t0 = Instant::now();
        let t1 = Instant::now();
        metrics5
            .seal_us
            .observe_duration(t1.saturating_duration_since(t0));
    };

    // Interleave the configurations over several rounds and keep each
    // one's best time: the min is robust against scheduler noise, which
    // otherwise dwarfs a sub-5% effect.
    const ROUNDS: usize = 5;
    let names = [
        "baseline_seal",
        "bus_filtered_off",
        "telemetry_on",
        "capture_ops_alone",
        "floor_ops_alone",
    ];
    let mut best = [f64::INFINITY; 5];
    for _ in 0..ROUNDS {
        best[0] = best[0].min(measure_once(&mut baseline_step));
        best[1] = best[1].min(measure_once(&mut metrics_step));
        best[2] = best[2].min(measure_once(&mut on_step));
        best[3] = best[3].min(measure_once(&mut ops_step));
        // floor_step covers a whole batch per call; report per message.
        best[4] = best[4].min(measure_once(&mut floor_step) / BATCH as f64);
    }
    let results: Vec<(String, f64)> = names
        .iter()
        .zip(best.iter())
        .map(|(n, ns)| (n.to_string(), *ns))
        .collect();

    let baseline = results[0].1;
    for (name, ns) in &results[..3] {
        println!(
            "{name:>20}: {ns:>8.1} ns/msg  (+{:.2}% over baseline)",
            (ns - baseline) / baseline * 100.0
        );
    }
    let capture_ops = results[3].1;
    let floor_ops = results[4].1;
    println!(
        "   capture_ops_alone: {capture_ops:>8.1} ns/msg  (bus attached + unfiltered, opt-in)"
    );
    println!("     floor_ops_alone: {floor_ops:>8.1} ns/msg  (always-on, drain-sealed path)");
    // The gate: the unconditional per-message telemetry relative to the
    // recorded message cost (live baseline when no reference file).
    let (reference, ref_src) = match pr1_reference_ns() {
        Some(ns) => (ns, "recorded encrypted/new/1peer"),
        None => (baseline, "live baseline"),
    };
    let overhead_percent = floor_ops / reference * 100.0;
    let pass = overhead_percent < 5.0;
    rule(78);
    println!(
        "always-on telemetry: {floor_ops:.0} ns on a {reference:.0} ns message ({ref_src}) = {overhead_percent:.2}% ({}); full capture costs {capture_ops:.0} ns/msg on top when explicitly enabled",
        if pass { "PASS, < 5%" } else { "FAIL, >= 5%" }
    );

    let mut json = String::from("{\n  \"bench\": \"telemetry_overhead\",\n");
    json.push_str(&format!("  \"payload_bytes\": {PAYLOAD_LEN},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"ns_per_msg\": {ns:.1}}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"reference_ns_per_msg\": {reference:.1},\n  \"reference\": \"{ref_src}\",\n"
    ));
    json.push_str(&format!(
        "  \"overhead_percent\": {overhead_percent:.2},\n  \"pass\": {pass}\n}}\n"
    ));
    std::fs::write("BENCH_telemetry_overhead.json", &json)
        .expect("write BENCH_telemetry_overhead.json");
    println!("wrote BENCH_telemetry_overhead.json");
    assert!(pass, "telemetry overhead must stay below 5%");
}
