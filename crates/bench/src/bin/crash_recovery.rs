//! E7 — crash management (paper §2.2/§6, \[4\]): "even crashes of
//! individual sites may be overcome without loss of data", at the price
//! that "a recovery costs time and resources".
//!
//! Simulated: the prime search on 8 sites with 1/2/3 sites crashing
//! mid-run, sweeping the crash-detection timeout — the recovery cost the
//! paper trades off. Also runs a *real* crash on the threaded runtime
//! and reports the backup/recovery counters.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin crash_recovery
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_apps::primes::{nth_prime, PrimesProgram};
use sdvm_bench::{cluster_config, primes_graph, rule, simulate};
use sdvm_core::{InProcessCluster, SiteConfig, TraceEvent, TraceLog};
use std::time::Duration;

fn main() {
    println!("E7: crash management — recovery cost (simulated primes p=500 w=20, 8 sites)");
    rule(76);
    let g = primes_graph(500, 20);
    let baseline = simulate(cluster_config(8), g.clone()).makespan;
    println!("no crash: {baseline:.1}s");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "crashes", "detect (s)", "makespan", "vs baseline", "re-executed"
    );
    rule(76);
    for &crashes in &[1usize, 2, 3] {
        for &detect in &[0.1f64, 0.5, 2.0] {
            let mut cfg = cluster_config(8);
            cfg.crash_detect = detect;
            for i in 0..crashes {
                cfg.sites[7 - i].crash_at = Some(baseline * 0.3 + i as f64 * 0.05);
            }
            let m = simulate(cfg, g.clone());
            println!(
                "{:>8} {:>12.1} {:>11.1}s {:>13.1}% {:>12}",
                crashes,
                detect,
                m.makespan,
                (m.makespan / baseline - 1.0) * 100.0,
                m.reexecutions
            );
        }
    }
    rule(76);

    // Real runtime: crash one of three sites mid-run, program finishes.
    println!();
    println!("real runtime: 3 sites, site 3 crashes mid-run (crash tolerance on)");
    let trace = TraceLog::new();
    const CRASH_TIMEOUT_MS: u64 = 300;
    let mut cfg = SiteConfig::default().with_crash_tolerance();
    cfg.heartbeat_interval = Duration::from_millis(50);
    cfg.crash_timeout = Duration::from_millis(CRASH_TIMEOUT_MS);
    let cluster =
        InProcessCluster::with_configs(vec![cfg; 3], Some(trace.clone())).expect("cluster");
    let prog = PrimesProgram {
        p: 60,
        width: 16,
        spin: 0,
        sleep_us: 8_000,
    };
    let handle = prog.launch(cluster.site(0)).expect("launch");
    // Crash only once the victim demonstrably received work.
    let victim = cluster.site(2).id();
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while trace
        .filter(|e| matches!(e, TraceEvent::HelpGranted { requester, .. } if *requester == victim))
        .is_empty()
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(50));
    let crashed_at = std::time::Instant::now();
    cluster.crash(2);
    // Watch for the death verdict concurrently with the program so the
    // detection latency is measured when the event lands, not when we
    // happen to look.
    let detection_latency = {
        let trace = trace.clone();
        std::thread::spawn(move || {
            let deadline = crashed_at + Duration::from_secs(10);
            loop {
                if !trace
                    .filter(|e| matches!(e, TraceEvent::SiteGone { gone, crashed: true, .. } if *gone == victim))
                    .is_empty()
                {
                    return Some(crashed_at.elapsed());
                }
                if std::time::Instant::now() > deadline {
                    return None;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let result = handle
        .wait(Duration::from_secs(120))
        .expect("recovered result");
    let makespan = crashed_at.elapsed();
    assert_eq!(result.as_u64().unwrap(), nth_prime(60));
    let detection_latency = detection_latency.join().expect("detector watcher");
    let detected = trace
        .filter(|e| matches!(e, TraceEvent::SiteGone { crashed: true, .. }))
        .len();
    // Any declared death of a site that never crashed is a false positive
    // of the suspicion detector (the whole point of two-phase detection
    // is to keep this at zero).
    let false_positives = trace
        .filter(
            |e| matches!(e, TraceEvent::SiteGone { gone, crashed: true, .. } if *gone != victim),
        )
        .len();
    let recovered: usize = trace
        .filter(|e| matches!(e, TraceEvent::Recovered { .. }))
        .iter()
        .map(|e| match e {
            TraceEvent::Recovered {
                frames, objects, ..
            } => frames + objects,
            _ => 0,
        })
        .sum();
    println!(
        "result correct: {} (the 60th prime)",
        result.as_u64().unwrap()
    );
    println!("crash detections observed : {detected}");
    println!("backup entries revived    : {recovered}");
    match detection_latency {
        Some(d) => println!(
            "detection latency         : {:.0} ms",
            d.as_secs_f64() * 1e3
        ),
        None => println!("detection latency         : not observed within 10s"),
    }
    println!("false positives           : {false_positives}");
    println!(
        "recovery makespan         : {:.0} ms (crash to result delivery)",
        makespan.as_secs_f64() * 1e3
    );
    rule(76);

    let mut json = String::from("{\n  \"bench\": \"crash_recovery\",\n");
    json.push_str("  \"sites\": 3,\n");
    json.push_str(&format!("  \"crash_timeout_ms\": {CRASH_TIMEOUT_MS},\n"));
    json.push_str(&format!(
        "  \"detection_latency_ms\": {},\n",
        detection_latency
            .map(|d| format!("{:.1}", d.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "null".into())
    ));
    json.push_str(&format!("  \"false_positives\": {false_positives},\n"));
    json.push_str(&format!("  \"crash_detections\": {detected},\n"));
    json.push_str(&format!("  \"backup_entries_revived\": {recovered},\n"));
    json.push_str(&format!(
        "  \"recovery_makespan_ms\": {:.1}\n",
        makespan.as_secs_f64() * 1e3
    ));
    json.push_str("}\n");
    std::fs::write("BENCH_crash_recovery.json", &json).expect("write BENCH_crash_recovery.json");
    println!("wrote BENCH_crash_recovery.json");
}
