//! E-scale — validate the scale-out transport plane at 1000 sites.
//!
//! Three questions, answered headless in the discrete-event simulator
//! (1000 real sockets-and-threads sites do not fit one CI box; the
//! simulator mirrors the runtime's scheduling, Vivaldi coordinates and
//! driver-capacity semantics — DESIGN.md §9):
//!
//! 1. **Table-1 shape survives the event-driven driver.** With the
//!    poller-capacity model switched on (4 modelled drivers per site,
//!    a fixed per-message service time), small clusters must still show
//!    the paper's near-linear speedup at 2/4/8 sites.
//! 2. **Speedup keeps rising to 1000 sites, sublinearly.** A wide
//!    fork/join (8000 independent tasks) on 250/500/1000 sites must
//!    give monotonically rising, sublinear speedup — the paper's
//!    Table-1 shape extrapolated two orders of magnitude, limited by
//!    one-frame-per-grant distribution and driver serialization.
//! 3. **Proximity routing beats uniform at scale.** On a clustered
//!    topology (10 islands of 100 sites on a 20 ms-radius circle,
//!    0–3 ms intra-island spread), Vivaldi-ranked help targeting must
//!    deliver a measurably lower median help RTT than uniform
//!    selection, with everything else identical.
//!
//! Writes `BENCH_scale.json`; the final asserts make this binary the
//! CI gate (`scale_sim` job).
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin scale_sim
//! ```

use sdvm_bench::rule;
use sdvm_cdag::generators::{fork_join, iterative_fork_join};
use sdvm_sim::{SimConfig, SimMetrics, SimSite, Simulation};

/// Driver occupancy per handled message (s): a poller moving one
/// coalesced write plus dispatch, tens of microseconds on 2005-era
/// hardware. Divided by `net_drivers` to get effective service time.
const DRIVER_SERVICE: f64 = 4.0e-5;

/// Modelled pollers per site — matches the runtime's
/// `TcpTransport::DEFAULT_POLLERS`.
const NET_DRIVERS: usize = 4;

/// Per-worker cost of the wide fork/join (work units; 0.1 s at speed 1).
const WORKER_COST: u64 = 100_000;

fn capacity_cfg(n: usize) -> SimConfig {
    let mut cfg = SimConfig::homogeneous(n);
    cfg.net_drivers = NET_DRIVERS;
    cfg.driver_service = DRIVER_SERVICE;
    cfg
}

fn run(cfg: SimConfig, graph: sdvm_cdag::Cdag) -> SimMetrics {
    Simulation::new(cfg, graph).run()
}

fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    v[v.len() / 2]
}

/// 10 islands of `per_island` sites each: islands sit on a 20 ms-radius
/// circle in the x/y latency plane (island gaps ≈ 12–40 ms); members
/// spread 0–3 ms along z so intra-island RTTs are non-degenerate —
/// Vivaldi's *relative* fit error cannot converge when every near pair
/// measures the identical RTT.
fn island_sites(islands: usize, per_island: usize) -> Vec<SimSite> {
    let mut sites = Vec::with_capacity(islands * per_island);
    for k in 0..islands {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / islands as f64;
        let (x, y) = (0.020 * theta.cos(), 0.020 * theta.sin());
        for m in 0..per_island {
            sites.push(SimSite::at((x, y, m as f64 * 5.0e-5)));
        }
    }
    sites
}

fn main() {
    let mut json = String::from("{\n  \"bench\": \"scale_sim\",\n");
    let mut pass = true;

    // ---- 1. Table-1 shape with the driver-capacity model on --------
    println!("scale_sim: event-driven transport plane at scale (simulated, virtual time)");
    rule(72);
    println!("Table-1 shape, driver capacity modelled ({NET_DRIVERS} pollers/site)");
    println!(
        "{:>6} {:>12} {:>9} {:>11}",
        "sites", "makespan", "speedup", "efficiency"
    );
    let small_graph = fork_join(0, 512, WORKER_COST, 100);
    let t1 = run(capacity_cfg(1), small_graph.clone()).makespan;
    json.push_str("  \"table1_shape\": [\n");
    let mut small_rows = Vec::new();
    for &n in &[1usize, 2, 4, 8] {
        let m = run(capacity_cfg(n), small_graph.clone());
        let s = t1 / m.makespan;
        let eff = s / n as f64;
        println!(
            "{:>6} {:>11.2}s {:>9.2} {:>10.1}%",
            n,
            m.makespan,
            s,
            eff * 100.0
        );
        small_rows.push((n, s));
        json.push_str(&format!(
            "    {{\"sites\": {}, \"makespan_s\": {:.4}, \"speedup\": {:.3}, \"efficiency\": {:.3}}}{}\n",
            n,
            m.makespan,
            s,
            eff,
            if n == 8 { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let s2 = small_rows[1].1;
    let s4 = small_rows[2].1;
    let s8 = small_rows[3].1;
    // Paper Table 1: ≈1.9–2.0 at 2 sites (implied), 3.4–3.6 at 4,
    // 6.4–7.0 at 8. Gate on the shape with slack for the driver model.
    let shape_ok = s2 > 1.7 && s4 > 3.0 && s8 > 5.5 && s8 < 8.01;
    println!("  shape gate (s2>1.7, s4>3.0, 5.5<s8<8.01): {shape_ok}");
    pass &= shape_ok;

    // ---- 2. Scale-out: 250 / 500 / 1000 sites ----------------------
    rule(72);
    println!("scale-out, 8000-task fork/join, drivers modelled");
    println!(
        "{:>6} {:>12} {:>9} {:>14}",
        "sites", "makespan", "speedup", "drv queue (s)"
    );
    let wide_graph = fork_join(0, 8000, WORKER_COST, 100);
    let t1_wide = run(capacity_cfg(1), wide_graph.clone()).makespan;
    json.push_str("  \"scale\": [\n");
    let mut scale_rows = Vec::new();
    for &n in &[250usize, 500, 1000] {
        let m = run(capacity_cfg(n), wide_graph.clone());
        let s = t1_wide / m.makespan;
        println!(
            "{:>6} {:>11.3}s {:>9.1} {:>14.4}",
            n, m.makespan, s, m.driver_queueing
        );
        scale_rows.push((n, s, m.driver_queueing));
        json.push_str(&format!(
            "    {{\"sites\": {}, \"makespan_s\": {:.4}, \"speedup\": {:.2}, \"driver_queueing_s\": {:.4}}}{}\n",
            n,
            m.makespan,
            s,
            m.driver_queueing,
            if n == 1000 { "" } else { "," }
        ));
    }
    json.push_str("  ],\n");
    let (s250, s500, s1000) = (scale_rows[0].1, scale_rows[1].1, scale_rows[2].1);
    let monotone = s250 < s500 && s500 < s1000;
    let sublinear = s1000 < 1000.0 && s500 < 500.0 && s250 < 250.0;
    let useful = s1000 > 100.0;
    println!("  scale gate (monotone {monotone}, sublinear {sublinear}, s1000>100 {useful})");
    pass &= monotone && sublinear && useful;

    // Fewer pollers must mean more queueing at 1000 sites (the
    // capacity limit the fixed pool trades against thread count).
    let mut one_driver = capacity_cfg(1000);
    one_driver.net_drivers = 1;
    let m1d = run(one_driver, wide_graph.clone());
    let q4 = scale_rows[2].2;
    let q1 = m1d.driver_queueing;
    let capacity_ok = q1 > q4;
    println!("  driver capacity: queueing 1 poller {q1:.4}s vs {NET_DRIVERS} pollers {q4:.4}s → {capacity_ok}");
    json.push_str(&format!(
        "  \"driver_capacity\": {{\"queueing_1_poller_s\": {q1:.4}, \"queueing_{NET_DRIVERS}_pollers_s\": {q4:.4}}},\n"
    ));
    pass &= capacity_ok;

    // ---- 3. Proximity vs uniform help routing at 1000 sites --------
    rule(72);
    println!("proximity routing, 10 islands x 100 sites, iterative fork/join");
    // Width below the site count: most sites are idle each round, so
    // help targeting is dominated by the rotate-fallback path — the one
    // proximity routing changes. (With width >= sites, nearly every
    // request chases the known-busiest site and routing is moot.)
    // Driver capacity stays off here: queueing delay at the saturated
    // fork site inflates measured help RTTs with load-dependent noise
    // that stalls Vivaldi's relative fit error (the runtime filters the
    // same way by learning from lightweight probe/heartbeat RTTs, not
    // from data-plane transfer times). Part 2 covers the capacity model.
    let prox_graph = iterative_fork_join(80, 600, 50_000);
    let mut medians = Vec::new();
    for &prox in &[false, true] {
        let mut cfg = SimConfig {
            sites: island_sites(10, 100),
            proximity_routing: prox,
            net_drivers: NET_DRIVERS,
            driver_service: 0.0,
            ..SimConfig::default()
        };
        cfg.help_backoff = 1e-3;
        let m = run(cfg, prox_graph.clone());
        // Steady-state median: the last quarter of samples, after the
        // Vivaldi warm-up (coordinates need a few hundred observations
        // each at this scale before the convergence gate opens — until
        // then proximity routing deliberately falls back to uniform).
        let tail: Vec<f64> = m.help_rtt[m.help_rtt.len() * 3 / 4..].to_vec();
        let steady = median(tail);
        println!(
            "  {:<9} median help RTT {:>8.3} ms whole-run, {:>8.3} ms steady-state  ({} samples, makespan {:.2}s)",
            if prox { "proximity" } else { "uniform" },
            m.help_rtt_median() * 1e3,
            steady * 1e3,
            m.help_rtt.len(),
            m.makespan
        );
        medians.push((m.help_rtt_median(), steady, m.help_rtt.len()));
    }
    let (uni_med, uni_steady, uni_n) = medians[0];
    let (prox_med, prox_steady, prox_n) = medians[1];
    let enough_samples = uni_n > 1000 && prox_n > 1000;
    let ratio = if uni_steady > 0.0 {
        prox_steady / uni_steady
    } else {
        1.0
    };
    let prox_ok = ratio < 0.5 && enough_samples;
    println!("  proximity gate (steady-state median <0.5x uniform, >1000 samples each): {prox_ok} (ratio {ratio:.2})");
    json.push_str(&format!(
        "  \"proximity\": {{\"uniform_median_ms\": {:.4}, \"proximity_median_ms\": {:.4}, \
         \"uniform_steady_ms\": {:.4}, \"proximity_steady_ms\": {:.4}, \"steady_ratio\": {:.3}, \
         \"uniform_samples\": {}, \"proximity_samples\": {}}},\n",
        uni_med * 1e3,
        prox_med * 1e3,
        uni_steady * 1e3,
        prox_steady * 1e3,
        ratio,
        uni_n,
        prox_n
    ));
    pass &= prox_ok;

    json.push_str(&format!("  \"pass\": {pass}\n}}\n"));
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    rule(72);
    println!("wrote BENCH_scale.json (pass={pass})");
    assert!(
        pass,
        "scale gate failed: table1 shape {shape_ok}, monotone {monotone}, sublinear {sublinear}, \
         s1000>100 {useful}, capacity {capacity_ok}, proximity {prox_ok}"
    );
}
