//! Outbound message-path throughput, machine-readable.
//!
//! Measures the encode→seal→frame pipeline (old three-copy layout vs
//! the zero-copy single-buffer layout) for plain and encrypted
//! envelopes, fanning out to 1 and 8 peers, plus a real end-to-end TCP
//! fan-out through the per-peer batched writer pipeline. Writes
//! `BENCH_message_path.json` into the working directory.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin message_path
//! ```

use bytes::{Bytes, BytesMut};
use sdvm_bench::rule;
use sdvm_crypto::{KeyStore, NONCE_PREFIX_LEN};
use sdvm_net::{TcpTransport, Transport};
use sdvm_types::{FileHandle, ManagerId, SiteId};
use sdvm_wire::{begin_frame, finish_frame, frame_bytes, Payload, SdMessage, WireWriter};
use std::time::{Duration, Instant};

const TAG_PLAIN: u8 = 0;
const TAG_PEER: u8 = 1;
const TAG_BATCH: u8 = 3;
const PAYLOAD_LEN: usize = 256;
/// Records per batch-sealed frame: the writer's drain cap.
const BATCH: usize = 64;
const MEASURE: Duration = Duration::from_millis(800);

fn sample_msg(dst: u32) -> SdMessage {
    SdMessage::new(
        SiteId(1),
        ManagerId::Memory,
        SiteId(dst),
        ManagerId::Memory,
        42,
        Payload::FileData {
            handle: FileHandle {
                site: SiteId(1),
                local: 7,
            },
            data: Bytes::from(vec![0xabu8; PAYLOAD_LEN]),
        },
    )
}

fn old_plain(msg: &SdMessage) -> Bytes {
    let plain = msg.to_bytes();
    let mut env = Vec::with_capacity(1 + plain.len());
    env.push(TAG_PLAIN);
    env.extend_from_slice(&plain);
    frame_bytes(&env).expect("frame")
}

fn new_plain(cap: &mut usize, msg: &SdMessage) -> Bytes {
    let mut buf = begin_frame(*cap);
    buf.put_u8(TAG_PLAIN);
    let mut w = WireWriter::from_buf(buf);
    msg.encode_into(&mut w);
    let frame = finish_frame(w.into_buf()).expect("frame");
    *cap = frame.len() + 32;
    frame
}

fn old_sealed(ks: &mut KeyStore, dst: u32, msg: &SdMessage) -> Bytes {
    let plain = msg.to_bytes();
    let sealed = ks.seal_for(dst, &plain);
    let mut env = Vec::with_capacity(5 + sealed.len());
    env.push(TAG_PEER);
    env.extend_from_slice(&1u32.to_le_bytes());
    env.extend_from_slice(&sealed);
    frame_bytes(&env).expect("frame")
}

fn new_sealed(cap: &mut usize, ks: &mut KeyStore, dst: u32, msg: &SdMessage) -> Bytes {
    let mut buf = begin_frame(*cap);
    buf.put_u8(TAG_PEER);
    buf.extend_from_slice(&1u32.to_le_bytes());
    let seal_start = buf.len();
    buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
    let mut w = WireWriter::from_buf(buf);
    msg.encode_into(&mut w);
    let mut buf = w.into_buf();
    ks.seal_for_in_place(dst, &mut buf, seal_start);
    let frame = finish_frame(buf).expect("frame");
    *cap = frame.len() + 32;
    frame
}

/// Serialize one message alone — the up-front cost on the drain-sealed
/// send path (`SecurityManager::encode_plain`).
fn encode_body(cap: &mut usize, msg: &SdMessage) -> Bytes {
    let mut w = WireWriter::from_buf(BytesMut::with_capacity(*cap));
    msg.encode_into(&mut w);
    let buf = w.into_buf();
    *cap = buf.len() + 32;
    buf.freeze()
}

/// Seal a run of pre-encoded records as one batch record (wire v5):
/// one nonce, one keystream setup, one MAC for the whole run — the
/// writer-drain path's amortized frame shape.
fn batch_sealed(cap: &mut usize, ks: &mut KeyStore, dst: u32, bodies: &[Bytes]) -> Bytes {
    let mut buf = begin_frame(*cap);
    buf.put_u8(TAG_BATCH);
    buf.extend_from_slice(&1u32.to_le_bytes());
    let seal_start = buf.len();
    buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
    let mut w = WireWriter::from_buf(buf);
    w.put_varint(bodies.len() as u64);
    for b in bodies {
        w.put_bytes(b);
    }
    let mut buf = w.into_buf();
    ks.seal_for_in_place(dst, &mut buf, seal_start);
    let frame = finish_frame(buf).expect("frame");
    *cap = frame.len() + 32;
    frame
}

struct Result {
    name: String,
    msgs_per_sec: f64,
    mib_per_sec: f64,
    ns_per_msg: f64,
}

/// Run `step` (which processes `per_step` messages of `frame_len` bytes
/// each) repeatedly for the measurement window.
fn measure(name: &str, per_step: u64, frame_len: u64, mut step: impl FnMut()) -> Result {
    // Warm-up.
    for _ in 0..16 {
        step();
    }
    let start = Instant::now();
    let mut steps = 0u64;
    while start.elapsed() < MEASURE {
        for _ in 0..32 {
            step();
        }
        steps += 32;
    }
    let secs = start.elapsed().as_secs_f64();
    let msgs = (steps * per_step) as f64;
    Result {
        name: name.to_string(),
        msgs_per_sec: msgs / secs,
        mib_per_sec: msgs * frame_len as f64 / secs / (1024.0 * 1024.0),
        ns_per_msg: secs * 1e9 / msgs,
    }
}

fn bench_paths(results: &mut Vec<Result>) {
    for peers in [1u32, 8] {
        let msgs: Vec<SdMessage> = (1..=peers).map(|d| sample_msg(d + 1)).collect();
        let frame_len = old_plain(&msgs[0]).len() as u64;

        results.push(measure(
            &format!("plain/old/{peers}peer"),
            peers as u64,
            frame_len,
            || {
                for m in &msgs {
                    std::hint::black_box(old_plain(m));
                }
            },
        ));
        let mut cap = 128usize;
        results.push(measure(
            &format!("plain/new/{peers}peer"),
            peers as u64,
            frame_len,
            || {
                for m in &msgs {
                    std::hint::black_box(new_plain(&mut cap, m));
                }
            },
        ));

        let mut ks = KeyStore::from_password(1, "bench-pw");
        results.push(measure(
            &format!("encrypted/old/{peers}peer"),
            peers as u64,
            frame_len,
            || {
                for (i, m) in msgs.iter().enumerate() {
                    std::hint::black_box(old_sealed(&mut ks, i as u32 + 2, m));
                }
            },
        ));
        let mut ks = KeyStore::from_password(1, "bench-pw");
        let mut cap = 128usize;
        results.push(measure(
            &format!("encrypted/new/{peers}peer"),
            peers as u64,
            frame_len,
            || {
                for (i, m) in msgs.iter().enumerate() {
                    std::hint::black_box(new_sealed(&mut cap, &mut ks, i as u32 + 2, m));
                }
            },
        ));

        // Batch-sealed (wire v5): per message, one plain encode plus a
        // 1/BATCH share of the batch's nonce + keystream + MAC.
        let mut ks = KeyStore::from_password(1, "bench-pw");
        let mut body_cap = 128usize;
        let mut cap = 128usize;
        results.push(measure(
            &format!("encrypted/batched/{peers}peer"),
            (peers as usize * BATCH) as u64,
            frame_len,
            || {
                for (i, m) in msgs.iter().enumerate() {
                    let bodies: Vec<Bytes> =
                        (0..BATCH).map(|_| encode_body(&mut body_cap, m)).collect();
                    std::hint::black_box(batch_sealed(&mut cap, &mut ks, i as u32 + 2, &bodies));
                }
            },
        ));
    }
}

/// End-to-end: one sender spraying sealed frames round-robin over 8 TCP
/// peers through the batched per-peer writer pipeline.
fn bench_tcp_fanout(results: &mut Vec<Result>) {
    let sender = TcpTransport::bind("127.0.0.1:0").expect("bind sender");
    let receivers: Vec<_> = (0..8)
        .map(|_| TcpTransport::bind("127.0.0.1:0").expect("bind receiver"))
        .collect();
    let mut ks = KeyStore::from_password(1, "bench-pw");
    let msg = sample_msg(2);
    let mut cap = 128usize;
    let frame = new_sealed(&mut cap, &mut ks, 2, &msg);
    let frame_len = frame.len() as u64;

    let n_per_peer = 4000u64;
    let start = Instant::now();
    for i in 0..n_per_peer {
        for r in &receivers {
            // Frames are cheaply cloneable; per-iteration seal would
            // measure crypto again, this measures the transport.
            sender.send(&r.local_addr(), frame.clone()).expect("send");
        }
        let _ = i;
    }
    // Wait until every receiver saw everything.
    let mut received = 0u64;
    for r in &receivers {
        let rx = r.incoming();
        for _ in 0..n_per_peer {
            if rx.recv_timeout(Duration::from_secs(10)).is_ok() {
                received += 1;
            }
        }
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(received, n_per_peer * 8, "all frames must arrive");
    results.push(Result {
        name: "tcp_fanout/new/8peer".into(),
        msgs_per_sec: received as f64 / secs,
        mib_per_sec: received as f64 * frame_len as f64 / secs / (1024.0 * 1024.0),
        ns_per_msg: secs * 1e9 / received as f64,
    });
    sender.shutdown();
    for r in &receivers {
        r.shutdown();
    }
}

fn main() {
    println!("message-path throughput: old three-copy vs zero-copy pipeline");
    rule(90);
    let mut results = Vec::new();
    bench_paths(&mut results);
    bench_tcp_fanout(&mut results);
    for r in &results {
        println!(
            "{:>24}: {:>10.0} msg/s  {:>8.1} MiB/s  {:>8.0} ns/msg",
            r.name, r.msgs_per_sec, r.mib_per_sec, r.ns_per_msg
        );
    }
    rule(90);

    let mut json = String::from("{\n  \"bench\": \"message_path\",\n");
    json.push_str(&format!("  \"payload_bytes\": {PAYLOAD_LEN},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"msgs_per_sec\": {:.1}, \"mib_per_sec\": {:.3}, \"ns_per_msg\": {:.1}}}{}\n",
            r.name,
            r.msgs_per_sec,
            r.mib_per_sec,
            r.ns_per_msg,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_message_path.json", &json).expect("write BENCH_message_path.json");
    println!("wrote BENCH_message_path.json");
}
