//! E13 (extension) — the paper's public-resource-computing proposal
//! (§2.2): "The SDVM is run on a core of reliable sites [...] and unsafe
//! sites. If an unsafe site crashes, the crash may be intercepted [...]
//! This would enhance the usability of public resource computing, as it
//! eliminates the need to run only easily scalable applications."
//!
//! Simulated: a reliable core plus volunteer sites that join late and
//! crash at random (seeded) times, on a *data-dependent* workload (the
//! primes pipeline — precisely the kind Seti@Home-style systems cannot
//! run). Completion is guaranteed; the cost of volunteer churn is
//! measured.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin volunteer_computing
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::{cluster_config, primes_graph, rule};
use sdvm_sim::{SimSite, Simulation};

fn main() {
    println!("E13 (extension): reliable core + crashing volunteers (§2.2)");
    println!("workload: primes p=500 w=20 — data-dependent, not Seti@Home-partitionable");
    rule(78);
    let g = primes_graph(500, 20);
    let core_only = Simulation::new(cluster_config(2), g.clone()).run();
    println!(
        "reliable core alone (2 sites)          : {:>7.1}s",
        core_only.makespan
    );

    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "volunteers", "churn", "makespan", "vs core-only", "re-executed"
    );
    rule(78);
    for &volunteers in &[2usize, 6, 12] {
        for &churny in &[false, true] {
            let mut cfg = cluster_config(2 + volunteers);
            // Volunteers are slower home machines joining over time.
            let mut rng = 0x9e3779b97f4a7c15u64;
            let mut next = move || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                rng
            };
            for v in 0..volunteers {
                let join = (next() % 1000) as f64 / 1000.0 * core_only.makespan * 0.3;
                let crash = if churny {
                    // Every volunteer eventually dies mid-run.
                    Some(join + 2.0 + (next() % 1000) as f64 / 1000.0 * core_only.makespan * 0.4)
                } else {
                    None
                };
                cfg.sites[2 + v] = SimSite {
                    speed: 0.5 + (next() % 100) as f64 / 100.0,
                    join_at: join.max(1e-3),
                    crash_at: crash,
                    ..SimSite::reference()
                };
            }
            let m = Simulation::new(cfg, g.clone()).run();
            println!(
                "{:>10} {:>12} {:>11.1}s {:>13.1}% {:>12}",
                volunteers,
                if churny { "all crash" } else { "none" },
                m.makespan,
                (m.makespan / core_only.makespan - 1.0) * 100.0,
                m.reexecutions
            );
        }
    }
    rule(78);
    println!("expected shape: volunteers speed the run up even though every one of");
    println!("them eventually crashes — their completed work survives, lost frames");
    println!("re-execute on the reliable core. Without SDVM-style recovery, a");
    println!("data-dependent application could not use unreliable machines at all.");
}
