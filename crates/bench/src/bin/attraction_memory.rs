//! Attraction-memory v2 throughput, machine-readable.
//!
//! Two experiments, both on the real site stack (managers, wire codec,
//! in-process transport):
//!
//! 1. **Read-mostly remote reads** — two sites repeatedly read an
//!    object owned by a third, with an occasional owner-side write
//!    mixed in (1 write per 100 read rounds). Compared with versioned
//!    read replicas off vs on: with replicas every read after the
//!    first is a local version-checked hit until the next
//!    invalidation, without them every read is a full network
//!    round-trip.
//! 2. **Sharded store under local contention** — four threads hammer
//!    read/write mixes against one site's store with 1 shard vs 8
//!    shards, reporting both throughput and the contention counters
//!    the shards expose (`MemStats::shard_contention`).
//!
//! Writes `BENCH_attraction_memory.json` into the working directory.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin attraction_memory
//! ```

use sdvm_bench::rule;
use sdvm_core::{InProcessCluster, SiteConfig};
use sdvm_types::{ProgramId, Value};
use std::sync::Arc;
use std::time::Instant;

const READ_ROUNDS: u64 = 2_000;
const WRITE_EVERY: u64 = 100;
const LOCAL_THREADS: usize = 4;
const LOCAL_OPS: u64 = 30_000;

struct BenchResult {
    name: String,
    ops_per_sec: f64,
    ns_per_op: f64,
    contention: Option<u64>,
}

/// Read-mostly fan-in: sites 1 and 2 read an object homed at site 0,
/// the owner writing once per `WRITE_EVERY` rounds. Returns ops/sec
/// over all remote reads.
fn bench_remote_reads(replicas: bool) -> BenchResult {
    let config = if replicas {
        SiteConfig::default()
    } else {
        SiteConfig::default().without_replica_reads()
    };
    let cluster = Arc::new(InProcessCluster::new(3, config).expect("cluster"));
    let s0 = cluster.site(0).inner();
    let addr = s0.memory.alloc(s0, ProgramId(1), Value::from_u64(0));
    // Warm the path (and the copyset, when replicas are on).
    for i in 1..3 {
        let site = cluster.site(i).inner();
        site.memory.read(site, addr, false).expect("warm-up read");
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    for r in 1..3usize {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let site = cluster.site(r).inner();
            for i in 0..READ_ROUNDS {
                site.memory
                    .read(site, addr, false)
                    .unwrap_or_else(|e| panic!("reader {r} round {i}: {e}"));
            }
        }));
    }
    {
        let cluster = Arc::clone(&cluster);
        handles.push(std::thread::spawn(move || {
            let site = cluster.site(0).inner();
            for i in 0..READ_ROUNDS / WRITE_EVERY {
                site.memory
                    .write(site, addr, Value::from_u64(i + 1))
                    .unwrap_or_else(|e| panic!("writer round {i}: {e}"));
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }));
    }
    for h in handles {
        h.join().expect("bench thread");
    }
    let secs = start.elapsed().as_secs_f64();
    let reads = (READ_ROUNDS * 2) as f64;
    BenchResult {
        name: format!(
            "remote_read/replicas_{}",
            if replicas { "on" } else { "off" }
        ),
        ops_per_sec: reads / secs,
        ns_per_op: secs * 1e9 / reads,
        contention: None,
    }
}

/// Local mixed read/write traffic from `LOCAL_THREADS` threads against
/// one site's store, parameterized by shard count. Reports the
/// aggregate contention counter next to throughput: a single shard
/// serializes every operation, the sharded store spreads them.
fn bench_local_contention(shards: usize) -> BenchResult {
    let config = SiteConfig::default().with_mem_shards(shards);
    let cluster = Arc::new(InProcessCluster::new(1, config).expect("cluster"));
    let site = cluster.site(0).inner();
    let addrs: Vec<_> = (0..64)
        .map(|i| site.memory.alloc(site, ProgramId(1), Value::from_u64(i)))
        .collect();
    let addrs = Arc::new(addrs);

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..LOCAL_THREADS {
        let cluster = Arc::clone(&cluster);
        let addrs = Arc::clone(&addrs);
        handles.push(std::thread::spawn(move || {
            let site = cluster.site(0).inner();
            for i in 0..LOCAL_OPS {
                let addr = addrs[((i as usize) * LOCAL_THREADS + t) % addrs.len()];
                if i % 8 == t as u64 % 8 {
                    site.memory
                        .write(site, addr, Value::from_u64(i))
                        .unwrap_or_else(|e| panic!("local writer {t}: {e}"));
                } else {
                    site.memory
                        .read(site, addr, false)
                        .unwrap_or_else(|e| panic!("local reader {t}: {e}"));
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("bench thread");
    }
    let secs = start.elapsed().as_secs_f64();
    let ops = (LOCAL_OPS * LOCAL_THREADS as u64) as f64;
    let contention: u64 = site.memory.stats().shard_contention.iter().sum();
    BenchResult {
        name: format!("local_mix/shards_{shards}"),
        ops_per_sec: ops / secs,
        ns_per_op: secs * 1e9 / ops,
        contention: Some(contention),
    }
}

fn main() {
    println!("attraction memory v2: replica reads and sharded store");
    rule(90);
    let results = vec![
        bench_remote_reads(false),
        bench_remote_reads(true),
        bench_local_contention(1),
        bench_local_contention(8),
    ];
    for r in &results {
        let contention = r
            .contention
            .map(|c| format!("  contention={c}"))
            .unwrap_or_default();
        println!(
            "{:>26}: {:>12.0} ops/s  {:>10.0} ns/op{}",
            r.name, r.ops_per_sec, r.ns_per_op, contention
        );
    }
    let replica_speedup = results[1].ops_per_sec / results[0].ops_per_sec;
    let shard_speedup = results[3].ops_per_sec / results[2].ops_per_sec;
    println!("replica read speedup: {replica_speedup:.2}x   shard speedup: {shard_speedup:.2}x");
    rule(90);

    let mut json = String::from("{\n  \"bench\": \"attraction_memory\",\n");
    json.push_str(&format!("  \"read_rounds\": {READ_ROUNDS},\n"));
    json.push_str(&format!("  \"write_every\": {WRITE_EVERY},\n"));
    json.push_str(&format!("  \"local_threads\": {LOCAL_THREADS},\n"));
    json.push_str(&format!(
        "  \"replica_read_speedup\": {replica_speedup:.2},\n"
    ));
    json.push_str(&format!("  \"shard_speedup\": {shard_speedup:.2},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let contention = r
            .contention
            .map(|c| format!(", \"shard_contention\": {c}"))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ops_per_sec\": {:.1}, \"ns_per_op\": {:.1}{}}}{}\n",
            r.name,
            r.ops_per_sec,
            r.ns_per_op,
            contention,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_attraction_memory.json", &json)
        .expect("write BENCH_attraction_memory.json");
    println!("wrote BENCH_attraction_memory.json");
}
