//! E5 — the security manager's cost (paper §4): "If a cluster can be
//! judged secure [...] the security manager can be disabled in favor of
//! a performance gain."
//!
//! Two measurements (wall clock, this machine):
//! 1. raw channel throughput: sealing+opening SDMessage-sized payloads
//!    vs a plaintext pass-through;
//! 2. end-to-end: the prime search on a 2-site in-process cluster with
//!    and without the start password.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin crypto_overhead
//! ```

use sdvm_apps::primes::PrimesProgram;
use sdvm_bench::rule;
use sdvm_core::{InProcessCluster, SiteConfig};
use sdvm_crypto::SecureChannel;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn main() {
    println!("E5: security manager overhead (encryption on vs off)");
    rule(72);

    // 1. Raw seal/open throughput on typical SDMessage sizes.
    for &size in &[64usize, 512, 4096, 65536] {
        let key = [7u8; 32];
        let mut tx = SecureChannel::new(&key);
        let mut rx = SecureChannel::new(&key);
        let payload = vec![0xabu8; size];
        let iters = (64 * 1024 * 1024 / size).clamp(256, 100_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            let sealed = tx.seal(&payload);
            let opened = rx.open(&sealed).expect("authentic");
            black_box(opened.len());
        }
        let dt = t0.elapsed().as_secs_f64();
        let mbps = (iters * size) as f64 / dt / 1e6;
        // Plaintext baseline: copy only.
        let t1 = Instant::now();
        for _ in 0..iters {
            let copy = payload.clone();
            black_box(copy.len());
        }
        let dt_plain = t1.elapsed().as_secs_f64().max(1e-9);
        println!(
            "seal+open {size:>6} B: {mbps:>8.1} MB/s  ({:>5.1}x slower than memcpy)",
            dt / dt_plain
        );
    }
    rule(72);

    // 2. Manager-to-manager message round trips, encrypted vs plaintext:
    //    the cost sits between the message and network managers, so
    //    request/response traffic shows it directly.
    let round_trips = 5_000u32;
    let run = |password: Option<&str>| -> f64 {
        let mut cfg = SiteConfig::default();
        if let Some(pw) = password {
            cfg = cfg.with_password(pw);
        }
        let cluster = InProcessCluster::new(2, cfg.clone()).expect("cluster");
        let a = cluster.site(0).inner();
        let b_id = cluster.site(1).id();
        let t0 = Instant::now();
        for token in 0..round_trips {
            let reply = a
                .request(
                    b_id,
                    sdvm_types::ManagerId::Site,
                    sdvm_types::ManagerId::Site,
                    sdvm_wire::Payload::Ping {
                        token: u64::from(token),
                    },
                    Duration::from_secs(10),
                )
                .expect("pong");
            assert!(matches!(reply.payload, sdvm_wire::Payload::Pong { .. }));
        }
        t0.elapsed().as_secs_f64()
    };
    let plain = run(None);
    let sealed = run(Some("cluster-secret"));
    println!("{round_trips} site-manager ping/pong round trips (2 sites):");
    println!(
        "  plaintext : {plain:.3} s ({:.1} µs/round trip)",
        plain * 1e6 / f64::from(round_trips)
    );
    println!(
        "  encrypted : {sealed:.3} s ({:.1} µs/round trip)",
        sealed * 1e6 / f64::from(round_trips)
    );
    println!(
        "security manager cost: {:+.1}%  (paper: disabling is a \"performance gain\")",
        (sealed / plain - 1.0) * 100.0
    );
    // 3. Sanity: the prime search still completes on an encrypted cluster.
    let cluster =
        InProcessCluster::new(2, SiteConfig::default().with_password("s")).expect("cluster");
    let prog = PrimesProgram {
        p: 60,
        width: 8,
        spin: 0,
        sleep_us: 0,
    };
    let handle = prog.launch(cluster.site(0)).expect("launch");
    handle.wait(Duration::from_secs(600)).expect("result");
    println!("(primes completes correctly under encryption)");
    rule(72);
}
