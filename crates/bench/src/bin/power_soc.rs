//! E12 (extension) — the paper's SoC / organic-computing proposal
//! (§2.2): "If sufficient performance is available and a fast execution
//! is needed, all sites on a chip get activated. If the system's power
//! supply is low or sites are out of work, some sites are switched to a
//! sleep state" — the system "autonomously adapt\[s\] to changing
//! environmental conditions".
//!
//! Simulated: an 8-core SDVM-on-SoC running a bursty workload, sweeping
//! the sleep-after threshold. Reported: makespan (performance) vs energy
//! (consumption) — the self-adaptation trade-off.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin power_soc
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::rule;
use sdvm_cdag::{generators, Cdag};
use sdvm_sim::{NetworkModel, PowerModel, SimConfig, SimSite, Simulation};

/// Bursty workload: serial stretches punctuated by wide parallel phases
/// (an interactive device: mostly idle, occasionally hot).
fn bursty() -> Cdag {
    let mut g = Cdag::new();
    let mut prev = g.add_node("start", 0, 50_000);
    for burst in 0..6 {
        // Quiet serial stretch.
        for i in 0..4 {
            let n = g.add_node(format!("serial{burst}.{i}"), 0, 100_000);
            g.add_edge(prev, n, 0, 8).expect("edge");
            prev = n;
        }
        // Hot parallel burst.
        let join = g.add_node(format!("join{burst}"), 1, 10_000);
        for i in 0..24 {
            let w = g.add_node(format!("burst{burst}.{i}"), 2, 150_000);
            g.add_edge(prev, w, 0, 8).expect("edge");
            g.add_edge(w, join, i, 8).expect("edge");
        }
        prev = join;
    }
    g
}

fn config(cores: usize, sleep_after: Option<f64>) -> SimConfig {
    let mut cfg = SimConfig::homogeneous(cores);
    // On-chip interconnect: microseconds, not LAN milliseconds.
    cfg.net = NetworkModel {
        latency: 2e-6,
        bandwidth: 1e9,
    };
    cfg.cost.msg_overhead = 2e-6;
    for s in &mut cfg.sites {
        s.power = sleep_after.map(|after| PowerModel {
            sleep_after: after,
            ..PowerModel::embedded()
        });
    }
    let _ = SimSite::reference();
    cfg
}

fn main() {
    println!("E12 (extension): SDVM-on-SoC — sleep states vs performance (§2.2)");
    println!("workload: bursty (serial stretches + 24-wide bursts), 8 cores");
    rule(78);
    println!(
        "{:>18} {:>12} {:>12} {:>12} {:>14}",
        "sleep-after", "makespan", "energy (J)", "avg slept", "vs always-on"
    );
    rule(78);
    let g = bursty();
    // Baseline: power-modelled but never sleeping (idle burn).
    let base = Simulation::new(config(8, Some(f64::INFINITY)), g.clone()).run();
    println!(
        "{:>18} {:>11.3}s {:>12.3} {:>11.1}% {:>13.1}%",
        "never (always-on)",
        base.makespan,
        base.total_energy(),
        0.0,
        0.0,
    );
    for sleep_after in [50e-3f64, 10e-3, 2e-3, 0.5e-3] {
        let m = Simulation::new(config(8, Some(sleep_after)), g.clone()).run();
        let slept_frac = m.slept.iter().sum::<f64>() / (8.0 * m.makespan.max(1e-12)) * 100.0;
        println!(
            "{:>16.1}ms {:>11.3}s {:>12.3} {:>11.1}% {:>13.1}%",
            sleep_after * 1e3,
            m.makespan,
            m.total_energy(),
            slept_frac,
            (m.total_energy() / base.total_energy() - 1.0) * 100.0,
        );
    }
    rule(78);
    println!("expected shape: aggressive sleeping cuts energy hard (idle cores draw");
    println!("30x sleep power) at a small makespan cost from wake latencies — the");
    println!("autonomous adaptation the paper attributes to organic computing.");

    // Second axis: dark-silicon style — fewer active cores vs energy.
    println!();
    println!("cores powered (sleep-after 2ms):");
    for cores in [2usize, 4, 8, 16] {
        let m = Simulation::new(config(cores, Some(2e-3)), bursty()).run();
        println!(
            "  {cores:>2} cores: makespan {:>7.3}s  energy {:>8.3} J",
            m.makespan,
            m.total_energy()
        );
    }
    let _ = generators::chain(1, 1);
}
