//! E1 — reproduce **Table 1** of the paper: "Exemplary speedup of the
//! SDVM": the parallel prime search for p ∈ {100, 200, 500, 1000},
//! width ∈ {10, 20}, on clusters of 1, 4 and 8 identical sites.
//!
//! The cluster is simulated (virtual time) with the calibrated cost
//! model of `sdvm-bench` — see DESIGN.md §1 for why this substitution
//! preserves the result shape. Expected shape (paper): speedups around
//! 3.4–3.6 on 4 sites and 6.4–7.0 on 8 sites, rising slightly with `p`
//! and with width 20 over width 10 at 8 sites.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin table1
//! ```

use sdvm_bench::{cluster_config, primes_graph, rule, secs, simulate, speedup};

fn main() {
    println!("Table 1: Exemplary speedup of the SDVM (simulated cluster, virtual time)");
    println!("workload: first p primes, width candidates tested in parallel per round");
    rule(78);
    println!(
        "{:>5} {:>6} {:>10} {:>16} {:>16}",
        "p", "width", "1 site", "4 sites (Speedup)", "8 sites (Speedup)"
    );
    rule(78);
    for &width in &[10usize, 20] {
        for &p in &[100u64, 200, 500, 1000] {
            let g = primes_graph(p, width);
            let t1 = simulate(cluster_config(1), g.clone()).makespan;
            let t4 = simulate(cluster_config(4), g.clone()).makespan;
            let t8 = simulate(cluster_config(8), g).makespan;
            println!(
                "{:>5} {:>6} {:>10} {:>10} {:>5} {:>10} {:>5}",
                p,
                width,
                secs(t1),
                secs(t4),
                speedup(t1, t4),
                secs(t8),
                speedup(t1, t8),
            );
        }
    }
    rule(78);
    println!("paper (Pentium-IV LAN): 3.4–3.6 at 4 sites, 6.4–7.0 at 8 sites");
}
