//! A figure generator: an ASCII Gantt chart of a simulated SDVM run —
//! the execution cycle of Fig. 4 made visible as per-site activity over
//! virtual time, including the idle-steal ramp-up at the start and the
//! window-limited pipeline shape of the primes workload.
//!
//! ```text
//! cargo run --release -p sdvm-bench --bin timeline [-- sites] [width]
//! ```

#![allow(clippy::field_reassign_with_default)] // config structs are built by mutation by design

use sdvm_bench::{cluster_config, primes_graph};
use sdvm_sim::Simulation;

const COLS: usize = 96;

fn main() {
    let mut args = std::env::args().skip(1);
    let sites: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let width: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    let g = primes_graph(60, width);
    let mut cfg = cluster_config(sites);
    cfg.record_timeline = true;
    let test_nodes: Vec<bool> = g.node_ids().map(|n| g.node(n).thread_index == 0).collect();
    let m = Simulation::new(cfg, g).run();

    println!(
        "timeline: primes p=60 width={width} on {sites} sites — makespan {:.2}s (virtual)",
        m.makespan
    );
    println!(
        "each column ≈ {:.0} ms;  █ = testing a candidate, ▒ = collect/bookkeeping",
        m.makespan / COLS as f64 * 1e3
    );
    println!();
    for (i, lanes) in m.timeline.iter().enumerate() {
        let mut row = vec![' '; COLS];
        for &(start, end, node) in lanes {
            let a = ((start / m.makespan) * COLS as f64) as usize;
            let b = (((end / m.makespan) * COLS as f64) as usize).min(COLS - 1);
            let glyph = if test_nodes[node] { '█' } else { '▒' };
            for cell in row.iter_mut().take(b + 1).skip(a) {
                // Tests dominate visually; don't let bookkeeping overdraw.
                if *cell != '█' {
                    *cell = glyph;
                }
            }
        }
        let line: String = row.into_iter().collect();
        println!(
            "site{:<2} │{line}│ {:>5.1}% busy",
            i + 1,
            m.busy[i] / m.makespan * 100.0
        );
    }
    println!();
    println!(
        "tasks per site: {:?};  help requests: {} ({} granted)",
        m.executed_per_site, m.help_requests, m.help_granted
    );
}
