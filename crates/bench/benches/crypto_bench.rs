//! Criterion: security-manager primitives — the per-message cost the
//! paper trades against trust (E5's microbenchmark side).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdvm_crypto::chacha::chacha20_xor;
use sdvm_crypto::hmac::hmac_sha256;
use sdvm_crypto::sha256::sha256;
use sdvm_crypto::SecureChannel;

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto_primitives");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
        g.bench_function(format!("hmac_sha256/{size}"), |b| {
            b.iter(|| hmac_sha256(b"key material here", std::hint::black_box(&data)))
        });
        g.bench_function(format!("chacha20/{size}"), |b| {
            let key = [7u8; 32];
            let nonce = [9u8; 12];
            let mut buf = data.clone();
            b.iter(|| {
                chacha20_xor(&key, &nonce, 0, std::hint::black_box(&mut buf));
            })
        });
    }
    g.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut g = c.benchmark_group("secure_channel");
    for size in [64usize, 512, 4096] {
        let payload = vec![0x5au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("seal_open/{size}"), |b| {
            let key = [3u8; 32];
            let mut tx = SecureChannel::new(&key);
            let mut rx = SecureChannel::new(&key);
            b.iter(|| {
                let sealed = tx.seal(std::hint::black_box(&payload));
                rx.open(&sealed).expect("authentic")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_primitives, bench_channel);
criterion_main!(benches);
