//! Criterion: simulator engine throughput (events/second) — keeps the
//! experiment harness itself honest about its cost.

use criterion::{criterion_group, criterion_main, Criterion};
use sdvm_bench::{cluster_config, primes_graph};
use sdvm_cdag::generators;
use sdvm_sim::Simulation;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_engine");
    g.sample_size(20);
    let primes = primes_graph(100, 10);
    g.bench_function("primes_p100_w10_8sites", |b| {
        b.iter(|| Simulation::new(cluster_config(8), primes.clone()).run())
    });
    let layered = generators::layered_random(20, 64, 7);
    g.bench_function("layered_20x64_8sites", |b| {
        b.iter(|| Simulation::new(cluster_config(8), layered.clone()).run())
    });
    let wide = generators::fork_join(10, 512, 50_000, 10);
    g.bench_function("forkjoin_512_16sites", |b| {
        b.iter(|| Simulation::new(cluster_config(16), wide.clone()).run())
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
