//! Criterion: the outbound message path — encode, (optionally) seal,
//! frame — comparing the historical three-copy pipeline against the
//! zero-copy single-buffer pipeline the transport now uses.
//!
//! Old path (three allocations + copies per message):
//!   1. `SdMessage::to_bytes()`          → plaintext Vec
//!   2. envelope + `KeyStore::seal_for`  → sealed Vec (copies plaintext)
//!   3. `frame_bytes`                    → framed Bytes (copies sealed)
//!
//! New path (one allocation, encryption in place):
//!   `begin_frame` → envelope header → `encode_into` →
//!   `seal_for_in_place` → `finish_frame`
//!
//! The new path seeds `begin_frame` with a capacity hint learned from
//! the previous frame, mirroring `SecurityManager::seal_frame` — a
//! cold under-reserve pays growth reallocs that erase the copy savings.
//!
//! "8 peers" fans the same message out to eight destinations — each
//! gets its own seal (per-peer nonce counters), which is exactly the
//! site manager broadcasting load reports or a microframe spraying its
//! parameters.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sdvm_crypto::{KeyStore, NONCE_PREFIX_LEN};
use sdvm_types::{FileHandle, ManagerId, SiteId};
use sdvm_wire::{begin_frame, finish_frame, frame_bytes, Payload, SdMessage, WireWriter};

const TAG_PLAIN: u8 = 0;
const TAG_PEER: u8 = 1;

fn sample_msg(dst: u32, payload_len: usize) -> SdMessage {
    SdMessage::new(
        SiteId(1),
        ManagerId::Memory,
        SiteId(dst),
        ManagerId::Memory,
        42,
        Payload::FileData {
            handle: FileHandle {
                site: SiteId(1),
                local: 7,
            },
            data: Bytes::from(vec![0xabu8; payload_len]),
        },
    )
}

fn old_plain(msg: &SdMessage) -> Bytes {
    let plain = msg.to_bytes();
    let mut env = Vec::with_capacity(1 + plain.len());
    env.push(TAG_PLAIN);
    env.extend_from_slice(&plain);
    frame_bytes(&env).expect("frame")
}

fn new_plain(cap: &mut usize, msg: &SdMessage) -> Bytes {
    let mut buf = begin_frame(*cap);
    buf.put_u8(TAG_PLAIN);
    let mut w = WireWriter::from_buf(buf);
    msg.encode_into(&mut w);
    let frame = finish_frame(w.into_buf()).expect("frame");
    *cap = frame.len() + 32;
    frame
}

fn old_sealed(ks: &mut KeyStore, dst: u32, msg: &SdMessage) -> Bytes {
    let plain = msg.to_bytes();
    let sealed = ks.seal_for(dst, &plain);
    let mut env = Vec::with_capacity(5 + sealed.len());
    env.push(TAG_PEER);
    env.extend_from_slice(&1u32.to_le_bytes());
    env.extend_from_slice(&sealed);
    frame_bytes(&env).expect("frame")
}

fn new_sealed(cap: &mut usize, ks: &mut KeyStore, dst: u32, msg: &SdMessage) -> Bytes {
    let mut buf = begin_frame(*cap);
    buf.put_u8(TAG_PEER);
    buf.extend_from_slice(&1u32.to_le_bytes());
    let seal_start = buf.len();
    buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
    let mut w = WireWriter::from_buf(buf);
    msg.encode_into(&mut w);
    let mut buf = w.into_buf();
    ks.seal_for_in_place(dst, &mut buf, seal_start);
    let frame = finish_frame(buf).expect("frame");
    *cap = frame.len() + 32;
    frame
}

fn bench_message_path(c: &mut Criterion) {
    let payload_len = 256usize;
    let mut g = c.benchmark_group("message_path");
    for peers in [1u32, 8] {
        let msgs: Vec<SdMessage> = (1..=peers)
            .map(|d| sample_msg(d + 1, payload_len))
            .collect();
        let frame_len = old_plain(&msgs[0]).len() as u64;
        g.throughput(Throughput::Bytes(frame_len * peers as u64));

        g.bench_function(format!("plain/old/{peers}peer"), |b| {
            b.iter(|| {
                for m in &msgs {
                    black_box(old_plain(black_box(m)));
                }
            })
        });
        let mut cap = 128usize;
        g.bench_function(format!("plain/new/{peers}peer"), |b| {
            b.iter(|| {
                for m in &msgs {
                    black_box(new_plain(&mut cap, black_box(m)));
                }
            })
        });

        let mut ks_old = KeyStore::from_password(1, "bench-pw");
        g.bench_function(format!("encrypted/old/{peers}peer"), |b| {
            b.iter(|| {
                for (i, m) in msgs.iter().enumerate() {
                    black_box(old_sealed(&mut ks_old, i as u32 + 2, black_box(m)));
                }
            })
        });
        let mut ks_new = KeyStore::from_password(1, "bench-pw");
        let mut cap = 128usize;
        g.bench_function(format!("encrypted/new/{peers}peer"), |b| {
            b.iter(|| {
                for (i, m) in msgs.iter().enumerate() {
                    black_box(new_sealed(
                        &mut cap,
                        &mut ks_new,
                        i as u32 + 2,
                        black_box(m),
                    ));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_message_path);
criterion_main!(benches);
