//! Criterion: single-read latency through the attraction memory — the
//! three paths a non-migrating read can take.
//!
//! - `owned_local`: the object lives here; one shard lookup.
//! - `replica_hit`: the object lives elsewhere but a fresh versioned
//!   replica is cached; one shard lookup plus a TTL check.
//! - `remote_round_trip`: replicas disabled, so every read crosses the
//!   in-process transport to the owner and back.
//!
//! The first two should be within noise of each other — that gap
//! closing is the whole point of read replicas; the third is the
//! baseline they avoid.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sdvm_core::{InProcessCluster, SiteConfig};
use sdvm_types::{ProgramId, Value};

fn bench_attraction_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("attraction_memory");

    let cluster = InProcessCluster::new(2, SiteConfig::default()).expect("cluster");
    let s0 = cluster.site(0).inner();
    let s1 = cluster.site(1).inner();
    let addr = s0.memory.alloc(s0, ProgramId(1), Value::from_u64(7));

    g.bench_function("owned_local", |b| {
        b.iter(|| black_box(s0.memory.read(s0, black_box(addr), false).expect("read")))
    });

    // Prime the replica; the default TTL (seconds) outlives the run.
    s1.memory.read(s1, addr, false).expect("prime replica");
    assert!(s1.memory.replica_version(addr).is_some());
    g.bench_function("replica_hit", |b| {
        b.iter(|| black_box(s1.memory.read(s1, black_box(addr), false).expect("read")))
    });

    let cold =
        InProcessCluster::new(2, SiteConfig::default().without_replica_reads()).expect("cluster");
    let c0 = cold.site(0).inner();
    let c1 = cold.site(1).inner();
    let cold_addr = c0.memory.alloc(c0, ProgramId(1), Value::from_u64(7));
    g.bench_function("remote_round_trip", |b| {
        b.iter(|| {
            black_box(
                c1.memory
                    .read(c1, black_box(cold_addr), false)
                    .expect("read"),
            )
        })
    });

    g.finish();
}

criterion_group!(benches, bench_attraction_memory);
criterion_main!(benches);
