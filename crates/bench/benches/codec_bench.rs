//! Criterion: SDMessage wire codec throughput (the message manager's
//! serialize/deserialize hot path, paper Fig. 6).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sdvm_types::{
    GlobalAddress, ManagerId, MicrothreadId, ProgramId, SchedulingHint, SiteId, Value,
};
use sdvm_wire::{Payload, SdMessage, WireFrame};

fn sample_frame(slots: usize) -> WireFrame {
    WireFrame {
        id: GlobalAddress::new(SiteId(3), 42),
        thread: MicrothreadId::new(ProgramId(7), 1),
        slots: (0..slots)
            .map(|i| Some(Value::from_u64(i as u64)))
            .collect(),
        targets: vec![GlobalAddress::new(SiteId(1), 9)],
        hint: SchedulingHint::default(),
    }
}

fn help_reply(slots: usize) -> SdMessage {
    SdMessage::new(
        SiteId(3),
        ManagerId::Scheduling,
        SiteId(5),
        ManagerId::Scheduling,
        991,
        Payload::HelpReply {
            frame: sample_frame(slots),
        },
    )
}

fn apply_result() -> SdMessage {
    SdMessage::new(
        SiteId(3),
        ManagerId::Memory,
        SiteId(5),
        ManagerId::Memory,
        17,
        Payload::ApplyResult {
            target: GlobalAddress::new(SiteId(1), 77),
            slot: 2,
            value: Value::from_u64_slice(&[1, 2, 3]),
        },
    )
}

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("sdmessage_codec");
    for (name, msg) in [
        ("apply_result", apply_result()),
        ("help_reply_2slots", help_reply(2)),
        ("help_reply_32slots", help_reply(32)),
    ] {
        let bytes = msg.to_bytes();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| std::hint::black_box(msg.to_bytes()))
        });
        g.bench_function(format!("decode/{name}"), |b| {
            b.iter_batched(
                || bytes.clone(),
                |buf| SdMessage::from_bytes(std::hint::black_box(&buf)).expect("valid"),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
