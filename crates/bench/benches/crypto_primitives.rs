//! Criterion: the v2 crypto hot path — wide ChaCha20 keystream, HMAC
//! midstate reuse, in-place seal/open, and the amortization a batch
//! record buys over per-record sealing.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sdvm_crypto::chacha::ChaChaKey;
use sdvm_crypto::hmac::{hmac_sha256, HmacKey};
use sdvm_crypto::SecureChannel;

fn bench_chacha_wide(c: &mut Criterion) {
    let mut g = c.benchmark_group("chacha20_keystream");
    let key = ChaChaKey::new(&[7u8; 32]);
    let nonce = [9u8; 12];
    for size in [64usize, 256, 1024, 16384, 1 << 20] {
        let mut buf = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("xor/{size}"), |b| {
            b.iter(|| key.xor(&nonce, 1, std::hint::black_box(&mut buf)))
        });
    }
    g.finish();
}

fn bench_hmac_midstate(c: &mut Criterion) {
    let mut g = c.benchmark_group("hmac_sha256");
    let data = vec![0x5au8; 64];
    g.throughput(Throughput::Bytes(64));
    // One-shot: pays the ipad/opad key absorption every call.
    g.bench_function("oneshot/64", |b| {
        b.iter(|| hmac_sha256(b"key material here", std::hint::black_box(&data)))
    });
    // Midstate: ipad/opad absorbed once, ~100 B of state cloned per MAC.
    let key = HmacKey::new(b"key material here");
    g.bench_function("midstate/64", |b| {
        b.iter(|| key.mac_of(std::hint::black_box(&data)))
    });
    g.finish();
}

fn bench_seal_open(c: &mut Criterion) {
    let mut g = c.benchmark_group("secure_channel_v2");
    for size in [64usize, 256, 1024, 4096] {
        let payload = vec![0x5au8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("seal/{size}"), |b| {
            let mut tx = SecureChannel::new(&[3u8; 32]);
            b.iter(|| tx.seal(std::hint::black_box(&payload)))
        });
        g.bench_function(format!("seal_open_in_place/{size}"), |b| {
            let mut tx = SecureChannel::new(&[3u8; 32]);
            let mut rx = SecureChannel::new(&[3u8; 32]);
            b.iter(|| {
                let mut sealed = tx.seal(std::hint::black_box(&payload)).to_vec();
                rx.open_in_place(&mut sealed, 0).expect("authentic")
            })
        });
    }
    g.finish();
}

/// The amortization argument behind batch-sealed records: sealing one
/// 64-record run as a single unit vs 64 per-record seals of the same
/// total payload.
fn bench_batch_amortization(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_amortization");
    const RECORDS: usize = 64;
    const RECORD_LEN: usize = 256;
    let total = RECORDS * RECORD_LEN;
    g.throughput(Throughput::Bytes(total as u64));
    let run = vec![0xabu8; total];
    g.bench_function("one_batch_record", |b| {
        let mut tx = SecureChannel::new(&[3u8; 32]);
        b.iter(|| tx.seal(std::hint::black_box(&run)))
    });
    let record = vec![0xabu8; RECORD_LEN];
    g.bench_function("per_record_x64", |b| {
        let mut tx = SecureChannel::new(&[3u8; 32]);
        b.iter(|| {
            for _ in 0..RECORDS {
                std::hint::black_box(tx.seal(std::hint::black_box(&record)));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_chacha_wide,
    bench_hmac_midstate,
    bench_seal_open,
    bench_batch_amortization
);
criterion_main!(benches);
