//! Criterion: real-runtime hot paths — single-site program execution
//! (the E2 overhead measurement's inner loop) and the dataflow send path.

use criterion::{criterion_group, criterion_main, Criterion};
use sdvm_apps::primes::PrimesProgram;
use sdvm_core::{AppBuilder, InProcessCluster, SiteConfig};
use sdvm_types::Value;
use std::time::Duration;

/// End-to-end micro-program: chain of `n` microthreads, each passing a
/// counter on. Measures frame creation + dataflow send + scheduling +
/// execution per hop.
fn bench_chain(c: &mut Criterion) {
    let cluster = InProcessCluster::new(1, SiteConfig::default()).expect("cluster");
    let mut app = AppBuilder::new("chain");
    let hop = app.thread("hop", |ctx| {
        let n = ctx.param(0)?.as_u64()?;
        let t = ctx.target(0)?;
        ctx.send(t, 0, Value::from_u64(n + 1))
    });
    c.bench_function("runtime/chain_100_hops", |b| {
        b.iter(|| {
            let handle = cluster
                .site(0)
                .launch(&app, |ctx, result| {
                    // Build the chain backwards: each hop targets the next.
                    let mut next = result;
                    for _ in 0..100 {
                        next = ctx.create_frame(hop, 1, vec![next], Default::default());
                    }
                    ctx.send(next, 0, Value::from_u64(0))
                })
                .expect("launch");
            let v = handle.wait(Duration::from_secs(30)).expect("result");
            assert_eq!(v.as_u64().unwrap(), 100);
        })
    });
}

fn bench_primes_single_site(c: &mut Criterion) {
    let cluster = InProcessCluster::new(1, SiteConfig::default()).expect("cluster");
    let mut group = c.benchmark_group("runtime/primes_1site");
    group.sample_size(20);
    group.bench_function("p50_w10", |b| {
        b.iter(|| {
            let prog = PrimesProgram::new(50, 10);
            let handle = prog.launch(cluster.site(0)).expect("launch");
            handle.wait(Duration::from_secs(60)).expect("result")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chain, bench_primes_single_site);
criterion_main!(benches);
