//! Property-based tests of CDAG structure and analyses.

#![allow(clippy::needless_range_loop)] // paired index loops over the triangular edge table

use proptest::prelude::*;
use sdvm_cdag::{generators, Cdag, CdagAnalysis};

/// Random DAG: edges only from lower to higher node index, so acyclicity
/// holds by construction while shapes vary freely.
fn arb_dag() -> impl Strategy<Value = Cdag> {
    (2usize..40, any::<u64>()).prop_flat_map(|(n, seed)| {
        prop::collection::vec(any::<bool>(), (n * (n - 1)) / 2).prop_map(move |edges| {
            let mut g = Cdag::new();
            let mut costs = seed;
            for i in 0..n {
                costs = costs
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                g.add_node(format!("n{i}"), 0, 1 + costs % 50);
            }
            let mut k = 0;
            let mut slot = vec![0u32; n];
            for i in 0..n {
                for j in (i + 1)..n {
                    if edges[k] {
                        g.add_edge(i, j, slot[j], 8)
                            .expect("indexed edges are valid");
                        slot[j] += 1;
                    }
                    k += 1;
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn topo_order_is_consistent(g in arb_dag()) {
        let order = g.topo_order().expect("constructed acyclic");
        prop_assert_eq!(order.len(), g.node_count());
        let mut pos = vec![usize::MAX; g.node_count()];
        for (i, &n) in order.iter().enumerate() {
            pos[n] = i;
        }
        for u in g.node_ids() {
            for e in g.succs(u) {
                prop_assert!(pos[e.from] < pos[e.to]);
            }
        }
    }

    #[test]
    fn critical_path_bounds(g in arb_dag()) {
        let a = CdagAnalysis::analyse(&g).expect("acyclic");
        let max_cost = g.node_ids().map(|n| g.node(n).cost).max().unwrap_or(0);
        prop_assert!(a.critical.length >= max_cost, "critical ≥ heaviest node");
        prop_assert!(a.critical.length <= g.total_work(), "critical ≤ total work");
        // The critical path is a real path.
        for w in a.critical.nodes.windows(2) {
            prop_assert!(
                g.succs(w[0]).any(|e| e.to == w[1]),
                "critical path edge {}→{} missing",
                w[0],
                w[1]
            );
        }
        // Its cost adds up to the reported length.
        let sum: u64 = a.critical.nodes.iter().map(|&n| g.node(n).cost).sum();
        prop_assert_eq!(sum, a.critical.length);
    }

    #[test]
    fn levels_are_consistent(g in arb_dag()) {
        let a = CdagAnalysis::analyse(&g).expect("acyclic");
        for u in g.node_ids() {
            // b-level of a node ≥ its own cost.
            prop_assert!(a.b_level[u] >= g.node(u).cost);
            // t-level + b-level never exceeds the critical length.
            prop_assert!(a.t_level[u] + a.b_level[u] <= a.critical.length);
            // Each predecessor finishes before the node can start.
            for e in g.preds(u) {
                prop_assert!(a.t_level[u] >= a.t_level[e.from] + g.node(e.from).cost);
            }
        }
        // Average parallelism is at least 1 for non-empty graphs.
        if g.node_count() > 0 {
            prop_assert!(a.avg_parallelism >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn hints_priorities_in_range(g in arb_dag()) {
        let a = CdagAnalysis::analyse(&g).expect("acyclic");
        let hints = a.hints(&g);
        prop_assert_eq!(hints.len(), g.node_count());
        let critical: std::collections::HashSet<_> = a.critical.nodes.iter().collect();
        for (u, h) in hints.iter().enumerate() {
            if critical.contains(&u) {
                prop_assert_eq!(h.priority, sdvm_types::Priority::CRITICAL);
            } else {
                prop_assert!(h.priority.0 >= 0 && h.priority.0 < 100);
            }
        }
    }

    #[test]
    fn generators_produce_valid_graphs(
        n in 1usize..30,
        width in 1usize..16,
        cost in 1u64..1000,
        seed in any::<u64>(),
    ) {
        for g in [
            generators::chain(n, cost),
            generators::fork_join(1, width, cost, 1),
            generators::iterative_fork_join(n.min(6), width, cost),
            generators::layered_random(n.min(8), width, seed),
            generators::reduction_tree(width, cost),
            generators::wavefront(width.min(8), cost),
        ] {
            g.topo_order().expect("generator output must be acyclic");
            let a = CdagAnalysis::analyse(&g).expect("analysable");
            prop_assert!(a.critical.length <= g.total_work());
        }
    }
}
