//! The task-graph structure.

use sdvm_types::{SdvmError, SdvmResult};
use std::fmt::Write as _;

/// Index of a node (a microthread instance / task) in a [`Cdag`].
pub type NodeId = usize;
/// Index of an edge (a data dependency) in a [`Cdag`].
pub type EdgeId = usize;

/// A node: one microthread instance, to be fired by one microframe.
#[derive(Clone, Debug)]
pub struct Node {
    /// Estimated computation cost in abstract work units (the simulator
    /// divides by site speed to get virtual time).
    pub cost: u64,
    /// Which microthread (code-table index) this instance runs.
    pub thread_index: u32,
    /// Human-readable label for DOT export and traces.
    pub label: String,
    pub(crate) preds: Vec<EdgeId>,
    pub(crate) succs: Vec<EdgeId>,
}

/// An edge: the producer's result becomes one parameter of the consumer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Producing node.
    pub from: NodeId,
    /// Consuming node.
    pub to: NodeId,
    /// Which parameter slot of the consumer's microframe is filled.
    pub slot: u32,
    /// Size of the transferred value in bytes (communication cost model).
    pub data_bytes: u64,
}

/// A directed acyclic graph of microthread instances and their data
/// dependencies.
#[derive(Clone, Debug, Default)]
pub struct Cdag {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
}

impl Cdag {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, label: impl Into<String>, thread_index: u32, cost: u64) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            cost,
            thread_index,
            label: label.into(),
            preds: Vec::new(),
            succs: Vec::new(),
        });
        id
    }

    /// Add a data dependency; `slot` is the consumer's parameter index.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        slot: u32,
        data_bytes: u64,
    ) -> SdvmResult<EdgeId> {
        if from >= self.nodes.len() || to >= self.nodes.len() {
            return Err(SdvmError::InvalidState(format!(
                "edge {from}->{to} references unknown node (have {})",
                self.nodes.len()
            )));
        }
        if from == to {
            return Err(SdvmError::InvalidState(format!("self-loop on node {from}")));
        }
        let id = self.edges.len();
        self.edges.push(Edge {
            from,
            to,
            slot,
            data_bytes,
        });
        self.nodes[from].succs.push(id);
        self.nodes[to].preds.push(id);
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Edge accessor.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id]
    }

    /// Ids of all nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.nodes.len()
    }

    /// Incoming edges of a node.
    pub fn preds(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.nodes[id].preds.iter().map(move |&e| &self.edges[e])
    }

    /// Outgoing edges of a node.
    pub fn succs(&self, id: NodeId) -> impl Iterator<Item = &Edge> + '_ {
        self.nodes[id].succs.iter().map(move |&e| &self.edges[e])
    }

    /// In-degree of a node (number of parameters its frame waits for).
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.nodes[id].preds.len()
    }

    /// Out-degree of a node.
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.nodes[id].succs.len()
    }

    /// Nodes without predecessors (executable immediately — the program's
    /// entry frames).
    pub fn roots(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.in_degree(n) == 0)
            .collect()
    }

    /// Nodes without successors (the program's results).
    pub fn sinks(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.out_degree(n) == 0)
            .collect()
    }

    /// Total work over all nodes.
    pub fn total_work(&self) -> u64 {
        self.nodes.iter().map(|n| n.cost).sum()
    }

    /// Kahn topological order; errors if the graph has a cycle.
    pub fn topo_order(&self) -> SdvmResult<Vec<NodeId>> {
        let mut indeg: Vec<usize> = self.node_ids().map(|n| self.in_degree(n)).collect();
        let mut queue: Vec<NodeId> = self.node_ids().filter(|&n| indeg[n] == 0).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop() {
            order.push(n);
            for e in &self.nodes[n].succs {
                let t = self.edges[*e].to;
                indeg[t] -= 1;
                if indeg[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err(SdvmError::InvalidState(format!(
                "cycle: only {} of {} nodes sorted",
                order.len(),
                self.nodes.len()
            )));
        }
        Ok(order)
    }

    /// Graphviz DOT representation (critical-path nodes can be highlighted
    /// by passing the analysis' node set).
    pub fn to_dot(&self, highlight: &[NodeId]) -> String {
        let hl: std::collections::HashSet<_> = highlight.iter().collect();
        let mut out = String::from("digraph cdag {\n  rankdir=TB;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let style = if hl.contains(&i) {
                ", color=red, penwidth=2"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{} ({})\"{}];",
                n.label.replace('"', "'"),
                n.cost,
                style
            );
        }
        for e in &self.edges {
            let _ = writeln!(out, "  n{} -> n{} [label=\"s{}\"];", e.from, e.to, e.slot);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Cdag {
        // a -> b, a -> c, b -> d, c -> d
        let mut g = Cdag::new();
        let a = g.add_node("a", 0, 1);
        let b = g.add_node("b", 1, 2);
        let c = g.add_node("c", 1, 3);
        let d = g.add_node("d", 2, 1);
        g.add_edge(a, b, 0, 8).unwrap();
        g.add_edge(a, c, 0, 8).unwrap();
        g.add_edge(b, d, 0, 8).unwrap();
        g.add_edge(c, d, 1, 8).unwrap();
        g
    }

    #[test]
    fn construction_and_degrees() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.sinks(), vec![3]);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.total_work(), 7);
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let order = g.topo_order().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &n) in order.iter().enumerate() {
                p[n] = i;
            }
            p
        };
        for e in (0..g.edge_count()).map(|i| *g.edge(i)) {
            assert!(pos[e.from] < pos[e.to], "{e:?}");
        }
    }

    #[test]
    fn bad_edges_rejected() {
        let mut g = Cdag::new();
        let a = g.add_node("a", 0, 1);
        assert!(g.add_edge(a, a, 0, 0).is_err(), "self loop");
        assert!(g.add_edge(a, 7, 0, 0).is_err(), "unknown node");
    }

    #[test]
    fn dot_contains_nodes_and_highlight() {
        let g = diamond();
        let dot = g.to_dot(&[1]);
        assert!(dot.contains("n0 ->"));
        assert!(dot.contains("color=red"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn empty_graph() {
        let g = Cdag::new();
        assert!(g.topo_order().unwrap().is_empty());
        assert!(g.roots().is_empty());
        assert_eq!(g.total_work(), 0);
    }
}
