//! The CDAG — Controlflow/Dataflow Allocation Graph.
//!
//! The SDVM's applications are partitioned into microthreads whose data
//! dependencies form a DAG; the paper (§3.3, citing Klauer et al., PDP
//! 2002) extracts application structure from the CDAG: blocks with many
//! data dependencies, and the *critical path*, whose microthreads are
//! executed with higher priority. Scheduling hints are attached to
//! microframes from this analysis (or by the programmer).
//!
//! This crate provides the graph structure, the analyses (topological
//! order, t-/b-levels, critical path, average parallelism), scheduling-
//! hint derivation, standard generators for tests/benchmarks, and DOT
//! export for inspection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod generators;
pub mod graph;

pub use analysis::{CdagAnalysis, CriticalPath};
pub use graph::{Cdag, EdgeId, NodeId};
