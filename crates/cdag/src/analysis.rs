//! CDAG analyses: t-/b-levels, critical path, parallelism, hints.
//!
//! - the *t-level* of a node is the longest cost path from any root to
//!   (excluding) the node — its earliest possible start;
//! - the *b-level* is the longest cost path from the node (inclusive) to
//!   any sink — how much work the schedule still has to drive through it;
//! - the *critical path* is the root-to-sink path maximizing total cost:
//!   its length bounds the makespan from below, and the paper executes
//!   its microthreads with higher priority.

use crate::graph::{Cdag, NodeId};
use sdvm_types::{Priority, SchedulingHint, SdvmResult};

/// The critical path of a CDAG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CriticalPath {
    /// Total cost along the path (a lower bound for the makespan on any
    /// number of sites, ignoring communication).
    pub length: u64,
    /// Nodes on the path, root first.
    pub nodes: Vec<NodeId>,
}

/// Results of analysing one CDAG.
#[derive(Clone, Debug)]
pub struct CdagAnalysis {
    /// Earliest possible start (longest path cost strictly before node).
    pub t_level: Vec<u64>,
    /// Longest path cost from node (inclusive) to a sink.
    pub b_level: Vec<u64>,
    /// The critical path.
    pub critical: CriticalPath,
    /// Sum of node costs / critical path length: the application's
    /// average parallelism — what speedup can be hoped for at best.
    pub avg_parallelism: f64,
}

impl CdagAnalysis {
    /// Analyse a graph. Errors on cyclic graphs.
    pub fn analyse(g: &Cdag) -> SdvmResult<Self> {
        let order = g.topo_order()?;
        let n = g.node_count();
        let mut t_level = vec![0u64; n];
        let mut b_level = vec![0u64; n];

        for &u in &order {
            for e in g.preds(u) {
                let cand = t_level[e.from] + g.node(e.from).cost;
                if cand > t_level[u] {
                    t_level[u] = cand;
                }
            }
        }
        // b-levels in reverse topological order; remember the successor
        // that realizes each maximum so the path can be reconstructed.
        let mut best_succ: Vec<Option<NodeId>> = vec![None; n];
        for &u in order.iter().rev() {
            let mut best = 0u64;
            for e in g.succs(u) {
                if b_level[e.to] > best {
                    best = b_level[e.to];
                    best_succ[u] = Some(e.to);
                }
            }
            b_level[u] = g.node(u).cost + best;
        }

        let critical = if n == 0 {
            CriticalPath {
                length: 0,
                nodes: Vec::new(),
            }
        } else {
            let start = g
                .roots()
                .into_iter()
                .max_by_key(|&r| b_level[r])
                .expect("non-empty graph has roots");
            let mut nodes = vec![start];
            let mut cur = start;
            while let Some(next) = best_succ[cur] {
                nodes.push(next);
                cur = next;
            }
            CriticalPath {
                length: b_level[start],
                nodes,
            }
        };

        let avg_parallelism = if critical.length == 0 {
            0.0
        } else {
            g.total_work() as f64 / critical.length as f64
        };

        Ok(CdagAnalysis {
            t_level,
            b_level,
            critical,
            avg_parallelism,
        })
    }

    /// Derive a scheduling hint per node: the b-level becomes the
    /// priority (more remaining downstream work = schedule earlier), and
    /// critical-path nodes get the paper's "higher priority" boost.
    pub fn hints(&self, g: &Cdag) -> Vec<SchedulingHint> {
        let on_path: std::collections::HashSet<_> = self.critical.nodes.iter().collect();
        let max_b = self.b_level.iter().copied().max().unwrap_or(1).max(1);
        g.node_ids()
            .map(|u| {
                // Scale b-levels into 0..=99 so CRITICAL (100) dominates.
                let scaled = (self.b_level[u] * 99 / max_b) as i32;
                let priority = if on_path.contains(&u) {
                    Priority::CRITICAL
                } else {
                    Priority(scaled)
                };
                SchedulingHint {
                    priority,
                    sticky: false,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn diamond() -> Cdag {
        let mut g = Cdag::new();
        let a = g.add_node("a", 0, 1);
        let b = g.add_node("b", 1, 2);
        let c = g.add_node("c", 1, 5);
        let d = g.add_node("d", 2, 1);
        g.add_edge(a, b, 0, 0).unwrap();
        g.add_edge(a, c, 0, 0).unwrap();
        g.add_edge(b, d, 0, 0).unwrap();
        g.add_edge(c, d, 1, 0).unwrap();
        g
    }

    #[test]
    fn levels_and_critical_path() {
        let g = diamond();
        let a = CdagAnalysis::analyse(&g).unwrap();
        assert_eq!(a.t_level, vec![0, 1, 1, 6]); // d waits for c: 1 + 5
        assert_eq!(a.b_level[0], 7); // a + c + d
        assert_eq!(
            a.critical,
            CriticalPath {
                length: 7,
                nodes: vec![0, 2, 3]
            }
        );
        let expect = 9.0 / 7.0;
        assert!((a.avg_parallelism - expect).abs() < 1e-9);
    }

    #[test]
    fn chain_has_no_parallelism() {
        let g = generators::chain(10, 5);
        let a = CdagAnalysis::analyse(&g).unwrap();
        assert_eq!(a.critical.length, 50);
        assert_eq!(a.critical.nodes.len(), 10);
        assert!((a.avg_parallelism - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fork_join_parallelism() {
        let g = generators::fork_join(1, 16, 10, 1);
        let a = CdagAnalysis::analyse(&g).unwrap();
        // fork(1) -> worker(10) -> join(1): critical = 12.
        assert_eq!(a.critical.length, 12);
        let expect = (1 + 16 * 10 + 1) as f64 / 12.0;
        assert!((a.avg_parallelism - expect).abs() < 1e-9);
    }

    #[test]
    fn hints_prioritize_critical_path() {
        let g = diamond();
        let a = CdagAnalysis::analyse(&g).unwrap();
        let hints = a.hints(&g);
        assert_eq!(hints.len(), 4);
        assert_eq!(hints[0].priority, Priority::CRITICAL);
        assert_eq!(hints[2].priority, Priority::CRITICAL);
        assert_eq!(hints[3].priority, Priority::CRITICAL);
        assert!(hints[1].priority < Priority::CRITICAL, "b is off-path");
        assert!(hints[1].priority >= Priority(0));
    }

    #[test]
    fn empty_graph_analysis() {
        let g = Cdag::new();
        let a = CdagAnalysis::analyse(&g).unwrap();
        assert_eq!(a.critical.length, 0);
        assert!(a.critical.nodes.is_empty());
        assert_eq!(a.avg_parallelism, 0.0);
    }

    #[test]
    fn b_level_bounds_t_level_plus_cost() {
        let g = generators::layered_random(6, 8, 42);
        let a = CdagAnalysis::analyse(&g).unwrap();
        for u in g.node_ids() {
            assert!(
                a.t_level[u] + a.b_level[u] <= a.critical.length,
                "node {u}: t+b exceeds critical length"
            );
        }
    }
}
