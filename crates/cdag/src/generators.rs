//! Standard CDAG shapes for tests, benchmarks and the simulator.
//!
//! The application-specific graphs (the paper's prime search, matrix
//! multiplication, ...) live in `sdvm-apps`; these are the neutral
//! skeletons: chains, fork-join, layered random DAGs, trees and
//! wavefronts.

use crate::graph::Cdag;

/// A linear chain of `n` nodes, each of the given cost. Zero exploitable
/// parallelism — the degenerate case for speedup experiments.
pub fn chain(n: usize, cost: u64) -> Cdag {
    let mut g = Cdag::new();
    let mut prev = None;
    for i in 0..n {
        let node = g.add_node(format!("c{i}"), 0, cost);
        if let Some(p) = prev {
            g.add_edge(p, node, 0, 8).expect("valid chain edge");
        }
        prev = Some(node);
    }
    g
}

/// Fork-join: one fork node, `width` independent workers, one join node.
pub fn fork_join(fork_cost: u64, width: usize, worker_cost: u64, join_cost: u64) -> Cdag {
    let mut g = Cdag::new();
    let fork = g.add_node("fork", 0, fork_cost);
    let join = g.add_node("join", 2, join_cost);
    for i in 0..width {
        let w = g.add_node(format!("w{i}"), 1, worker_cost);
        g.add_edge(fork, w, 0, 16).expect("fork edge");
        g.add_edge(w, join, i as u32, 8).expect("join edge");
    }
    g
}

/// A sequence of `rounds` fork-join phases (like iterative algorithms:
/// each round is `width`-parallel, rounds are sequential).
pub fn iterative_fork_join(rounds: usize, width: usize, worker_cost: u64) -> Cdag {
    let mut g = Cdag::new();
    let mut prev_join: Option<usize> = None;
    for r in 0..rounds {
        let fork = g.add_node(format!("fork{r}"), 0, 1);
        if let Some(pj) = prev_join {
            g.add_edge(pj, fork, 0, 8).expect("round link");
        }
        let join = g.add_node(format!("join{r}"), 2, 1);
        for i in 0..width {
            let w = g.add_node(format!("w{r}.{i}"), 1, worker_cost);
            g.add_edge(fork, w, 0, 16).expect("fork edge");
            g.add_edge(w, join, i as u32, 8).expect("join edge");
        }
        prev_join = Some(join);
    }
    g
}

/// A random layered DAG: `layers` layers of `width` nodes; each node
/// depends on 1–3 nodes of the previous layer. Deterministic in `seed`.
pub fn layered_random(layers: usize, width: usize, seed: u64) -> Cdag {
    let mut g = Cdag::new();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut prev_layer: Vec<usize> = Vec::new();
    for l in 0..layers {
        let mut layer = Vec::with_capacity(width);
        for i in 0..width {
            let cost = 1 + next() % 20;
            let node = g.add_node(format!("l{l}.{i}"), l as u32, cost);
            if !prev_layer.is_empty() {
                let deps = 1 + (next() % 3) as usize;
                let mut used = Vec::new();
                for d in 0..deps.min(prev_layer.len()) {
                    let p = prev_layer[(next() as usize) % prev_layer.len()];
                    if !used.contains(&p) {
                        g.add_edge(p, node, d as u32, 8).expect("layer edge");
                        used.push(p);
                    }
                }
            }
            layer.push(node);
        }
        prev_layer = layer;
    }
    g
}

/// A binary reduction tree over `leaves` inputs (cost per node given):
/// models divide-and-conquer combines.
pub fn reduction_tree(leaves: usize, cost: u64) -> Cdag {
    let mut g = Cdag::new();
    assert!(leaves > 0, "need at least one leaf");
    let mut level: Vec<usize> = (0..leaves)
        .map(|i| g.add_node(format!("leaf{i}"), 0, cost))
        .collect();
    let mut depth = 0;
    while level.len() > 1 {
        depth += 1;
        let mut next_level = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                let parent = g.add_node(format!("red{depth}.{}", next_level.len()), 1, cost);
                g.add_edge(pair[0], parent, 0, 8).expect("tree edge");
                g.add_edge(pair[1], parent, 1, 8).expect("tree edge");
                next_level.push(parent);
            } else {
                next_level.push(pair[0]);
            }
        }
        level = next_level;
    }
    g
}

/// A 2-D wavefront (`n` × `n` grid; each cell depends on its upper and
/// left neighbours) — the dependence structure of dynamic-programming
/// kernels and stencil sweeps.
pub fn wavefront(n: usize, cost: u64) -> Cdag {
    let mut g = Cdag::new();
    let mut ids = vec![vec![0usize; n]; n];
    for i in 0..n {
        for j in 0..n {
            ids[i][j] = g.add_node(format!("g{i}.{j}"), 0, cost);
            let mut slot = 0;
            if i > 0 {
                g.add_edge(ids[i - 1][j], ids[i][j], slot, 8)
                    .expect("grid edge");
                slot += 1;
            }
            if j > 0 {
                g.add_edge(ids[i][j - 1], ids[i][j], slot, 8)
                    .expect("grid edge");
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::CdagAnalysis;

    #[test]
    fn chain_shape() {
        let g = chain(5, 3);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.roots().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn single_node_chain() {
        let g = chain(1, 3);
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(1, 8, 10, 1);
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 16);
        assert_eq!(g.roots(), vec![0]);
        assert_eq!(g.sinks(), vec![1]);
    }

    #[test]
    fn iterative_rounds_are_sequential() {
        let g = iterative_fork_join(3, 4, 10);
        let a = CdagAnalysis::analyse(&g).unwrap();
        // Each round: fork(1) + worker(10) + join(1) = 12; 3 rounds = 36.
        assert_eq!(a.critical.length, 36);
    }

    #[test]
    fn layered_random_is_acyclic_and_deterministic() {
        let g1 = layered_random(5, 6, 99);
        let g2 = layered_random(5, 6, 99);
        assert_eq!(g1.node_count(), 30);
        assert_eq!(g1.edge_count(), g2.edge_count());
        g1.topo_order().expect("acyclic");
    }

    #[test]
    fn reduction_tree_depth() {
        let g = reduction_tree(8, 2);
        // 8 leaves + 4 + 2 + 1 internal.
        assert_eq!(g.node_count(), 15);
        let a = CdagAnalysis::analyse(&g).unwrap();
        assert_eq!(a.critical.length, 2 * 4); // leaf + 3 reduce levels
                                              // Non-power-of-two leaf counts also work.
        let g5 = reduction_tree(5, 1);
        assert_eq!(g5.sinks().len(), 1);
        g5.topo_order().expect("acyclic");
    }

    #[test]
    fn wavefront_critical_is_diagonal() {
        let g = wavefront(4, 3);
        assert_eq!(g.node_count(), 16);
        let a = CdagAnalysis::analyse(&g).unwrap();
        // Longest path visits 2n-1 cells.
        assert_eq!(a.critical.length, 3 * 7);
    }
}
