//! Golden-bytes tests: pin the exact wire encoding of representative
//! SDMessages. Heterogeneous clusters mix daemon builds, so an
//! accidental codec change is a silent cluster-wide incompatibility —
//! these tests make it a loud one. If a change is *intentional*, bump
//! `WIRE_VERSION` and update the constants.

use sdvm_types::{GlobalAddress, LoadReport, ManagerId, MicrothreadId, ProgramId, SiteId, Value};
use sdvm_wire::{Payload, SdMessage};

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn golden_apply_result() {
    let msg = SdMessage::new(
        SiteId(3),
        ManagerId::Memory,
        SiteId(7),
        ManagerId::Memory,
        42,
        Payload::ApplyResult {
            target: GlobalAddress::new(SiteId(2), 9),
            slot: 1,
            value: Value::from_u64(0x0102030405060708),
        },
    );
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "020300030703\
2a0028020901080807060504030201",
        "ApplyResult wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn v1_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 1 (before
    // `src_incarnation` entered the envelope). A v2 daemon must refuse
    // them with a version error, not misparse the old field layout.
    let v1 = unhex("01030307032a0028020901080807060504030201");
    let err = SdMessage::from_bytes(&v1).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v1 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn golden_help_request() {
    let mut msg = SdMessage::new(
        SiteId(5),
        ManagerId::Scheduling,
        SiteId(1),
        ManagerId::Scheduling,
        7,
        Payload::HelpRequest {
            load: LoadReport {
                queued_frames: 2,
                busy_slots: 5,
                programs: 1,
                memory_bytes: 1024,
                epoch: 3,
            },
            descriptor: None,
        },
    );
    msg.in_reply_to = None;
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "02050001010107001402050180\
080300",
        "HelpRequest wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn golden_ping_reply() {
    let req = SdMessage::new(
        SiteId(1),
        ManagerId::Site,
        SiteId(2),
        ManagerId::Site,
        100,
        Payload::Ping { token: 255 },
    );
    let reply = req.reply(101, ManagerId::Site, Payload::Pong { token: 255 });
    let bytes = reply.to_bytes();
    assert_eq!(
        hex(&bytes),
        "020200080108650164\
5cff01",
        "Pong wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), reply);
}

#[test]
fn golden_suspect_site() {
    // New in WIRE_VERSION 2: suspicion gossip for the two-phase detector.
    let msg = SdMessage::new(
        SiteId(1),
        ManagerId::Cluster,
        SiteId(2),
        ManagerId::Cluster,
        9,
        Payload::SuspectSite {
            site: SiteId(4),
            incarnation: 3,
        },
    );
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "020100060206090\
00c0403",
        "SuspectSite wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn payload_tags_are_stable() {
    // Tags are the wire contract; reordering the enum must not move them.
    let samples: Vec<(u16, Payload)> = vec![
        (
            1,
            Payload::SignOn {
                descriptor: sdvm_types::SiteDescriptor::new(
                    SiteId(1),
                    sdvm_types::PhysicalAddr::Mem(1),
                    sdvm_types::PlatformId(0),
                ),
            },
        ),
        (
            12,
            Payload::SuspectSite {
                site: SiteId(1),
                incarnation: 1,
            },
        ),
        (
            15,
            Payload::ProbeAck {
                target: SiteId(1),
                incarnation: 1,
            },
        ),
        (16, Payload::DeathNotice { incarnation: 1 }),
        (
            20,
            Payload::HelpRequest {
                load: LoadReport::default(),
                descriptor: None,
            },
        ),
        (
            21,
            Payload::HelpReply {
                frame: sdvm_wire::WireFrame {
                    id: GlobalAddress::new(SiteId(1), 1),
                    thread: MicrothreadId::new(ProgramId(1), 0),
                    slots: vec![],
                    targets: vec![],
                    hint: Default::default(),
                },
            },
        ),
        (
            40,
            Payload::ApplyResult {
                target: GlobalAddress::new(SiteId(1), 1),
                slot: 0,
                value: Value::empty(),
            },
        ),
        (
            54,
            Payload::BackupRelease {
                frame: GlobalAddress::new(SiteId(1), 1),
                owner: SiteId(2),
            },
        ),
        (
            62,
            Payload::CheckpointStore {
                program: ProgramId(1),
                epoch: 1,
                snapshot: bytes::Bytes::new(),
            },
        ),
        (
            67,
            Payload::ProgramPause {
                program: ProgramId(1),
                paused: true,
            },
        ),
        (91, Payload::Ping { token: 0 }),
    ];
    for (tag, p) in samples {
        assert_eq!(p.tag(), tag, "tag moved for {}", p.name());
    }
}
