//! Golden-bytes tests: pin the exact wire encoding of representative
//! SDMessages. Heterogeneous clusters mix daemon builds, so an
//! accidental codec change is a silent cluster-wide incompatibility —
//! these tests make it a loud one. If a change is *intentional*, bump
//! `WIRE_VERSION` and update the constants.

use sdvm_types::{GlobalAddress, LoadReport, ManagerId, MicrothreadId, ProgramId, SiteId, Value};
use sdvm_wire::{Payload, SdMessage};

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

#[test]
fn golden_apply_result() {
    let msg = SdMessage::new(
        SiteId(3),
        ManagerId::Memory,
        SiteId(7),
        ManagerId::Memory,
        42,
        Payload::ApplyResult {
            target: GlobalAddress::new(SiteId(2), 9),
            slot: 1,
            value: Value::from_u64(0x0102030405060708),
        },
    );
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "010303070\
32a0028020901080807060504030201",
        "ApplyResult wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn golden_help_request() {
    let mut msg = SdMessage::new(
        SiteId(5),
        ManagerId::Scheduling,
        SiteId(1),
        ManagerId::Scheduling,
        7,
        Payload::HelpRequest {
            load: LoadReport {
                queued_frames: 2,
                busy_slots: 5,
                programs: 1,
                memory_bytes: 1024,
                epoch: 3,
            },
            descriptor: None,
        },
    );
    msg.in_reply_to = None;
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "0105010101070014020501800803\
00",
        "HelpRequest wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn golden_ping_reply() {
    let req = SdMessage::new(
        SiteId(1),
        ManagerId::Site,
        SiteId(2),
        ManagerId::Site,
        100,
        Payload::Ping { token: 255 },
    );
    let reply = req.reply(101, ManagerId::Site, Payload::Pong { token: 255 });
    let bytes = reply.to_bytes();
    assert_eq!(
        hex(&bytes),
        "0102080108650164\
5cff01",
        "Pong wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), reply);
}

#[test]
fn payload_tags_are_stable() {
    // Tags are the wire contract; reordering the enum must not move them.
    let samples: Vec<(u16, Payload)> = vec![
        (
            1,
            Payload::SignOn {
                descriptor: sdvm_types::SiteDescriptor::new(
                    SiteId(1),
                    sdvm_types::PhysicalAddr::Mem(1),
                    sdvm_types::PlatformId(0),
                ),
            },
        ),
        (
            20,
            Payload::HelpRequest {
                load: LoadReport::default(),
                descriptor: None,
            },
        ),
        (
            21,
            Payload::HelpReply {
                frame: sdvm_wire::WireFrame {
                    id: GlobalAddress::new(SiteId(1), 1),
                    thread: MicrothreadId::new(ProgramId(1), 0),
                    slots: vec![],
                    targets: vec![],
                    hint: Default::default(),
                },
            },
        ),
        (
            40,
            Payload::ApplyResult {
                target: GlobalAddress::new(SiteId(1), 1),
                slot: 0,
                value: Value::empty(),
            },
        ),
        (
            54,
            Payload::BackupRelease {
                frame: GlobalAddress::new(SiteId(1), 1),
                owner: SiteId(2),
            },
        ),
        (
            62,
            Payload::CheckpointStore {
                program: ProgramId(1),
                epoch: 1,
                snapshot: bytes::Bytes::new(),
            },
        ),
        (
            67,
            Payload::ProgramPause {
                program: ProgramId(1),
                paused: true,
            },
        ),
        (91, Payload::Ping { token: 0 }),
    ];
    for (tag, p) in samples {
        assert_eq!(p.tag(), tag, "tag moved for {}", p.name());
    }
}
