//! Golden-bytes tests: pin the exact wire encoding of representative
//! SDMessages. Heterogeneous clusters mix daemon builds, so an
//! accidental codec change is a silent cluster-wide incompatibility —
//! these tests make it a loud one. If a change is *intentional*, bump
//! `WIRE_VERSION` and update the constants.

use sdvm_types::{GlobalAddress, LoadReport, ManagerId, MicrothreadId, ProgramId, SiteId, Value};
use sdvm_wire::{Payload, SdMessage, TraceContext};

fn hex(b: &[u8]) -> String {
    b.iter().map(|x| format!("{x:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn golden_apply_result() {
    let msg = SdMessage::new(
        SiteId(3),
        ManagerId::Memory,
        SiteId(7),
        ManagerId::Memory,
        42,
        Payload::ApplyResult {
            target: GlobalAddress::new(SiteId(2), 9),
            slot: 1,
            value: Value::from_u64(0x0102030405060708),
        },
    );
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "0903000307032a0000\
0028020901080807060504030201",
        "ApplyResult wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn golden_traced_ping() {
    // New in WIRE_VERSION 3: the causal trace context (origin site id +
    // 32-bit trace id, two varints) rides the envelope between
    // `in_reply_to` and the payload.
    let mut msg = SdMessage::new(
        SiteId(5),
        ManagerId::Scheduling,
        SiteId(1),
        ManagerId::Scheduling,
        7,
        Payload::Ping { token: 1 },
    );
    msg.trace = TraceContext {
        origin: SiteId(3),
        id: 300,
    };
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "090500010101070003ac02\
5b01",
        "TraceContext wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn v1_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 1 (before
    // `src_incarnation` entered the envelope). A current daemon must
    // refuse them with a version error, not misparse the old layout.
    let v1 = unhex("01030307032a0028020901080807060504030201");
    let err = SdMessage::from_bytes(&v1).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v1 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn v2_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 2 (before the
    // trace context entered the envelope). A current daemon must refuse
    // them with a version error — decoding best-effort would misread the
    // payload tag as trace-context bytes.
    let v2 = unhex("0203000307032a0028020901080807060504030201");
    let err = SdMessage::from_bytes(&v2).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v2 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn v3_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 3 (before
    // object versions / the replica mode entered the memory payloads). A
    // v4 daemon must refuse them with a version error — decoding
    // best-effort would misread memory payloads that gained fields.
    let v3 = unhex("0303000307032a00000028020901080807060504030201");
    let err = SdMessage::from_bytes(&v3).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v3 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn v4_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 4 (before
    // batch-sealed security records). A v5 daemon must refuse them with
    // a version error: a v4 peer cannot open batch records, so mixed
    // clusters have to fail loudly at the version byte instead of
    // silently losing whole batches.
    let v4 = unhex("0403000307032a00000028020901080807060504030201");
    let err = SdMessage::from_bytes(&v4).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v4 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn v5_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 5 (before
    // replicated/hedged execution). A v6 daemon must refuse them with a
    // version error: a v5 peer would treat `ReplicaTask`/`ReplicaDone`
    // as unknown payloads and lack the `ProgramRegister` replication
    // field, so mixed clusters would double-fire consumers instead of
    // voting — they have to fail loudly at the version byte.
    let v5 = unhex("0503000307032a00000028020901080807060504030201");
    let err = SdMessage::from_bytes(&v5).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v5 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn v6_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 6 (before the
    // ops-plane metrics rollup). A v7 daemon must refuse them with a
    // version error: a v6 peer treats `MetricsSummary` digests as
    // unknown payloads and replies `Error` to every heartbeat tick,
    // spamming the sender — mixed clusters fail loudly at the version
    // byte instead.
    let v6 = unhex("0603000307032a00000028020901080807060504030201");
    let err = SdMessage::from_bytes(&v6).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v6 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn v7_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 7 (before the
    // planned-departure plane). A v7 peer treats the `SiteDraining`
    // gossip as an unknown payload: it would keep granting help to the
    // leaver and keep targeting it as a backup buddy while it drains —
    // mixed clusters fail loudly at the version byte instead.
    let v7 = unhex("0703000307032a00000028020901080807060504030201");
    let err = SdMessage::from_bytes(&v7).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v7 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn v8_frames_are_rejected_loudly() {
    // The exact golden ApplyResult bytes from WIRE_VERSION 8 (before
    // Vivaldi network coordinates). A v8 peer mis-parses the extra
    // option byte the coordinate adds to every `Heartbeat`,
    // `ProbeRequest` and `ProbeAck` — the membership plane would decode
    // garbage loads and incarnations — so mixed clusters fail loudly at
    // the version byte instead.
    let v8 = unhex("0803000307032a00000028020901080807060504030201");
    let err = SdMessage::from_bytes(&v8).unwrap_err();
    let msg = format!("{err}");
    assert!(
        msg.contains("version"),
        "v8 frame must fail on the version byte, got: {msg}"
    );
}

#[test]
fn golden_replica_invalidate() {
    // New in WIRE_VERSION 4: owners invalidate cached read replicas on
    // write/migration.
    let msg = SdMessage::new(
        SiteId(2),
        ManagerId::Memory,
        SiteId(6),
        ManagerId::Memory,
        11,
        Payload::ReplicaInvalidate {
            addr: GlobalAddress::new(SiteId(2), 9),
            version: 300,
        },
    );
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "0902000306030b0000\
00330209ac02",
        "ReplicaInvalidate wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn golden_help_request() {
    let mut msg = SdMessage::new(
        SiteId(5),
        ManagerId::Scheduling,
        SiteId(1),
        ManagerId::Scheduling,
        7,
        Payload::HelpRequest {
            load: LoadReport {
                queued_frames: 2,
                busy_slots: 5,
                programs: 1,
                memory_bytes: 1024,
                epoch: 3,
            },
            descriptor: None,
        },
    );
    msg.in_reply_to = None;
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "0905000101010700000014020501\
80080300",
        "HelpRequest wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn golden_ping_reply() {
    let req = SdMessage::new(
        SiteId(1),
        ManagerId::Site,
        SiteId(2),
        ManagerId::Site,
        100,
        Payload::Ping { token: 255 },
    );
    let reply = req.reply(101, ManagerId::Site, Payload::Pong { token: 255 });
    let bytes = reply.to_bytes();
    assert_eq!(
        hex(&bytes),
        "0902000801086501640000\
5cff01",
        "Pong wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), reply);
}

#[test]
fn golden_suspect_site() {
    // New in WIRE_VERSION 2: suspicion gossip for the two-phase detector.
    let msg = SdMessage::new(
        SiteId(1),
        ManagerId::Cluster,
        SiteId(2),
        ManagerId::Cluster,
        9,
        Payload::SuspectSite {
            site: SiteId(4),
            incarnation: 3,
        },
    );
    let bytes = msg.to_bytes();
    assert_eq!(
        hex(&bytes),
        "090100060206090000\
000c0403",
        "SuspectSite wire encoding changed — bump WIRE_VERSION if intentional"
    );
    assert_eq!(SdMessage::from_bytes(&bytes).unwrap(), msg);
}

#[test]
fn payload_tags_are_stable() {
    // Tags are the wire contract; reordering the enum must not move them.
    let samples: Vec<(u16, Payload)> = vec![
        (
            1,
            Payload::SignOn {
                descriptor: sdvm_types::SiteDescriptor::new(
                    SiteId(1),
                    sdvm_types::PhysicalAddr::Mem(1),
                    sdvm_types::PlatformId(0),
                ),
            },
        ),
        (
            12,
            Payload::SuspectSite {
                site: SiteId(1),
                incarnation: 1,
            },
        ),
        (
            15,
            Payload::ProbeAck {
                target: SiteId(1),
                incarnation: 1,
                coord: None,
            },
        ),
        (16, Payload::DeathNotice { incarnation: 1 }),
        (
            20,
            Payload::HelpRequest {
                load: LoadReport::default(),
                descriptor: None,
            },
        ),
        (
            21,
            Payload::HelpReply {
                frame: sdvm_wire::WireFrame {
                    id: GlobalAddress::new(SiteId(1), 1),
                    thread: MicrothreadId::new(ProgramId(1), 0),
                    slots: vec![],
                    targets: vec![],
                    hint: Default::default(),
                },
            },
        ),
        (
            40,
            Payload::ApplyResult {
                target: GlobalAddress::new(SiteId(1), 1),
                slot: 0,
                value: Value::empty(),
            },
        ),
        (
            51,
            Payload::ReplicaInvalidate {
                addr: GlobalAddress::new(SiteId(1), 1),
                version: 1,
            },
        ),
        (
            54,
            Payload::BackupRelease {
                frame: GlobalAddress::new(SiteId(1), 1),
                owner: SiteId(2),
            },
        ),
        (
            62,
            Payload::CheckpointStore {
                program: ProgramId(1),
                epoch: 1,
                snapshot: bytes::Bytes::new(),
            },
        ),
        (
            67,
            Payload::ProgramPause {
                program: ProgramId(1),
                paused: true,
            },
        ),
        (
            60,
            Payload::ProgramRegister {
                program: ProgramId(1),
                code_home: SiteId(1),
                name: String::new(),
                threads: 1,
                replication: sdvm_types::ReplicationPolicy::Off,
            },
        ),
        (
            82,
            Payload::ReplicaTask {
                frame: sdvm_wire::WireFrame {
                    id: GlobalAddress::new(SiteId(1), 1),
                    thread: MicrothreadId::new(ProgramId(1), 0),
                    slots: vec![],
                    targets: vec![],
                    hint: Default::default(),
                },
                generation: 1,
                replica: 0,
                coordinator: SiteId(1),
                vote: true,
            },
        ),
        (
            83,
            Payload::ReplicaDone {
                frame: GlobalAddress::new(SiteId(1), 1),
                generation: 1,
                replica: 0,
                ok: true,
                sends: vec![],
                error: String::new(),
            },
        ),
        (
            84,
            Payload::MetricsSummary {
                summary: sdvm_wire::WireMetricsSummary::default(),
            },
        ),
        (
            85,
            Payload::SiteDraining {
                site: SiteId(1),
                incarnation: 1,
            },
        ),
        (86, Payload::DeadLetterSweep { letters: vec![] }),
        (
            87,
            Payload::SnapshotCollectIncremental {
                program: ProgramId(1),
            },
        ),
        (91, Payload::Ping { token: 0 }),
    ];
    for (tag, p) in samples {
        assert_eq!(p.tag(), tag, "tag moved for {}", p.name());
    }
}
