//! Property-based tests of the wire codec: arbitrary values round-trip,
//! arbitrary bytes never panic the decoder.

use bytes::Bytes;
use proptest::prelude::*;
use sdvm_types::{
    FileHandle, GlobalAddress, LoadReport, ManagerId, MicrothreadId, PhysicalAddr, PlatformId,
    Priority, ProgramId, ReplicaSelector, ReplicationPolicy, SchedulingHint, SiteDescriptor,
    SiteId, Value,
};
use sdvm_wire::{Decode, Encode, Payload, SdMessage, WireFrame, WireMemObject};

fn arb_site() -> impl Strategy<Value = SiteId> {
    any::<u32>().prop_map(SiteId)
}

fn arb_addr() -> impl Strategy<Value = GlobalAddress> {
    (any::<u32>(), any::<u64>()).prop_map(|(h, l)| GlobalAddress::new(SiteId(h), l))
}

fn arb_thread() -> impl Strategy<Value = MicrothreadId> {
    (any::<u32>(), any::<u32>()).prop_map(|(p, i)| MicrothreadId::new(ProgramId(p), i))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop::collection::vec(any::<u8>(), 0..256).prop_map(|v| Value::from_bytes(Bytes::from(v)))
}

fn arb_physical() -> impl Strategy<Value = PhysicalAddr> {
    prop_oneof![
        any::<u64>().prop_map(PhysicalAddr::Mem),
        "[a-z0-9\\.:]{1,32}".prop_map(PhysicalAddr::Tcp),
    ]
}

fn arb_descriptor() -> impl Strategy<Value = SiteDescriptor> {
    (
        arb_site(),
        arb_physical(),
        any::<u16>(),
        0.01f64..100.0,
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(
            |(site, addr, platform, speed, code_distribution, incarnation)| SiteDescriptor {
                site,
                addr,
                platform: PlatformId(platform),
                speed,
                code_distribution,
                incarnation,
            },
        )
}

fn arb_hint() -> impl Strategy<Value = SchedulingHint> {
    (any::<i32>(), any::<bool>()).prop_map(|(p, sticky)| SchedulingHint {
        priority: Priority(p),
        sticky,
    })
}

fn arb_frame() -> impl Strategy<Value = WireFrame> {
    (
        arb_addr(),
        arb_thread(),
        prop::collection::vec(prop::option::of(arb_value()), 0..16),
        prop::collection::vec(arb_addr(), 0..8),
        arb_hint(),
    )
        .prop_map(|(id, thread, slots, targets, hint)| WireFrame {
            id,
            thread,
            slots,
            targets,
            hint,
        })
}

fn arb_replication() -> impl Strategy<Value = ReplicationPolicy> {
    fn selector() -> impl Strategy<Value = ReplicaSelector> {
        prop_oneof![
            Just(ReplicaSelector::All),
            any::<u32>().prop_map(ReplicaSelector::Thread),
        ]
    }
    prop_oneof![
        Just(ReplicationPolicy::Off),
        (any::<u8>(), selector())
            .prop_map(|(k, selector)| ReplicationPolicy::Replicate { k, selector }),
        (0u64..10_000_000, selector()).prop_map(|(us, selector)| ReplicationPolicy::Hedge {
            delay: std::time::Duration::from_micros(us),
            selector,
        }),
    ]
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        arb_descriptor().prop_map(|descriptor| Payload::SignOn { descriptor }),
        (arb_site(), prop::collection::vec(arb_descriptor(), 0..8))
            .prop_map(|(assigned, cluster)| Payload::SignOnAck { assigned, cluster }),
        arb_frame().prop_map(|frame| Payload::HelpReply { frame }),
        Just(Payload::CantHelp {}),
        (arb_addr(), any::<u32>(), arb_value()).prop_map(|(target, slot, value)| {
            Payload::ApplyResult {
                target,
                slot,
                value,
            }
        }),
        (arb_addr(), any::<bool>(), any::<bool>()).prop_map(|(addr, migrate, replica)| {
            Payload::MemRead {
                addr,
                migrate,
                replica,
            }
        }),
        (arb_addr(), arb_value(), any::<u32>(), any::<u64>()).prop_map(
            |(addr, data, p, version)| Payload::MemValue {
                obj: WireMemObject {
                    addr,
                    program: ProgramId(p),
                    data,
                    version,
                },
                migrated: false,
                replica: false,
            }
        ),
        (
            any::<u32>(),
            arb_site(),
            "[a-z]{0,12}",
            any::<u32>(),
            arb_replication()
        )
            .prop_map(|(program, code_home, name, threads, replication)| {
                Payload::ProgramRegister {
                    program: ProgramId(program),
                    code_home,
                    name,
                    threads,
                    replication,
                }
            }),
        (arb_site(), any::<u32>()).prop_map(|(site, local)| Payload::FileOpened {
            handle: FileHandle { site, local }
        }),
        any::<u64>().prop_map(|token| Payload::Ping { token }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sdmessage_roundtrip(
        src in arb_site(),
        dst in arb_site(),
        seq in any::<u64>(),
        reply in prop::option::of(any::<u64>()),
        incarnation in any::<u64>(),
        payload in arb_payload(),
    ) {
        let mut msg = SdMessage::new(
            src,
            ManagerId::Scheduling,
            dst,
            ManagerId::Memory,
            seq,
            payload,
        );
        msg.in_reply_to = reply;
        msg.src_incarnation = incarnation;
        let bytes = msg.to_bytes();
        let back = SdMessage::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn frame_roundtrip_preserves_missing(frame in arb_frame()) {
        let bytes = frame.encode_to_vec();
        let back = WireFrame::decode_from_slice(&bytes).expect("roundtrip");
        prop_assert_eq!(back.missing(), frame.missing());
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn decoder_never_panics(noise in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine, panics are not.
        let _ = SdMessage::from_bytes(&noise);
        let _ = Payload::decode_from_slice(&noise);
        let _ = WireFrame::decode_from_slice(&noise);
        let _ = SiteDescriptor::decode_from_slice(&noise);
        let _ = LoadReport::decode_from_slice(&noise);
    }

    #[test]
    fn truncation_never_decodes_to_success_with_trailing_loss(
        payload in arb_payload(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = SdMessage::new(
            SiteId(1), ManagerId::Site, SiteId(2), ManagerId::Site, 9, payload,
        );
        let bytes = msg.to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            // A strict prefix must never decode successfully.
            prop_assert!(SdMessage::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn value_scalar_roundtrips(x in any::<i64>(), y in any::<u64>(), f in any::<f64>()) {
        prop_assert_eq!(Value::from_i64(x).as_i64().unwrap(), x);
        prop_assert_eq!(Value::from_u64(y).as_u64().unwrap(), y);
        let back = Value::from_f64(f).as_f64().unwrap();
        prop_assert!(back == f || (back.is_nan() && f.is_nan()));
    }

    #[test]
    fn value_slice_roundtrips(v in prop::collection::vec(any::<u64>(), 0..64)) {
        prop_assert_eq!(Value::from_u64_slice(&v).as_u64_slice().unwrap(), v);
    }
}
