//! Every protocol payload exchanged between SDVM managers, plus the wire
//! form of microframes and memory objects.
//!
//! Grouped as in the paper's manager structure (§4): scheduling (help
//! requests), code distribution, attraction memory, program/checkpoint
//! management, cluster membership, I/O, and site lifecycle.

use crate::codec::{Decode, Encode, WireReader, WireWriter};
use bytes::Bytes;
use sdvm_types::{
    FileHandle, GlobalAddress, LoadReport, MicrothreadId, PlatformId, ProgramId, ReplicationPolicy,
    SchedulingHint, SdvmError, SdvmResult, SiteDescriptor, SiteId, Value,
};

/// Serialized microframe: the unit shipped by help replies, relocation at
/// sign-off, and checkpoints (paper Fig. 2: id, input parameters, owning
/// microthread, target addresses).
#[derive(Clone, PartialEq, Debug)]
pub struct WireFrame {
    /// Global id of the frame (it is a special memory object).
    pub id: GlobalAddress,
    /// The microthread this frame will fire.
    pub thread: MicrothreadId,
    /// Parameter slots; `None` = still missing.
    pub slots: Vec<Option<Value>>,
    /// Target addresses the microthread will send its results to (may also
    /// be passed inside parameter values; this field carries the
    /// statically-known part).
    pub targets: Vec<GlobalAddress>,
    /// Scheduling hints (priority from the CDAG or the programmer).
    pub hint: SchedulingHint,
}

impl WireFrame {
    /// The program this frame belongs to.
    pub fn program(&self) -> ProgramId {
        self.thread.program
    }

    /// Number of parameters still missing before the frame is executable.
    pub fn missing(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// True when every parameter has arrived (dataflow firing rule).
    pub fn is_executable(&self) -> bool {
        self.missing() == 0
    }
}

impl Encode for WireFrame {
    fn encode(&self, w: &mut WireWriter) {
        self.id.encode(w);
        self.thread.encode(w);
        self.slots.encode(w);
        self.targets.encode(w);
        self.hint.encode(w);
    }
}

impl Decode for WireFrame {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(WireFrame {
            id: GlobalAddress::decode(r)?,
            thread: MicrothreadId::decode(r)?,
            slots: Vec::decode(r)?,
            targets: Vec::decode(r)?,
            hint: SchedulingHint::decode(r)?,
        })
    }
}

/// Serialized global memory object (for migration, relocation, checkpoints).
#[derive(Clone, PartialEq, Debug)]
pub struct WireMemObject {
    /// Global address (homesite encoded within).
    pub addr: GlobalAddress,
    /// Owning program (objects die with their program).
    pub program: ProgramId,
    /// Contents.
    pub data: Value,
    /// Monotonic write version (wire v4). Bumped by the owner on every
    /// write; read replicas remember the version they were cut from so
    /// stale copies are detectable.
    pub version: u64,
}

impl Encode for WireMemObject {
    fn encode(&self, w: &mut WireWriter) {
        self.addr.encode(w);
        self.program.encode(w);
        self.data.encode(w);
        w.put_varint(self.version);
    }
}

impl Decode for WireMemObject {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(WireMemObject {
            addr: GlobalAddress::decode(r)?,
            program: ProgramId::decode(r)?,
            data: Value::decode(r)?,
            version: r.get_varint()?,
        })
    }
}

/// One buffered result send produced by a vote-mode replica execution
/// (wire v6): the escrow coordinator replays the winning replica's sends
/// after the vote decides.
#[derive(Clone, PartialEq, Debug)]
pub struct WireSend {
    /// The consumer frame's parameter slot address.
    pub target: GlobalAddress,
    /// Slot index within the target frame.
    pub slot: u32,
    /// The result value.
    pub value: Value,
}

impl Encode for WireSend {
    fn encode(&self, w: &mut WireWriter) {
        self.target.encode(w);
        self.slot.encode(w);
        self.value.encode(w);
    }
}

impl Decode for WireSend {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(WireSend {
            target: GlobalAddress::decode(r)?,
            slot: u32::decode(r)?,
            value: Value::decode(r)?,
        })
    }
}

/// Compact per-site telemetry digest piggybacked on heartbeat traffic
/// (wire v7): the counters an operator steers by, plus the two
/// latency histograms needed for cluster-merged quantiles. Bucket
/// vectors are raw per-bucket counts from the site's log2 histograms
/// (index = `bucket_of(µs)`), so any receiver can merge digests by
/// element-wise addition and re-derive p50/p99/p999 without resolution
/// loss beyond the bucket width.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WireMetricsSummary {
    /// Messages sent by the reporting site.
    pub messages_sent: u64,
    /// Messages received by the reporting site.
    pub messages_received: u64,
    /// Microframes executed.
    pub frames_executed: u64,
    /// Microframes retried after a failure.
    pub frames_retried: u64,
    /// Microframes quarantined (dead-lettered).
    pub frames_quarantined: u64,
    /// Crash declarations this site originated or observed.
    pub crashes_declared: u64,
    /// Help requests sent (work-stealing pressure signal).
    pub help_requests: u64,
    /// Help requests this site granted.
    pub help_granted: u64,
    /// Sum of all frame career latencies, in microseconds.
    pub career_sum_us: u64,
    /// Per-bucket counts of the frame career log2 histogram.
    pub career_buckets: Vec<u64>,
    /// Sum of all help round-trip latencies, in microseconds.
    pub help_rtt_sum_us: u64,
    /// Per-bucket counts of the help RTT log2 histogram.
    pub help_rtt_buckets: Vec<u64>,
}

impl Encode for WireMetricsSummary {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.messages_sent);
        w.put_varint(self.messages_received);
        w.put_varint(self.frames_executed);
        w.put_varint(self.frames_retried);
        w.put_varint(self.frames_quarantined);
        w.put_varint(self.crashes_declared);
        w.put_varint(self.help_requests);
        w.put_varint(self.help_granted);
        w.put_varint(self.career_sum_us);
        self.career_buckets.encode(w);
        w.put_varint(self.help_rtt_sum_us);
        self.help_rtt_buckets.encode(w);
    }
}

impl Decode for WireMetricsSummary {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(WireMetricsSummary {
            messages_sent: r.get_varint()?,
            messages_received: r.get_varint()?,
            frames_executed: r.get_varint()?,
            frames_retried: r.get_varint()?,
            frames_quarantined: r.get_varint()?,
            crashes_declared: r.get_varint()?,
            help_requests: r.get_varint()?,
            help_granted: r.get_varint()?,
            career_sum_us: r.get_varint()?,
            career_buckets: Vec::decode(r)?,
            help_rtt_sum_us: r.get_varint()?,
            help_rtt_buckets: Vec::decode(r)?,
        })
    }
}

/// Vivaldi-style network coordinate (wire v9): a point in a 3-D
/// Euclidean space plus a non-Euclidean *height* modelling the
/// access-link delay, as in the Vivaldi paper. Sites gossip their
/// coordinate on heartbeat and probe traffic; any receiver can then
/// predict the RTT to a site it never measured as
/// `|xa - xb| + ha + hb` (milliseconds). `err` is the sender's own
/// confidence (relative fit error, 0 = perfect, starts at 1) so
/// receivers can weigh how much to trust the prediction.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct WireCoord {
    /// Euclidean component, milliseconds.
    pub x: f64,
    /// Euclidean component, milliseconds.
    pub y: f64,
    /// Euclidean component, milliseconds.
    pub z: f64,
    /// Height (access-link delay), milliseconds, always >= 0.
    pub h: f64,
    /// Relative fit error in [0, 1+]; 1.0 = no confidence yet.
    pub err: f64,
}

impl WireCoord {
    /// The origin with no confidence: every site starts here.
    pub fn origin() -> Self {
        WireCoord {
            x: 0.0,
            y: 0.0,
            z: 0.0,
            h: 0.0,
            err: 1.0,
        }
    }

    /// Predicted RTT between two coordinates, in milliseconds:
    /// Euclidean distance plus both heights.
    pub fn predicted_rtt_ms(&self, other: &WireCoord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt() + self.h + other.h
    }
}

impl Encode for WireCoord {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(self.x);
        w.put_f64(self.y);
        w.put_f64(self.z);
        w.put_f64(self.h);
        w.put_f64(self.err);
    }
}

impl Decode for WireCoord {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(WireCoord {
            x: r.get_f64()?,
            y: r.get_f64()?,
            z: r.get_f64()?,
            h: r.get_f64()?,
            err: r.get_f64()?,
        })
    }
}

macro_rules! payloads {
    (
        $(
            $(#[$meta:meta])*
            $tag:literal $variant:ident { $( $(#[$fmeta:meta])* $field:ident : $ty:ty ),* $(,)? }
        ),* $(,)?
    ) => {
        /// A typed protocol payload carried by an [`SdMessage`](crate::SdMessage).
        ///
        /// Field meanings are documented on each variant; the field names
        /// themselves are self-describing.
        #[derive(Clone, PartialEq, Debug)]
        #[allow(missing_docs)]
        pub enum Payload {
            $(
                $(#[$meta])*
                $variant { $( $(#[$fmeta])* $field: $ty, )* },
            )*
        }

        impl Payload {
            /// Stable wire tag of this payload kind.
            pub fn tag(&self) -> u16 {
                match self {
                    $( Payload::$variant { .. } => $tag, )*
                }
            }

            /// Human-readable payload kind (for traces and logs).
            pub fn name(&self) -> &'static str {
                match self {
                    $( Payload::$variant { .. } => stringify!($variant), )*
                }
            }
        }

        impl Encode for Payload {
            fn encode(&self, w: &mut WireWriter) {
                w.put_varint(self.tag() as u64);
                match self {
                    $(
                        #[allow(unused_variables)]
                        Payload::$variant { $( $field, )* } => {
                            $( $field.encode(w); )*
                        }
                    )*
                }
            }
        }

        impl Decode for Payload {
            fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
                let tag = r.get_varint()?;
                match tag {
                    $(
                        $tag => Ok(Payload::$variant {
                            $( $field: <$ty>::decode(r)?, )*
                        }),
                    )*
                    t => Err(SdvmError::Decode(format!("unknown payload tag {t}"))),
                }
            }
        }
    };
}

payloads! {
    // ---- cluster membership (§3.4, §4 cluster manager) ----

    /// A new site asks to join; sent to the cluster manager of a site it
    /// already knows. Carries the joiner's self-description (its id is
    /// still `SiteId::NONE`).
    1 SignOn { descriptor: SiteDescriptor },
    /// Reply to `SignOn`: the assigned logical id plus knowledge about the
    /// current composition of the cluster.
    2 SignOnAck { assigned: SiteId, cluster: Vec<SiteDescriptor> },
    /// Join refused (e.g. id space exhausted under the modulo strategy or
    /// contact site cannot allocate).
    3 SignOnRefused { reason: String },
    /// Epidemic propagation of site knowledge with normal traffic.
    4 SiteAnnounce { descriptor: SiteDescriptor },
    /// Orderly sign-off announcement (after relocation finished).
    /// `successor` takes over the leaver's homesite directory role.
    5 SignOff { site: SiteId, successor: SiteId },
    /// Periodic liveness + load gossip. `coord` (wire v9) piggybacks
    /// the sender's Vivaldi network coordinate so receivers can rank
    /// peers by predicted proximity without extra probe traffic.
    6 Heartbeat { load: LoadReport, coord: Option<WireCoord> },
    /// Request the full cluster list (new sites, recovery).
    7 ClusterListRequest {},
    /// The full cluster list.
    8 ClusterList { sites: Vec<SiteDescriptor> },
    /// Id-server protocol (contingents strategy): ask for a fresh block.
    9 IdBlockRequest {},
    /// Id-server protocol: a block of free logical ids [start, start+len).
    10 IdBlockGrant { start: u32, len: u32 },
    /// A site was detected crashed; propagate so everyone drops it.
    /// `successor` takes over its homesite directory role during recovery.
    /// `incarnation` is the highest incarnation of `site` known to the
    /// declarer: every incarnation at or below it is fenced as a zombie.
    11 SiteCrashed { site: SiteId, successor: SiteId, incarnation: u64 },

    // ---- failure detection (SWIM-style suspicion; §2.2 robustness) ----

    /// Gossip: the sender suspects `site` (incarnation `incarnation`) of
    /// having crashed — it has been silent past the suspect timeout and
    /// direct probes went unanswered so far. Receivers that heard from
    /// the site recently may answer with `ProbeAck`; the suspect itself
    /// refutes with a bumped incarnation.
    12 SuspectSite { site: SiteId, incarnation: u64 },
    /// A suspected site protests it is alive: re-announces its descriptor
    /// with an incarnation bumped past the suspicion it refutes.
    13 RefuteSuspicion { descriptor: SiteDescriptor },
    /// Indirect probe: ask the receiver to ping `target` on the sender's
    /// behalf (the sender cannot reach it, or wants a second opinion).
    /// `coord` (wire v9) piggybacks the requester's Vivaldi coordinate.
    14 ProbeRequest { target: SiteId, coord: Option<WireCoord> },
    /// Indirect probe succeeded (or the sender has fresh first-hand
    /// evidence): `target` is alive at `incarnation`. `coord` (wire v9)
    /// piggybacks the prober's Vivaldi coordinate.
    15 ProbeAck { target: SiteId, incarnation: u64, coord: Option<WireCoord> },
    /// Fencing notice sent to a zombie: "the cluster declared incarnation
    /// `incarnation` of you dead". The zombie rejoins by re-announcing
    /// itself with a higher incarnation.
    16 DeathNotice { incarnation: u64 },

    // ---- distributed scheduling (§3.3, §4 scheduling manager) ----

    /// An idle site asks another for work. Carries current load and — on a
    /// site's *first* request — its descriptor, which doubles as the join
    /// announcement (§3.4).
    20 HelpRequest { load: LoadReport, descriptor: Option<SiteDescriptor> },
    /// Positive answer: an executable (or ready) microframe migrates to
    /// the requester.
    21 HelpReply { frame: WireFrame },
    /// The asked site has no spare work either.
    22 CantHelp {},

    // ---- code distribution (§4 code manager) ----

    /// Request a microthread's code, in the requester's platform-specific
    /// binary format if possible.
    30 CodeRequest { thread: MicrothreadId, platform: PlatformId },
    /// Code in the requested binary format.
    31 CodeBinary { thread: MicrothreadId, platform: PlatformId, artifact: Bytes },
    /// No binary for that platform is known; source code instead. The
    /// requester compiles on the fly.
    32 CodeSource { thread: MicrothreadId, source: Bytes },
    /// Neither binary nor source available here.
    33 CodeUnavailable { thread: MicrothreadId },
    /// After on-the-fly compilation, the fresh binary is uploaded to a
    /// code distribution site so future requesters get binaries at first go.
    34 CodeUpload { thread: MicrothreadId, platform: PlatformId, artifact: Bytes },

    // ---- attraction memory (§4) ----

    /// Apply a microthread result to a waiting frame's parameter slot —
    /// the fundamental dataflow message.
    40 ApplyResult { target: GlobalAddress, slot: u32, value: Value },
    /// Read a global object; `migrate` requests ownership transfer
    /// (attraction), otherwise a copy suffices. `replica` (wire v4) asks
    /// the owner to also enter the reader into the object's copyset so
    /// the copy may be cached locally until invalidated.
    41 MemRead { addr: GlobalAddress, migrate: bool, replica: bool },
    /// Successful read/migration reply. `replica` echoes that the reader
    /// was entered into the copyset and may cache the value.
    42 MemValue { obj: WireMemObject, migrated: bool, replica: bool },
    /// Write a global object (forwarded to the current owner).
    43 MemWrite { addr: GlobalAddress, value: Value },
    /// Write acknowledged.
    44 MemWriteAck { addr: GlobalAddress },
    /// Homesite directory: ask who currently owns an object.
    45 OwnerQuery { addr: GlobalAddress },
    /// Homesite directory answer.
    46 OwnerReply { addr: GlobalAddress, owner: Option<SiteId> },
    /// Homesite directory update: object migrated to a new owner.
    47 OwnerUpdate { addr: GlobalAddress, owner: SiteId },
    /// The object is not owned by the replying site. `hint` (wire v4)
    /// carries the last-known owner so the chaser can jump straight to it
    /// instead of re-querying the homesite after a blind backoff.
    48 MemMissing { addr: GlobalAddress, hint: Option<SiteId> },
    /// Bulk transfer of objects + frames during sign-off relocation.
    /// `directory` hands over the leaver's homesite directory entries
    /// (address → current owner).
    49 Relocate { objects: Vec<WireMemObject>, frames: Vec<WireFrame>, directory: Vec<(GlobalAddress, SiteId)> },
    /// Relocation accepted.
    50 RelocateAck {},
    /// The owner wrote (or migrated) the object: every copyset member
    /// must drop its cached replica. `version` is the owner's version
    /// after the write, for tracing; the drop itself is unconditional.
    51 ReplicaInvalidate { addr: GlobalAddress, version: u64 },

    // ---- crash management: backup mirroring (§2.2, [4]) ----

    /// The frame migrated away from `owner`; drop it from that bucket
    /// (unlike `BackupConsumed` this is not a tombstone — the new owner
    /// mirrors it afresh). Sent by the *adopter* after it has re-mirrored
    /// the frame, so there is never a moment with no backup anywhere.
    54 BackupRelease { frame: GlobalAddress, owner: SiteId },
    /// Mirror of a freshly created frame to its backup site.
    55 BackupFrame { frame: WireFrame },
    /// Mirror of a result application (sent by the *result sender* so no
    /// crash window exists between owner receipt and mirroring).
    56 BackupApply { target: GlobalAddress, slot: u32, value: Value },
    /// The frame was executed; its backup may be discarded.
    57 BackupConsumed { frame: GlobalAddress },
    /// Mirror of a global memory object (on alloc and write).
    58 BackupObject { obj: WireMemObject },
    /// Ask a backup site to revive everything it holds for a dead site.
    59 RecoverSite { dead: SiteId },

    // ---- program management & checkpoints (§4, [4]) ----

    /// Announce a program: code home site, number of microthreads, and
    /// (wire v6) its replication policy, so every site coordinates
    /// replicated/hedged dispatch identically.
    60 ProgramRegister { program: ProgramId, code_home: SiteId, name: String, threads: u32, replication: ReplicationPolicy },
    /// The program produced its final result / terminated; sites may purge
    /// its microthreads and objects.
    61 ProgramTerminated { program: ProgramId },
    /// Store a checkpoint snapshot on a checkpoint site.
    62 CheckpointStore { program: ProgramId, epoch: u64, snapshot: Bytes },
    /// Snapshot stored.
    63 CheckpointAck { program: ProgramId, epoch: u64 },
    /// Fetch the latest snapshot (crash recovery).
    64 CheckpointFetch { program: ProgramId },
    /// Latest snapshot.
    65 CheckpointData { program: ProgramId, epoch: u64, snapshot: Bytes },
    /// No snapshot stored here.
    66 CheckpointNone { program: ProgramId },
    /// Pause (or resume) executing a program's microframes cluster-wide;
    /// used to quiesce before collecting a checkpoint snapshot.
    67 ProgramPause { program: ProgramId, paused: bool },
    /// Ask a site for its share of a program's state (without draining
    /// it — unlike `Relocate`).
    68 SnapshotCollect { program: ProgramId },
    /// A site's contribution to a program snapshot.
    69 SnapshotPart { program: ProgramId, objects: Vec<WireMemObject>, frames: Vec<WireFrame> },

    // ---- I/O manager (§4) ----

    /// Program output routed to the frontend site.
    70 IoOutput { program: ProgramId, text: String },
    /// Program requests an input line from the user (via frontend).
    71 IoInputRequest { program: ProgramId, prompt: String },
    /// The user's input line.
    72 IoInputReply { program: ProgramId, line: String },
    /// Open a file on the site it resides on.
    73 FileOpen { path: String, create: bool },
    /// File opened; the handle embeds the owning site.
    74 FileOpened { handle: FileHandle },
    /// Read `len` bytes at `offset` (rerouted to the handle's site).
    75 FileRead { handle: FileHandle, offset: u64, len: u32 },
    /// Bytes read.
    76 FileData { handle: FileHandle, data: Bytes },
    /// Write bytes at `offset`.
    77 FileWrite { handle: FileHandle, offset: u64, data: Bytes },
    /// Write acknowledged.
    78 FileAck { handle: FileHandle },
    /// Close the file.
    79 FileClose { handle: FileHandle },
    /// A file operation failed.
    80 FileError { message: String },

    // ---- poison-frame quarantine (§2.2 robustness) ----

    /// A microframe of `program` was quarantined on the sender (dead-letter
    /// store) after a handler panic, an application error, or retry-budget
    /// exhaustion. Sent to the program's code home (frontend), whose
    /// failure policy decides whether the program fails fast or skips the
    /// frame and continues.
    81 FrameQuarantined { program: ProgramId, frame: GlobalAddress, thread: MicrothreadId, cause: String },

    // ---- replicated / hedged execution (wire v6) ----

    /// Execute `frame` as replica number `replica` (generation
    /// `generation`) on behalf of `coordinator` (the frame's home site,
    /// which holds the escrow entry). With `vote` set the executor
    /// buffers its result sends and reports them in `ReplicaDone`
    /// instead of applying them — the coordinator compares the buffered
    /// sends across replicas and applies the winners. Without `vote`
    /// (hedged dispatch) the replica executes normally: first write
    /// wins, the loser's duplicates are fenced.
    82 ReplicaTask { frame: WireFrame, generation: u32, replica: u8, coordinator: SiteId, vote: bool },
    /// A replica finished executing. For vote-mode replicas `sends`
    /// carries the buffered result sends (the escrow ballot); `ok:false`
    /// reports a failed/panicked replica with `error` as the cause.
    83 ReplicaDone { frame: GlobalAddress, generation: u32, replica: u8, ok: bool, sends: Vec<WireSend>, error: String },

    // ---- cluster-wide metrics rollup (wire v7, ops plane) ----

    /// Periodic telemetry digest piggybacked on heartbeat fan-out: the
    /// sender's cumulative counters and latency histograms, compact
    /// enough to ride every heartbeat tick. Receivers keep the latest
    /// digest per site (digests are cumulative, so latest-wins) and any
    /// site can merge its table into cluster totals and quantiles.
    84 MetricsSummary { summary: WireMetricsSummary },

    // ---- planned departure & online checkpoint (wire v8) ----

    /// Gossip: `site` (at `incarnation`) entered the `Draining` membership
    /// state — it is leaving on purpose. Receivers stop granting it help,
    /// stop announcing programs to it, skip it as a relocation successor
    /// and as a backup buddy, but do NOT suspect it: draining is not a
    /// failure, and the detector stays out of it. The state clears when
    /// the site's `SignOff` arrives (or a fresh descriptor rejoins it).
    85 SiteDraining { site: SiteId, incarnation: u64 },
    /// A draining site hands its dead-letter store to its successor so
    /// quarantined frames stay redrivable after the departure. Each
    /// letter is the quarantined frame plus its human-readable cause.
    86 DeadLetterSweep { letters: Vec<(WireFrame, String)> },
    /// Pause-free checkpoint round (online checkpoint): ask a site for
    /// its share of a program's state captured as per-shard consistent
    /// cuts — dirty shards re-captured under their own shard lock, clean
    /// shards answered from the previous cut — without quiescing the
    /// execution engine the way `SnapshotCollect` does. Answered with a
    /// regular `SnapshotPart`.
    87 SnapshotCollectIncremental { program: ProgramId },

    // ---- generic ----

    /// Generic error reply carrying the failed request's description.
    90 Error { message: String },
    /// Liveness probe used by tests and the site manager's status query.
    91 Ping { token: u64 },
    /// Answer to `Ping`.
    92 Pong { token: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvm_types::{PhysicalAddr, Priority};

    fn rt(p: Payload) {
        let bytes = p.encode_to_vec();
        let back = Payload::decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, p);
    }

    fn sample_frame() -> WireFrame {
        WireFrame {
            id: GlobalAddress::new(SiteId(1), 7),
            thread: MicrothreadId::new(ProgramId(2), 3),
            slots: vec![
                Some(Value::from_u64(1)),
                None,
                Some(Value::from_str_val("x")),
            ],
            targets: vec![GlobalAddress::new(SiteId(4), 9)],
            hint: SchedulingHint {
                priority: Priority(5),
                sticky: true,
            },
        }
    }

    #[test]
    fn frame_executability() {
        let mut f = sample_frame();
        assert_eq!(f.missing(), 1);
        assert!(!f.is_executable());
        f.slots[1] = Some(Value::empty());
        assert!(f.is_executable());
        assert_eq!(f.program(), ProgramId(2));
    }

    #[test]
    fn roundtrip_every_payload_kind() {
        let d = SiteDescriptor::new(SiteId(3), PhysicalAddr::Mem(3), PlatformId(1));
        let obj = WireMemObject {
            addr: GlobalAddress::new(SiteId(1), 5),
            program: ProgramId(1),
            data: Value::from_u64(9),
            version: 4,
        };
        let samples = vec![
            Payload::SignOn {
                descriptor: d.clone(),
            },
            Payload::SignOnAck {
                assigned: SiteId(9),
                cluster: vec![d.clone()],
            },
            Payload::SignOnRefused {
                reason: "full".into(),
            },
            Payload::SiteAnnounce {
                descriptor: d.clone(),
            },
            Payload::SignOff {
                site: SiteId(2),
                successor: SiteId(3),
            },
            Payload::Heartbeat {
                load: LoadReport {
                    epoch: 3,
                    ..Default::default()
                },
                coord: Some(WireCoord {
                    x: 1.25,
                    y: -0.5,
                    z: 3.0,
                    h: 0.1,
                    err: 0.4,
                }),
            },
            Payload::ClusterListRequest {},
            Payload::ClusterList {
                sites: vec![d.clone(), d.clone()],
            },
            Payload::IdBlockRequest {},
            Payload::IdBlockGrant {
                start: 100,
                len: 50,
            },
            Payload::SiteCrashed {
                site: SiteId(4),
                successor: SiteId(5),
                incarnation: 2,
            },
            Payload::SuspectSite {
                site: SiteId(4),
                incarnation: 1,
            },
            Payload::RefuteSuspicion {
                descriptor: d.clone(),
            },
            Payload::ProbeRequest {
                target: SiteId(4),
                coord: None,
            },
            Payload::ProbeAck {
                target: SiteId(4),
                incarnation: 3,
                coord: Some(WireCoord::origin()),
            },
            Payload::DeathNotice { incarnation: 2 },
            Payload::HelpRequest {
                load: LoadReport::default(),
                descriptor: Some(d.clone()),
            },
            Payload::HelpReply {
                frame: sample_frame(),
            },
            Payload::CantHelp {},
            Payload::CodeRequest {
                thread: MicrothreadId::new(ProgramId(1), 2),
                platform: PlatformId(3),
            },
            Payload::CodeBinary {
                thread: MicrothreadId::new(ProgramId(1), 2),
                platform: PlatformId(3),
                artifact: Bytes::from_static(b"bin"),
            },
            Payload::CodeSource {
                thread: MicrothreadId::new(ProgramId(1), 2),
                source: Bytes::from_static(b"src"),
            },
            Payload::CodeUnavailable {
                thread: MicrothreadId::new(ProgramId(1), 2),
            },
            Payload::CodeUpload {
                thread: MicrothreadId::new(ProgramId(1), 2),
                platform: PlatformId(1),
                artifact: Bytes::from_static(b"bin2"),
            },
            Payload::ApplyResult {
                target: GlobalAddress::new(SiteId(1), 1),
                slot: 2,
                value: Value::from_i64(-5),
            },
            Payload::MemRead {
                addr: GlobalAddress::new(SiteId(1), 1),
                migrate: true,
                replica: false,
            },
            Payload::MemValue {
                obj: obj.clone(),
                migrated: false,
                replica: true,
            },
            Payload::MemWrite {
                addr: GlobalAddress::new(SiteId(1), 1),
                value: Value::empty(),
            },
            Payload::MemWriteAck {
                addr: GlobalAddress::new(SiteId(1), 1),
            },
            Payload::OwnerQuery {
                addr: GlobalAddress::new(SiteId(1), 1),
            },
            Payload::OwnerReply {
                addr: GlobalAddress::new(SiteId(1), 1),
                owner: Some(SiteId(2)),
            },
            Payload::OwnerUpdate {
                addr: GlobalAddress::new(SiteId(1), 1),
                owner: SiteId(2),
            },
            Payload::MemMissing {
                addr: GlobalAddress::new(SiteId(1), 1),
                hint: Some(SiteId(3)),
            },
            Payload::Relocate {
                objects: vec![obj.clone()],
                frames: vec![sample_frame()],
                directory: vec![(GlobalAddress::new(SiteId(1), 3), SiteId(2))],
            },
            Payload::RelocateAck {},
            Payload::ReplicaInvalidate {
                addr: GlobalAddress::new(SiteId(1), 1),
                version: 7,
            },
            Payload::BackupRelease {
                frame: GlobalAddress::new(SiteId(1), 1),
                owner: SiteId(2),
            },
            Payload::BackupFrame {
                frame: sample_frame(),
            },
            Payload::BackupApply {
                target: GlobalAddress::new(SiteId(1), 1),
                slot: 0,
                value: Value::from_u64(3),
            },
            Payload::BackupConsumed {
                frame: GlobalAddress::new(SiteId(1), 1),
            },
            Payload::BackupObject { obj: obj.clone() },
            Payload::RecoverSite { dead: SiteId(3) },
            Payload::ProgramRegister {
                program: ProgramId(1),
                code_home: SiteId(1),
                name: "primes".into(),
                threads: 4,
                replication: sdvm_types::ReplicationPolicy::Replicate {
                    k: 3,
                    selector: sdvm_types::ReplicaSelector::Thread(0),
                },
            },
            Payload::ProgramTerminated {
                program: ProgramId(1),
            },
            Payload::CheckpointStore {
                program: ProgramId(1),
                epoch: 2,
                snapshot: Bytes::from_static(b"snap"),
            },
            Payload::CheckpointAck {
                program: ProgramId(1),
                epoch: 2,
            },
            Payload::CheckpointFetch {
                program: ProgramId(1),
            },
            Payload::CheckpointData {
                program: ProgramId(1),
                epoch: 2,
                snapshot: Bytes::from_static(b"snap"),
            },
            Payload::CheckpointNone {
                program: ProgramId(1),
            },
            Payload::ProgramPause {
                program: ProgramId(1),
                paused: true,
            },
            Payload::SnapshotCollect {
                program: ProgramId(1),
            },
            Payload::SnapshotPart {
                program: ProgramId(1),
                objects: vec![obj.clone()],
                frames: vec![sample_frame()],
            },
            Payload::IoOutput {
                program: ProgramId(1),
                text: "hello".into(),
            },
            Payload::IoInputRequest {
                program: ProgramId(1),
                prompt: "> ".into(),
            },
            Payload::IoInputReply {
                program: ProgramId(1),
                line: "yes".into(),
            },
            Payload::FileOpen {
                path: "/tmp/x".into(),
                create: true,
            },
            Payload::FileOpened {
                handle: FileHandle {
                    site: SiteId(1),
                    local: 2,
                },
            },
            Payload::FileRead {
                handle: FileHandle {
                    site: SiteId(1),
                    local: 2,
                },
                offset: 0,
                len: 16,
            },
            Payload::FileData {
                handle: FileHandle {
                    site: SiteId(1),
                    local: 2,
                },
                data: Bytes::from_static(b"data"),
            },
            Payload::FileWrite {
                handle: FileHandle {
                    site: SiteId(1),
                    local: 2,
                },
                offset: 8,
                data: Bytes::from_static(b"data"),
            },
            Payload::FileAck {
                handle: FileHandle {
                    site: SiteId(1),
                    local: 2,
                },
            },
            Payload::FileClose {
                handle: FileHandle {
                    site: SiteId(1),
                    local: 2,
                },
            },
            Payload::FileError {
                message: "enoent".into(),
            },
            Payload::FrameQuarantined {
                program: ProgramId(1),
                frame: GlobalAddress::new(SiteId(2), 4),
                thread: MicrothreadId::new(ProgramId(1), 2),
                cause: "handler panicked: boom".into(),
            },
            Payload::ReplicaTask {
                frame: sample_frame(),
                generation: 1,
                replica: 2,
                coordinator: SiteId(1),
                vote: true,
            },
            Payload::ReplicaDone {
                frame: GlobalAddress::new(SiteId(1), 7),
                generation: 1,
                replica: 2,
                ok: true,
                sends: vec![WireSend {
                    target: GlobalAddress::new(SiteId(4), 9),
                    slot: 0,
                    value: Value::from_u64(42),
                }],
                error: String::new(),
            },
            Payload::MetricsSummary {
                summary: WireMetricsSummary {
                    messages_sent: 100,
                    messages_received: 98,
                    frames_executed: 42,
                    frames_retried: 1,
                    frames_quarantined: 0,
                    crashes_declared: 2,
                    help_requests: 7,
                    help_granted: 5,
                    career_sum_us: 123_456,
                    career_buckets: vec![0, 3, 9, 30],
                    help_rtt_sum_us: 9_999,
                    help_rtt_buckets: vec![1, 2],
                },
            },
            Payload::SiteDraining {
                site: SiteId(4),
                incarnation: 3,
            },
            Payload::DeadLetterSweep {
                letters: vec![(sample_frame(), "handler panicked: boom".into())],
            },
            Payload::SnapshotCollectIncremental {
                program: ProgramId(1),
            },
            Payload::Error {
                message: "nope".into(),
            },
            Payload::Ping { token: 99 },
            Payload::Pong { token: 99 },
        ];
        for p in samples {
            rt(p);
        }
    }

    #[test]
    fn tags_are_unique() {
        // Build a few payloads of each family and check tag uniqueness by
        // decoding garbage tags fails.
        assert!(Payload::decode_from_slice(&[200, 1]).is_err());
    }

    #[test]
    fn coord_predicted_rtt_is_distance_plus_heights() {
        let a = WireCoord {
            x: 3.0,
            y: 0.0,
            z: 4.0,
            h: 0.5,
            err: 0.2,
        };
        let b = WireCoord {
            h: 0.25,
            ..WireCoord::origin()
        };
        // |(3,0,4)| = 5, plus both heights.
        assert!((a.predicted_rtt_ms(&b) - 5.75).abs() < 1e-12);
        assert!((b.predicted_rtt_ms(&a) - 5.75).abs() < 1e-12);
    }

    #[test]
    fn name_matches_variant() {
        assert_eq!(Payload::CantHelp {}.name(), "CantHelp");
        assert_eq!(Payload::Ping { token: 0 }.name(), "Ping");
    }
}
