//! The SDMessage envelope (paper §4, message manager).
//!
//! "All communication is done between managers only, so a message contains
//! the source's and the target's site ids and manager ids apart from other
//! administrational information and the payload data itself."

use crate::codec::{Decode, Encode, WireReader, WireWriter};
use crate::payload::Payload;
use sdvm_types::{ManagerId, SdvmResult, SiteId};

/// Wire-format version; bumped on incompatible changes.
///
/// History: v1 = initial format; v2 = `src_incarnation` added to the
/// envelope (zombie fencing) and membership payloads learned incarnation
/// fields. v1 frames are rejected loudly, not decoded best-effort.
pub const WIRE_VERSION: u8 = 2;

/// A manager-to-manager message between sites.
#[derive(Clone, PartialEq, Debug)]
pub struct SdMessage {
    /// Sending site (logical id).
    pub src_site: SiteId,
    /// Incarnation of the sending site (0 = unknown/not yet signed on).
    /// Receivers fence messages whose incarnation is at or below a
    /// recorded death of `src_site` instead of processing them.
    pub src_incarnation: u64,
    /// Sending manager.
    pub src_manager: ManagerId,
    /// Receiving site (logical id).
    pub dst_site: SiteId,
    /// Receiving manager.
    pub dst_manager: ManagerId,
    /// Sender-local sequence number; replies echo it in `in_reply_to` so
    /// blocked requesters can be woken.
    pub seq: u64,
    /// Sequence number of the request this message answers, if any.
    pub in_reply_to: Option<u64>,
    /// The payload.
    pub payload: Payload,
}

impl SdMessage {
    /// Build a fresh (non-reply) message.
    pub fn new(
        src_site: SiteId,
        src_manager: ManagerId,
        dst_site: SiteId,
        dst_manager: ManagerId,
        seq: u64,
        payload: Payload,
    ) -> Self {
        Self {
            src_site,
            src_incarnation: 0,
            src_manager,
            dst_site,
            dst_manager,
            seq,
            in_reply_to: None,
            payload,
        }
    }

    /// Build the reply to `self`, swapping the endpoints and echoing the
    /// sequence number.
    pub fn reply(&self, seq: u64, src_manager: ManagerId, payload: Payload) -> SdMessage {
        SdMessage {
            src_site: self.dst_site,
            src_incarnation: 0,
            src_manager,
            dst_site: self.src_site,
            dst_manager: self.src_manager,
            seq,
            in_reply_to: Some(self.seq),
            payload,
        }
    }

    /// Serialize to bytes (including the version byte).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        self.encode_into(&mut w);
        w.finish()
    }

    /// Serialize (version byte + fields) onto an existing writer: the
    /// zero-copy path, where the writer's buffer already holds the frame
    /// prefix slot and any security-envelope header.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.put_u8(WIRE_VERSION);
        self.encode(w);
    }

    /// Parse from bytes produced by [`SdMessage::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> SdvmResult<Self> {
        let mut r = WireReader::new(buf);
        let ver = r.get_u8()?;
        if ver != WIRE_VERSION {
            return Err(sdvm_types::SdvmError::Decode(format!(
                "wire version {ver}, expected {WIRE_VERSION}"
            )));
        }
        let m = SdMessage::decode(&mut r)?;
        r.expect_end()?;
        Ok(m)
    }
}

impl Encode for SdMessage {
    fn encode(&self, w: &mut WireWriter) {
        self.src_site.encode(w);
        w.put_varint(self.src_incarnation);
        self.src_manager.encode(w);
        self.dst_site.encode(w);
        self.dst_manager.encode(w);
        w.put_varint(self.seq);
        self.in_reply_to.encode(w);
        self.payload.encode(w);
    }
}

impl Decode for SdMessage {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(SdMessage {
            src_site: SiteId::decode(r)?,
            src_incarnation: r.get_varint()?,
            src_manager: ManagerId::decode(r)?,
            dst_site: SiteId::decode(r)?,
            dst_manager: ManagerId::decode(r)?,
            seq: r.get_varint()?,
            in_reply_to: Option::decode(r)?,
            payload: Payload::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdMessage {
        SdMessage::new(
            SiteId(1),
            ManagerId::Scheduling,
            SiteId(2),
            ManagerId::Scheduling,
            7,
            Payload::CantHelp {},
        )
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let back = SdMessage::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn incarnation_survives_roundtrip() {
        let mut m = sample();
        m.src_incarnation = 7;
        let back = SdMessage::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.src_incarnation, 7);
    }

    #[test]
    fn reply_swaps_endpoints_and_links_seq() {
        let m = sample();
        let r = m.reply(99, ManagerId::Scheduling, Payload::Ping { token: 1 });
        assert_eq!(r.src_site, SiteId(2));
        assert_eq!(r.dst_site, SiteId(1));
        assert_eq!(r.dst_manager, ManagerId::Scheduling);
        assert_eq!(r.in_reply_to, Some(7));
        assert_eq!(r.seq, 99);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 99;
        assert!(SdMessage::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(SdMessage::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0xab);
        assert!(SdMessage::from_bytes(&bytes).is_err());
    }
}
