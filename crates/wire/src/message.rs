//! The SDMessage envelope (paper §4, message manager).
//!
//! "All communication is done between managers only, so a message contains
//! the source's and the target's site ids and manager ids apart from other
//! administrational information and the payload data itself."

use crate::codec::{Decode, Encode, WireReader, WireWriter};
use crate::payload::Payload;
use sdvm_types::{ManagerId, SdvmResult, SiteId};

/// Wire-format version; bumped on incompatible changes.
///
/// History: v1 = initial format; v2 = `src_incarnation` added to the
/// envelope (zombie fencing) and membership payloads learned incarnation
/// fields; v3 = causal [`TraceContext`] (origin site + 32-bit trace id)
/// added to the envelope so one microframe's migration is stitchable
/// across sites; v4 = attraction memory v2 — objects carry a monotonic
/// version, `MemRead`/`MemValue` grew a `replica` mode, `MemMissing`
/// carries a forwarding hint, and `ReplicaInvalidate` joined the memory
/// family; v5 = batch-sealed security records — the envelope layer may
/// seal a whole coalesced writer batch under one nonce + MAC (security
/// tag 3). The message encoding itself is unchanged from v4, but the
/// version byte fences mixed clusters: a v4 daemon cannot open batch
/// records, so it must reject v5 traffic loudly rather than drop
/// whole batches on the floor; v6 = replicated/hedged execution —
/// `ProgramRegister` carries the program's `ReplicationPolicy`, and the
/// `ReplicaTask`/`ReplicaDone` payloads carry a replica id + generation
/// so escrow votes and hedge duplicates are fenced per dispatch round.
/// A v5 daemon would treat replica traffic as unknown payloads, so
/// mixed clusters are fenced at the version byte; v7 = ops plane —
/// the `MetricsSummary` payload (per-site counter/histogram digest)
/// piggybacks on heartbeat fan-out so any site can serve cluster-wide
/// rollups. A v6 daemon would reply `Error` to every digest and spam
/// the sender, so mixed clusters are fenced at the version byte;
/// v8 = planned departure — the `SiteDraining` membership gossip, the
/// `DeadLetterSweep` handoff, and the pause-free
/// `SnapshotCollectIncremental` checkpoint round. A v7 daemon would
/// treat the draining gossip as an unknown payload and keep granting
/// help and targeting backup buddies at the leaver, so mixed clusters
/// are fenced at the version byte; v9 = proximity routing — the
/// `Heartbeat`, `ProbeRequest` and `ProbeAck` payloads grew an optional
/// Vivaldi network coordinate (`WireCoord`: 3-D point + height + fit
/// error) piggybacked on traffic that already flows, so sites learn
/// pairwise RTT predictions without extra probes. A v8 daemon would
/// mis-parse the extra option byte in every heartbeat, so mixed
/// clusters are fenced at the version byte.
/// Older frames are rejected loudly, not decoded best-effort.
pub const WIRE_VERSION: u8 = 9;

/// Causal trace context riding every [`SdMessage`] (wire v3).
///
/// Identifies the *logical operation* a message belongs to — typically one
/// microframe's career — so telemetry on different sites can stitch the
/// same operation's spans together without coordination. The id space is
/// partitioned by `origin` (the site that minted the id), so two sites can
/// mint ids concurrently without collision. Encoded as two varints
/// (origin site id, then the 32-bit trace id).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceContext {
    /// Site that minted the trace id (partition of the id space).
    pub origin: SiteId,
    /// Trace id, unique within `origin`. 0 with origin 0 means "none".
    pub id: u32,
}

impl TraceContext {
    /// The absent trace context: untraced administrative traffic.
    pub const NONE: TraceContext = TraceContext {
        origin: SiteId(0),
        id: 0,
    };

    /// Whether this context actually names a trace.
    pub fn is_some(&self) -> bool {
        *self != TraceContext::NONE
    }
}

impl Default for TraceContext {
    fn default() -> Self {
        TraceContext::NONE
    }
}

impl Encode for TraceContext {
    fn encode(&self, w: &mut WireWriter) {
        self.origin.encode(w);
        w.put_varint(self.id as u64);
    }
}

impl Decode for TraceContext {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        let origin = SiteId::decode(r)?;
        let id = r.get_varint()?;
        let id = u32::try_from(id)
            .map_err(|_| sdvm_types::SdvmError::Decode(format!("trace id {id} overflows u32")))?;
        Ok(TraceContext { origin, id })
    }
}

/// A manager-to-manager message between sites.
#[derive(Clone, PartialEq, Debug)]
pub struct SdMessage {
    /// Sending site (logical id).
    pub src_site: SiteId,
    /// Incarnation of the sending site (0 = unknown/not yet signed on).
    /// Receivers fence messages whose incarnation is at or below a
    /// recorded death of `src_site` instead of processing them.
    pub src_incarnation: u64,
    /// Sending manager.
    pub src_manager: ManagerId,
    /// Receiving site (logical id).
    pub dst_site: SiteId,
    /// Receiving manager.
    pub dst_manager: ManagerId,
    /// Sender-local sequence number; replies echo it in `in_reply_to` so
    /// blocked requesters can be woken.
    pub seq: u64,
    /// Sequence number of the request this message answers, if any.
    pub in_reply_to: Option<u64>,
    /// Causal trace context ([`TraceContext::NONE`] for untraced traffic).
    /// Replies inherit the request's context.
    pub trace: TraceContext,
    /// The payload.
    pub payload: Payload,
}

impl SdMessage {
    /// Build a fresh (non-reply) message.
    pub fn new(
        src_site: SiteId,
        src_manager: ManagerId,
        dst_site: SiteId,
        dst_manager: ManagerId,
        seq: u64,
        payload: Payload,
    ) -> Self {
        Self {
            src_site,
            src_incarnation: 0,
            src_manager,
            dst_site,
            dst_manager,
            seq,
            in_reply_to: None,
            trace: TraceContext::NONE,
            payload,
        }
    }

    /// Build the reply to `self`, swapping the endpoints and echoing the
    /// sequence number.
    pub fn reply(&self, seq: u64, src_manager: ManagerId, payload: Payload) -> SdMessage {
        SdMessage {
            src_site: self.dst_site,
            src_incarnation: 0,
            src_manager,
            dst_site: self.src_site,
            dst_manager: self.src_manager,
            seq,
            in_reply_to: Some(self.seq),
            trace: self.trace,
            payload,
        }
    }

    /// Serialize to bytes (including the version byte).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        self.encode_into(&mut w);
        w.finish()
    }

    /// Serialize (version byte + fields) onto an existing writer: the
    /// zero-copy path, where the writer's buffer already holds the frame
    /// prefix slot and any security-envelope header.
    pub fn encode_into(&self, w: &mut WireWriter) {
        w.put_u8(WIRE_VERSION);
        self.encode(w);
    }

    /// Parse from bytes produced by [`SdMessage::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> SdvmResult<Self> {
        let mut r = WireReader::new(buf);
        let ver = r.get_u8()?;
        if ver != WIRE_VERSION {
            return Err(sdvm_types::SdvmError::Decode(format!(
                "wire version {ver}, expected {WIRE_VERSION}"
            )));
        }
        let m = SdMessage::decode(&mut r)?;
        r.expect_end()?;
        Ok(m)
    }
}

impl Encode for SdMessage {
    fn encode(&self, w: &mut WireWriter) {
        self.src_site.encode(w);
        w.put_varint(self.src_incarnation);
        self.src_manager.encode(w);
        self.dst_site.encode(w);
        self.dst_manager.encode(w);
        w.put_varint(self.seq);
        self.in_reply_to.encode(w);
        self.trace.encode(w);
        self.payload.encode(w);
    }
}

impl Decode for SdMessage {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(SdMessage {
            src_site: SiteId::decode(r)?,
            src_incarnation: r.get_varint()?,
            src_manager: ManagerId::decode(r)?,
            dst_site: SiteId::decode(r)?,
            dst_manager: ManagerId::decode(r)?,
            seq: r.get_varint()?,
            in_reply_to: Option::decode(r)?,
            trace: TraceContext::decode(r)?,
            payload: Payload::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SdMessage {
        SdMessage::new(
            SiteId(1),
            ManagerId::Scheduling,
            SiteId(2),
            ManagerId::Scheduling,
            7,
            Payload::CantHelp {},
        )
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let back = SdMessage::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn incarnation_survives_roundtrip() {
        let mut m = sample();
        m.src_incarnation = 7;
        let back = SdMessage::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.src_incarnation, 7);
    }

    #[test]
    fn reply_swaps_endpoints_and_links_seq() {
        let m = sample();
        let r = m.reply(99, ManagerId::Scheduling, Payload::Ping { token: 1 });
        assert_eq!(r.src_site, SiteId(2));
        assert_eq!(r.dst_site, SiteId(1));
        assert_eq!(r.dst_manager, ManagerId::Scheduling);
        assert_eq!(r.in_reply_to, Some(7));
        assert_eq!(r.seq, 99);
    }

    #[test]
    fn trace_context_survives_roundtrip_and_reply() {
        let mut m = sample();
        m.trace = TraceContext {
            origin: SiteId(3),
            id: 0xDEAD,
        };
        let back = SdMessage::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.trace, m.trace);
        // Replies inherit the request's context (causal propagation).
        let r = back.reply(99, ManagerId::Scheduling, Payload::Ping { token: 1 });
        assert_eq!(r.trace, m.trace);
    }

    #[test]
    fn trace_id_overflow_rejected() {
        let mut w = WireWriter::with_capacity(16);
        SiteId(1).encode(&mut w);
        w.put_varint(u64::from(u32::MAX) + 1);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(TraceContext::decode(&mut r).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 99;
        assert!(SdMessage::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(SdMessage::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0xab);
        assert!(SdMessage::from_bytes(&bytes).is_err());
    }
}
