//! A compact, hand-rolled binary codec.
//!
//! Integers use LEB128 varints (most protocol integers are small); floats
//! are fixed 8-byte little-endian; byte strings and collections are
//! length-prefixed; `Option` and enums are tag-prefixed. Decoding is
//! total: any byte sequence either decodes or returns
//! [`SdvmError::Decode`] — it never panics (fuzz-tested below).

use bytes::{Bytes, BytesMut};
use sdvm_types::{
    FileHandle, GlobalAddress, LoadReport, ManagerId, MicrothreadId, PhysicalAddr, PlatformId,
    Priority, ProgramId, QueuePolicy, ReplicaSelector, ReplicationPolicy, SchedulingHint,
    SdvmError, SdvmResult, SiteDescriptor, SiteId, Value,
};

/// Sanity bound on decoded collection lengths: protects against
/// maliciously huge length prefixes (a 5-byte varint can claim 4 GiB).
pub const MAX_COLLECTION_LEN: usize = 16 * 1024 * 1024;

/// Serializer: appends wire-encoded data to a byte buffer.
///
/// Backed by [`BytesMut`] so encoding can continue an existing buffer —
/// the zero-copy message path seeds the buffer with framing and envelope
/// prefixes, encodes the message in place behind them, and freezes the
/// whole thing into one [`Bytes`] without ever re-copying the payload
/// (see [`crate::framing`] and the security manager).
#[derive(Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// A fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Continue writing into an existing buffer (appends after its
    /// current contents).
    pub fn from_buf(buf: BytesMut) -> Self {
        Self { buf }
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        Vec::from(self.buf)
    }

    /// Finish, returning the underlying buffer (prefix bytes from
    /// [`WireWriter::from_buf`] included).
    pub fn into_buf(self) -> BytesMut {
        self.buf
    }

    /// Current encoded length (including any [`WireWriter::from_buf`]
    /// prefix).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Write one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Write a signed integer using zigzag + varint.
    pub fn put_svarint(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Write a fixed 8-byte little-endian float.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Write a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }
}

/// Deserializer: consumes wire-encoded data from a byte slice.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the given slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the whole input was consumed (catches trailing junk).
    pub fn expect_end(&self) -> SdvmResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SdvmError::Decode(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }

    fn take(&mut self, n: usize) -> SdvmResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(SdvmError::Decode(format!(
                "need {n} bytes, only {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> SdvmResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read an unsigned LEB128 varint.
    pub fn get_varint(&mut self) -> SdvmResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift == 63 && byte > 1 {
                return Err(SdvmError::Decode("varint overflows u64".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(SdvmError::Decode("varint too long".into()));
            }
        }
    }

    /// Read a zigzag-encoded signed varint.
    pub fn get_svarint(&mut self) -> SdvmResult<i64> {
        let v = self.get_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Read a fixed 8-byte little-endian float.
    pub fn get_f64(&mut self) -> SdvmResult<f64> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> SdvmResult<&'a [u8]> {
        let len = self.get_varint()? as usize;
        if len > MAX_COLLECTION_LEN {
            return Err(SdvmError::Decode(format!(
                "byte string of {len} exceeds cap"
            )));
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> SdvmResult<&'a str> {
        std::str::from_utf8(self.get_bytes()?).map_err(|e| SdvmError::Decode(format!("utf8: {e}")))
    }

    /// Read a bool byte (strictly 0 or 1).
    pub fn get_bool(&mut self) -> SdvmResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SdvmError::Decode(format!("bool byte {b}"))),
        }
    }

    /// Read a collection length and sanity-check it.
    pub fn get_len(&mut self) -> SdvmResult<usize> {
        let len = self.get_varint()? as usize;
        if len > MAX_COLLECTION_LEN {
            return Err(SdvmError::Decode(format!(
                "collection of {len} exceeds cap"
            )));
        }
        Ok(len)
    }
}

/// Types that can be appended to a [`WireWriter`].
pub trait Encode {
    /// Append the wire encoding of `self`.
    fn encode(&self, w: &mut WireWriter);

    /// Convenience: encode into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish()
    }
}

/// Types that can be parsed from a [`WireReader`].
pub trait Decode: Sized {
    /// Parse one value.
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self>;

    /// Convenience: parse from a slice, requiring full consumption.
    fn decode_from_slice(buf: &[u8]) -> SdvmResult<Self> {
        let mut r = WireReader::new(buf);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

macro_rules! varint_newtype {
    ($t:ty, $inner:ty, $ctor:expr) => {
        impl Encode for $t {
            fn encode(&self, w: &mut WireWriter) {
                w.put_varint(self.0 as u64);
            }
        }
        impl Decode for $t {
            fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
                let v = r.get_varint()?;
                let inner = <$inner>::try_from(v).map_err(|_| {
                    SdvmError::Decode(format!("{} out of range: {v}", stringify!($t)))
                })?;
                Ok($ctor(inner))
            }
        }
    };
}

varint_newtype!(SiteId, u32, SiteId);
varint_newtype!(ProgramId, u32, ProgramId);
varint_newtype!(PlatformId, u16, PlatformId);

impl Encode for u8 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self);
    }
}
impl Decode for u8 {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        r.get_u8()
    }
}

impl Encode for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(u64::from(*self));
    }
}
impl Decode for u32 {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        let v = r.get_varint()?;
        u32::try_from(v).map_err(|_| SdvmError::Decode(format!("u32 out of range: {v}")))
    }
}

impl Encode for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(*self);
    }
}
impl Decode for u64 {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        r.get_varint()
    }
}

impl Encode for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_svarint(*self);
    }
}
impl Decode for i64 {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        r.get_svarint()
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
}
impl Decode for f64 {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        r.get_f64()
    }
}

impl Encode for bool {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bool(*self);
    }
}
impl Decode for bool {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        r.get_bool()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
}
impl Decode for String {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(r.get_str()?.to_owned())
    }
}

impl Encode for Bytes {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(self);
    }
}
impl Decode for Bytes {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(Bytes::copy_from_slice(r.get_bytes()?))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}
impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(SdvmError::Decode(format!("option tag {t}"))),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_varint(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
}
impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        let len = r.get_len()?;
        // Avoid pre-allocating attacker-controlled lengths: grow as we parse.
        let mut out = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut WireWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}
impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl Encode for Value {
    fn encode(&self, w: &mut WireWriter) {
        w.put_bytes(self.bytes());
    }
}
impl Decode for Value {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(Value::from_bytes(Bytes::copy_from_slice(r.get_bytes()?)))
    }
}

impl Encode for GlobalAddress {
    fn encode(&self, w: &mut WireWriter) {
        self.home.encode(w);
        w.put_varint(self.local);
    }
}
impl Decode for GlobalAddress {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(GlobalAddress {
            home: SiteId::decode(r)?,
            local: r.get_varint()?,
        })
    }
}

impl Encode for MicrothreadId {
    fn encode(&self, w: &mut WireWriter) {
        self.program.encode(w);
        self.index.encode(w);
    }
}
impl Decode for MicrothreadId {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(MicrothreadId {
            program: ProgramId::decode(r)?,
            index: u32::decode(r)?,
        })
    }
}

impl Encode for FileHandle {
    fn encode(&self, w: &mut WireWriter) {
        self.site.encode(w);
        self.local.encode(w);
    }
}
impl Decode for FileHandle {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(FileHandle {
            site: SiteId::decode(r)?,
            local: u32::decode(r)?,
        })
    }
}

impl Encode for ManagerId {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(*self as u8);
    }
}
impl Decode for ManagerId {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        let b = r.get_u8()?;
        ManagerId::from_u8(b).ok_or_else(|| SdvmError::Decode(format!("manager id {b}")))
    }
}

impl Encode for PhysicalAddr {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            PhysicalAddr::Mem(n) => {
                w.put_u8(0);
                w.put_varint(*n);
            }
            PhysicalAddr::Tcp(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
        }
    }
}
impl Decode for PhysicalAddr {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        match r.get_u8()? {
            0 => Ok(PhysicalAddr::Mem(r.get_varint()?)),
            1 => Ok(PhysicalAddr::Tcp(r.get_str()?.to_owned())),
            t => Err(SdvmError::Decode(format!("physical addr tag {t}"))),
        }
    }
}

impl Encode for SiteDescriptor {
    fn encode(&self, w: &mut WireWriter) {
        self.site.encode(w);
        self.addr.encode(w);
        self.platform.encode(w);
        w.put_f64(self.speed);
        w.put_bool(self.code_distribution);
        w.put_varint(self.incarnation);
    }
}
impl Decode for SiteDescriptor {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(SiteDescriptor {
            site: SiteId::decode(r)?,
            addr: PhysicalAddr::decode(r)?,
            platform: PlatformId::decode(r)?,
            speed: r.get_f64()?,
            code_distribution: r.get_bool()?,
            incarnation: r.get_varint()?,
        })
    }
}

impl Encode for LoadReport {
    fn encode(&self, w: &mut WireWriter) {
        self.queued_frames.encode(w);
        self.busy_slots.encode(w);
        self.programs.encode(w);
        w.put_varint(self.memory_bytes);
        w.put_varint(self.epoch);
    }
}
impl Decode for LoadReport {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(LoadReport {
            queued_frames: u32::decode(r)?,
            busy_slots: u32::decode(r)?,
            programs: u32::decode(r)?,
            memory_bytes: r.get_varint()?,
            epoch: r.get_varint()?,
        })
    }
}

impl Encode for Priority {
    fn encode(&self, w: &mut WireWriter) {
        w.put_svarint(i64::from(self.0));
    }
}
impl Decode for Priority {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        let v = r.get_svarint()?;
        let v = i32::try_from(v).map_err(|_| SdvmError::Decode(format!("priority {v}")))?;
        Ok(Priority(v))
    }
}

impl Encode for SchedulingHint {
    fn encode(&self, w: &mut WireWriter) {
        self.priority.encode(w);
        w.put_bool(self.sticky);
    }
}
impl Decode for SchedulingHint {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        Ok(SchedulingHint {
            priority: Priority::decode(r)?,
            sticky: r.get_bool()?,
        })
    }
}

impl Encode for QueuePolicy {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self {
            QueuePolicy::Fifo => 0,
            QueuePolicy::Lifo => 1,
            QueuePolicy::Priority => 2,
        });
    }
}
impl Decode for QueuePolicy {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        match r.get_u8()? {
            0 => Ok(QueuePolicy::Fifo),
            1 => Ok(QueuePolicy::Lifo),
            2 => Ok(QueuePolicy::Priority),
            t => Err(SdvmError::Decode(format!("queue policy tag {t}"))),
        }
    }
}

impl Encode for ReplicaSelector {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ReplicaSelector::All => w.put_u8(0),
            ReplicaSelector::Thread(t) => {
                w.put_u8(1);
                w.put_varint(u64::from(*t));
            }
        }
    }
}
impl Decode for ReplicaSelector {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        match r.get_u8()? {
            0 => Ok(ReplicaSelector::All),
            1 => Ok(ReplicaSelector::Thread(u32::decode(r)?)),
            t => Err(SdvmError::Decode(format!("replica selector tag {t}"))),
        }
    }
}

impl Encode for ReplicationPolicy {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ReplicationPolicy::Off => w.put_u8(0),
            ReplicationPolicy::Replicate { k, selector } => {
                w.put_u8(1);
                w.put_u8(*k);
                selector.encode(w);
            }
            ReplicationPolicy::Hedge { delay, selector } => {
                w.put_u8(2);
                w.put_varint(delay.as_micros() as u64);
                selector.encode(w);
            }
        }
    }
}
impl Decode for ReplicationPolicy {
    fn decode(r: &mut WireReader<'_>) -> SdvmResult<Self> {
        match r.get_u8()? {
            0 => Ok(ReplicationPolicy::Off),
            1 => Ok(ReplicationPolicy::Replicate {
                k: r.get_u8()?,
                selector: ReplicaSelector::decode(r)?,
            }),
            2 => Ok(ReplicationPolicy::Hedge {
                delay: std::time::Duration::from_micros(r.get_varint()?),
                selector: ReplicaSelector::decode(r)?,
            }),
            t => Err(SdvmError::Decode(format!("replication policy tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encode_to_vec();
        let back = T::decode_from_slice(&bytes).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn varint_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut w = WireWriter::new();
            w.put_varint(v);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_varint().unwrap(), v);
            r.expect_end().unwrap();
        }
    }

    #[test]
    fn svarint_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut w = WireWriter::new();
            w.put_svarint(v);
            let bytes = w.finish();
            let mut r = WireReader::new(&bytes);
            assert_eq!(r.get_svarint().unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 10 bytes of continuation describes > 64 bits.
        let bad = [0xffu8; 10];
        let mut r = WireReader::new(&bad);
        assert!(r.get_varint().is_err());
    }

    #[test]
    fn truncated_inputs_error() {
        let mut w = WireWriter::new();
        w.put_str("hello");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(r.get_str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn roundtrip_core_types() {
        roundtrip(SiteId(42));
        roundtrip(ProgramId(7));
        roundtrip(PlatformId(3));
        roundtrip(GlobalAddress::new(SiteId(2), 99));
        roundtrip(MicrothreadId::new(ProgramId(1), 5));
        roundtrip(FileHandle {
            site: SiteId(1),
            local: 3,
        });
        roundtrip(ManagerId::Scheduling);
        roundtrip(PhysicalAddr::Mem(17));
        roundtrip(PhysicalAddr::Tcp("10.0.0.1:4444".into()));
        roundtrip(Priority(-3));
        roundtrip(SchedulingHint {
            priority: Priority(9),
            sticky: true,
        });
        roundtrip(QueuePolicy::Lifo);
        roundtrip(ReplicationPolicy::Off);
        roundtrip(ReplicationPolicy::Replicate {
            k: 3,
            selector: ReplicaSelector::Thread(2),
        });
        roundtrip(ReplicationPolicy::Hedge {
            delay: std::time::Duration::from_micros(12_345),
            selector: ReplicaSelector::All,
        });
        roundtrip(Value::from_u64_slice(&[1, 2, 3]));
        roundtrip(Some(SiteId(1)));
        roundtrip(Option::<SiteId>::None);
        roundtrip(vec![
            GlobalAddress::new(SiteId(1), 1),
            GlobalAddress::new(SiteId(2), 2),
        ]);
        roundtrip((SiteId(1), 77u64));
    }

    #[test]
    fn roundtrip_descriptor_and_load() {
        roundtrip(SiteDescriptor {
            site: SiteId(4),
            addr: PhysicalAddr::Tcp("h:1".into()),
            platform: PlatformId(2),
            speed: 1.5,
            code_distribution: true,
            incarnation: 6,
        });
        roundtrip(LoadReport {
            queued_frames: 3,
            busy_slots: 2,
            programs: 1,
            memory_bytes: 4096,
            epoch: 12,
        });
    }

    #[test]
    fn huge_length_prefix_rejected() {
        let mut w = WireWriter::new();
        w.put_varint(u64::MAX / 2); // absurd collection length
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_len().is_err());
        let mut r2 = WireReader::new(&bytes);
        assert!(r2.get_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = SiteId(1).encode_to_vec();
        bytes.push(0);
        assert!(SiteId::decode_from_slice(&bytes).is_err());
    }

    #[test]
    fn decode_never_panics_on_noise() {
        // Fuzz-ish: deterministic pseudo-random byte soup must decode or
        // error, never panic.
        let mut state = 0x9e3779b97f4a7c15u64;
        for len in 0..200usize {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (state >> 33) as u8;
            }
            let _ = SiteDescriptor::decode_from_slice(&buf);
            let _ = LoadReport::decode_from_slice(&buf);
            let _ = Vec::<GlobalAddress>::decode_from_slice(&buf);
            let _ = String::decode_from_slice(&buf);
        }
    }
}
