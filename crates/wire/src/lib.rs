//! The SDVM wire format.
//!
//! All inter-site communication is manager-to-manager *SDMessages* (paper
//! §4, Fig. 6): a message carries source/target site ids and manager ids,
//! administrational data (sequence numbers for request/response
//! correlation) and a typed payload. This crate defines
//!
//! - a small binary codec ([`codec`]: LEB128 varints, length-prefixed
//!   byte strings, tagged options/enums),
//! - the [`SdMessage`] envelope and every protocol [`Payload`],
//! - the serialized form of a microframe ([`WireFrame`]) used for help
//!   replies, relocation and checkpoints,
//! - stream framing for the TCP transport ([`framing`]).
//!
//! The format is deliberately hand-rolled (no serde): the SDMessage format
//! is itself part of the system under reproduction, and the codec is
//! exercised by unit, property and fuzz-style tests below.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod framing;
pub mod message;
pub mod payload;

pub use codec::{Decode, Encode, WireReader, WireWriter};
pub use framing::{
    begin_frame, finish_frame, frame_bytes, read_frame, write_frame, FrameRead, FrameReader,
    FRAME_PREFIX_LEN, MAX_FRAME_LEN,
};
pub use message::{SdMessage, TraceContext, WIRE_VERSION};
pub use payload::{Payload, WireCoord, WireFrame, WireMemObject, WireMetricsSummary, WireSend};
