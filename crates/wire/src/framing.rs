//! Length-prefixed stream framing for the TCP transport.
//!
//! The paper's network manager exchanges serialized SDMessages over TCP;
//! we delimit them with a 4-byte big-endian length prefix. The same
//! framing is reused by the checkpoint store when snapshots are written to
//! disk.

use sdvm_types::{SdvmError, SdvmResult};
use std::io::{Read, Write};

/// Upper bound on a single frame; anything larger is a protocol error
/// (prevents a bad peer from making us allocate unboundedly).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> SdvmResult<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(SdvmError::Transport(format!("frame of {} exceeds cap", body.len())));
    }
    let len = (body.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary; errors on mid-frame EOF.
pub fn read_frame<R: Read>(r: &mut R) -> SdvmResult<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                let m = r.read(&mut len_buf[n..])?;
                if m == 0 {
                    return Err(SdvmError::Transport("eof inside frame length".into()));
                }
                n += m;
            }
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(SdvmError::Transport(format!("incoming frame of {len} exceeds cap")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut c).unwrap(), None);
    }

    #[test]
    fn eof_inside_frame_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn eof_inside_length_is_error() {
        let mut c = Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn oversize_frame_rejected_both_ways() {
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut sink, &huge).is_err());

        let mut bad = Vec::new();
        bad.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut c = Cursor::new(bad);
        assert!(read_frame(&mut c).is_err());
    }
}
