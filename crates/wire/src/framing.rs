//! Length-prefixed stream framing for the TCP transport.
//!
//! The paper's network manager exchanges serialized SDMessages over TCP;
//! we delimit them with a 4-byte big-endian length prefix. The same
//! framing is reused by the checkpoint store when snapshots are written to
//! disk.
//!
//! Two styles coexist:
//!
//! - [`write_frame`]/[`read_frame`]: synchronous whole-frame I/O against
//!   a `Read`/`Write` (checkpoint files, simple tools).
//! - [`finish_frame`]/[`frame_bytes`] + [`FrameReader`]: the transport's
//!   zero-copy path. A sender builds the frame *including* its length
//!   prefix in one [`BytesMut`] and ships the frozen [`Bytes`];
//!   a receiver drives a [`FrameReader`], which survives read timeouts
//!   mid-frame (a plain `read_exact` would lose its position and
//!   desynchronize the stream on the next call).

use bytes::{Bytes, BytesMut};
use sdvm_types::{SdvmError, SdvmResult};
use std::io::{ErrorKind, Read, Write};

/// Upper bound on a single frame; anything larger is a protocol error
/// (prevents a bad peer from making us allocate unboundedly).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Size of the frame length prefix.
pub const FRAME_PREFIX_LEN: usize = 4;

/// Start a frame buffer: the length-prefix slot followed by nothing.
/// Append the body, then call [`finish_frame`].
pub fn begin_frame(capacity_hint: usize) -> BytesMut {
    let mut buf = BytesMut::with_capacity(FRAME_PREFIX_LEN + capacity_hint);
    buf.resize(FRAME_PREFIX_LEN, 0);
    buf
}

/// Patch the length prefix of a buffer started with [`begin_frame`] and
/// freeze it into an immutable frame ready for `Transport::send`.
pub fn finish_frame(mut buf: BytesMut) -> SdvmResult<Bytes> {
    let body_len = buf
        .len()
        .checked_sub(FRAME_PREFIX_LEN)
        .expect("finish_frame on a buffer without a prefix slot");
    if body_len > MAX_FRAME_LEN {
        return Err(SdvmError::Transport(format!(
            "frame of {body_len} exceeds cap"
        )));
    }
    buf[..FRAME_PREFIX_LEN].copy_from_slice(&(body_len as u32).to_be_bytes());
    Ok(buf.freeze())
}

/// Build a complete frame (prefix + body) from a body slice: the
/// one-copy convenience for callers that already hold the body.
pub fn frame_bytes(body: &[u8]) -> SdvmResult<Bytes> {
    let mut buf = begin_frame(body.len());
    buf.extend_from_slice(body);
    finish_frame(buf)
}

/// Outcome of one [`FrameReader::read_frame`] call.
#[derive(Debug)]
pub enum FrameRead {
    /// One complete frame body (length prefix stripped).
    Frame(Bytes),
    /// Clean EOF at a frame boundary.
    Eof,
    /// The read timed out (or would block); partial progress is kept.
    /// Call again with the same reader to continue the frame.
    Pending,
}

/// Incremental frame decoder that is safe to drive over a socket with a
/// read timeout: a timeout mid-frame yields [`FrameRead::Pending`] with
/// all partial progress retained, instead of corrupting stream position.
#[derive(Default)]
pub struct FrameReader {
    len_buf: [u8; FRAME_PREFIX_LEN],
    len_got: usize,
    /// `Some` once the length prefix is complete and the body is being
    /// accumulated.
    body: Option<BodyProgress>,
}

struct BodyProgress {
    buf: BytesMut,
    got: usize,
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while a frame is partially read (EOF now would be an error).
    pub fn mid_frame(&self) -> bool {
        self.len_got > 0 || self.body.is_some()
    }

    /// Advance by reading from `r` until a frame completes, EOF, or the
    /// reader's timeout fires.
    pub fn read_frame<R: Read>(&mut self, r: &mut R) -> SdvmResult<FrameRead> {
        while self.body.is_none() {
            match r.read(&mut self.len_buf[self.len_got..]) {
                Ok(0) => {
                    return if self.len_got == 0 {
                        Ok(FrameRead::Eof)
                    } else {
                        Err(SdvmError::Transport("eof inside frame length".into()))
                    };
                }
                Ok(n) => {
                    self.len_got += n;
                    if self.len_got == FRAME_PREFIX_LEN {
                        let len = u32::from_be_bytes(self.len_buf) as usize;
                        if len > MAX_FRAME_LEN {
                            return Err(SdvmError::Transport(format!(
                                "incoming frame of {len} exceeds cap"
                            )));
                        }
                        let mut buf = BytesMut::with_capacity(len);
                        buf.resize(len, 0);
                        self.body = Some(BodyProgress { buf, got: 0 });
                    }
                }
                Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(ref e) if is_timeout(e) => return Ok(FrameRead::Pending),
                Err(e) => return Err(e.into()),
            }
        }
        let body = self.body.as_mut().expect("body in progress");
        while body.got < body.buf.len() {
            match r.read(&mut body.buf[body.got..]) {
                Ok(0) => return Err(SdvmError::Transport("eof inside frame body".into())),
                Ok(n) => body.got += n,
                Err(ref e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(ref e) if is_timeout(e) => return Ok(FrameRead::Pending),
                Err(e) => return Err(e.into()),
            }
        }
        let done = self.body.take().expect("body complete");
        self.len_got = 0;
        Ok(FrameRead::Frame(done.buf.freeze()))
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Write one length-prefixed frame.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> SdvmResult<()> {
    if body.len() > MAX_FRAME_LEN {
        return Err(SdvmError::Transport(format!(
            "frame of {} exceeds cap",
            body.len()
        )));
    }
    let len = (body.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Read one length-prefixed frame. Returns `Ok(None)` on clean EOF at a
/// frame boundary; errors on mid-frame EOF.
pub fn read_frame<R: Read>(r: &mut R) -> SdvmResult<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                let m = r.read(&mut len_buf[n..])?;
                if m == 0 {
                    return Err(SdvmError::Transport("eof inside frame length".into()));
                }
                n += m;
            }
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(SdvmError::Transport(format!(
            "incoming frame of {len} exceeds cap"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[7u8; 1000]).unwrap();
        let mut c = Cursor::new(buf);
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut c).unwrap().unwrap(), vec![7u8; 1000]);
        assert_eq!(read_frame(&mut c).unwrap(), None);
    }

    #[test]
    fn eof_inside_frame_is_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let mut c = Cursor::new(buf);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn eof_inside_length_is_error() {
        let mut c = Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn oversize_frame_rejected_both_ways() {
        let mut sink = Vec::new();
        let huge = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(write_frame(&mut sink, &huge).is_err());

        let mut bad = Vec::new();
        bad.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut c = Cursor::new(bad);
        assert!(read_frame(&mut c).is_err());
    }

    #[test]
    fn finish_frame_matches_write_frame() {
        for body in [&b""[..], b"x", &[7u8; 1000]] {
            let mut via_io = Vec::new();
            write_frame(&mut via_io, body).unwrap();
            assert_eq!(frame_bytes(body).unwrap(), via_io);

            let mut buf = begin_frame(body.len());
            buf.extend_from_slice(body);
            assert_eq!(finish_frame(buf).unwrap(), via_io);
        }
    }

    #[test]
    fn finish_frame_rejects_oversize() {
        let mut buf = begin_frame(0);
        buf.resize(FRAME_PREFIX_LEN + MAX_FRAME_LEN + 1, 0);
        assert!(finish_frame(buf).is_err());
    }

    /// A reader that delivers its data in tiny chunks, injecting a
    /// timeout error between every chunk — the worst case the TCP
    /// read-timeout can produce.
    struct ChoppyReader {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        ready: bool,
    }

    impl Read for ChoppyReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "not yet",
                ));
            }
            self.ready = false;
            let n = self.chunk.min(out.len()).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        // The regression this guards: a timeout inside read_exact used to
        // lose the partial frame, so the next read parsed a length word
        // from the middle of the stream and desynchronized forever.
        let mut stream = Vec::new();
        write_frame(&mut stream, b"first message").unwrap();
        write_frame(&mut stream, &[0xcd; 300]).unwrap();
        write_frame(&mut stream, b"").unwrap();
        for chunk in [1, 2, 3, 7] {
            let mut r = ChoppyReader {
                data: stream.clone(),
                pos: 0,
                chunk,
                ready: false,
            };
            let mut fr = FrameReader::new();
            let mut frames = Vec::new();
            let mut pendings = 0u32;
            loop {
                match fr.read_frame(&mut r).unwrap() {
                    FrameRead::Frame(f) => frames.push(f),
                    FrameRead::Pending => pendings += 1,
                    FrameRead::Eof => break,
                }
            }
            assert_eq!(frames.len(), 3, "chunk {chunk}");
            assert_eq!(frames[0], b"first message"[..]);
            assert_eq!(frames[1], [0xcd; 300][..]);
            assert_eq!(frames[2], b""[..]);
            assert!(pendings > 0, "test must actually exercise Pending");
        }
    }

    /// A reader that delivers exactly `split` bytes, injects one
    /// `WouldBlock`, then delivers the rest — one precise readiness
    /// boundary, placed anywhere in the stream.
    struct SplitReader {
        data: Vec<u8>,
        pos: usize,
        split: usize,
        blocked: bool,
    }

    impl Read for SplitReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            let limit = if !self.blocked {
                if self.pos == self.split {
                    self.blocked = true;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "boundary",
                    ));
                }
                self.split
            } else {
                self.data.len()
            };
            let n = out.len().min(limit - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn frame_reader_resumes_at_every_byte_boundary() {
        // The driver's readiness loop can hand the reader a WouldBlock
        // at *any* byte of a sealed batch record — including inside the
        // 4-byte length prefix. Reassembly must be byte-exact wherever
        // the boundary lands. The body imitates a drain-time batch
        // record (tag | dst | count | (len | record)*), the largest
        // frame shape the transport produces.
        let mut body = vec![2u8];
        body.extend_from_slice(&9u32.to_le_bytes());
        body.extend_from_slice(&3u32.to_le_bytes());
        for rec in [&b"alpha"[..], &[0xEE; 40][..], &b""[..]] {
            body.extend_from_slice(&(rec.len() as u32).to_le_bytes());
            body.extend_from_slice(rec);
        }
        let mut stream = Vec::new();
        write_frame(&mut stream, &body).unwrap();

        for split in 0..=stream.len() {
            let mut r = SplitReader {
                data: stream.clone(),
                pos: 0,
                split,
                blocked: false,
            };
            let mut fr = FrameReader::new();
            let mut frames = Vec::new();
            let mut pendings = 0u32;
            loop {
                match fr.read_frame(&mut r).unwrap() {
                    FrameRead::Frame(f) => frames.push(f),
                    FrameRead::Pending => pendings += 1,
                    FrameRead::Eof => break,
                }
            }
            assert_eq!(frames.len(), 1, "split at byte {split}");
            assert_eq!(frames[0], body[..], "split at byte {split}");
            assert_eq!(pendings, 1, "split at byte {split} must block once");
            assert!(!fr.mid_frame(), "split at byte {split} left state behind");
        }
    }

    #[test]
    fn frame_reader_split_length_prefix_keeps_count() {
        // Stronger check for boundaries *inside* the prefix: after a
        // resume that began mid-prefix, the parsed length must still be
        // the original one (no re-read of already-consumed bytes).
        let mut stream = Vec::new();
        write_frame(&mut stream, &[0xAB; 513]).unwrap();
        write_frame(&mut stream, b"tail").unwrap();
        for split in 1..FRAME_PREFIX_LEN {
            let mut r = SplitReader {
                data: stream.clone(),
                pos: 0,
                split,
                blocked: false,
            };
            let mut fr = FrameReader::new();
            assert!(
                matches!(fr.read_frame(&mut r).unwrap(), FrameRead::Pending),
                "split {split}"
            );
            assert!(fr.mid_frame(), "split {split} should be mid-prefix");
            match fr.read_frame(&mut r).unwrap() {
                FrameRead::Frame(f) => assert_eq!(f, [0xAB; 513][..], "split {split}"),
                other => panic!("split {split}: expected frame, got {other:?}"),
            }
            match fr.read_frame(&mut r).unwrap() {
                FrameRead::Frame(f) => assert_eq!(f, b"tail"[..], "split {split}"),
                other => panic!("split {split}: expected tail frame, got {other:?}"),
            }
            assert!(matches!(fr.read_frame(&mut r).unwrap(), FrameRead::Eof));
        }
    }

    #[test]
    fn frame_reader_mid_frame_eof_is_error() {
        let mut stream = Vec::new();
        write_frame(&mut stream, b"cut short").unwrap();
        stream.truncate(stream.len() - 3);
        let mut c = Cursor::new(stream);
        let mut fr = FrameReader::new();
        assert!(!fr.mid_frame());
        assert!(fr.read_frame(&mut c).is_err());
    }

    #[test]
    fn frame_reader_rejects_oversize_length() {
        let mut c = Cursor::new((u32::MAX).to_be_bytes().to_vec());
        assert!(FrameReader::new().read_frame(&mut c).is_err());
    }
}
