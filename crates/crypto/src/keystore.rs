//! Per-peer key management for the security manager.
//!
//! "It has to maintain a list of known communication partners with their
//! respective keys, and obviously a first contact must be made in a secure
//! way, e.g. by supplying a start password by hand." (paper §4)
//!
//! All sites of a cluster share the start password; pairwise *directed*
//! traffic keys are derived from it, so the keystore needs no handshake
//! messages — matching the paper's pre-shared-secret bootstrap.

use crate::channel::SecureChannel;
use crate::kdf::{master_key, traffic_key};
use crate::CryptoError;
use std::collections::HashMap;

/// Keys and live channels of one site towards all its peers.
pub struct KeyStore {
    master: [u8; 32],
    local: u32,
    /// Sender channel per peer (our outgoing nonce counters).
    send: HashMap<u32, SecureChannel>,
    /// Receiver channel per peer (their nonce horizon).
    recv: HashMap<u32, SecureChannel>,
}

impl KeyStore {
    /// Build a keystore for logical site `local` from the cluster's start
    /// password.
    pub fn from_password(local: u32, password: &str) -> Self {
        Self {
            master: master_key(password),
            local,
            send: HashMap::new(),
            recv: HashMap::new(),
        }
    }

    /// Build from a precomputed master key (lets a cluster spawner derive
    /// the password hash once instead of per site).
    pub fn from_master(local: u32, master: [u8; 32]) -> Self {
        Self {
            master,
            local,
            send: HashMap::new(),
            recv: HashMap::new(),
        }
    }

    /// Re-key the keystore for a (newly assigned) logical id. Called when
    /// sign-on replaces the provisional id; drops all channel state.
    pub fn rekey(&mut self, local: u32) {
        self.local = local;
        self.send.clear();
        self.recv.clear();
    }

    /// Seal a message for `peer`. Returns the sealed record as
    /// [`bytes::Bytes`] (sealed in place and frozen, no trailing copy).
    pub fn seal_for(&mut self, peer: u32, plaintext: &[u8]) -> bytes::Bytes {
        self.sender_for(peer).seal(plaintext)
    }

    /// Seal for `peer` in place; see [`SecureChannel::seal_in_place`] for
    /// the buffer contract (`buf[start..start+8]` is the nonce slot).
    pub fn seal_for_in_place(&mut self, peer: u32, buf: &mut bytes::BytesMut, start: usize) {
        self.sender_for(peer).seal_in_place(buf, start)
    }

    fn sender_for(&mut self, peer: u32) -> &mut SecureChannel {
        let (master, local) = (self.master, self.local);
        self.send
            .entry(peer)
            .or_insert_with(|| SecureChannel::new(&traffic_key(&master, local, peer)))
    }

    /// Open a message received from `peer`.
    pub fn open_from(&mut self, peer: u32, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        self.receiver_for(peer).open(sealed)
    }

    /// Open a record from `peer` in place; see
    /// [`SecureChannel::open_in_place`] for the buffer contract and the
    /// returned plaintext range.
    pub fn open_from_in_place(
        &mut self,
        peer: u32,
        buf: &mut [u8],
        start: usize,
    ) -> Result<std::ops::Range<usize>, CryptoError> {
        self.receiver_for(peer).open_in_place(buf, start)
    }

    fn receiver_for(&mut self, peer: u32) -> &mut SecureChannel {
        let (master, local) = (self.master, self.local);
        self.recv
            .entry(peer)
            .or_insert_with(|| SecureChannel::new(&traffic_key(&master, peer, local)))
    }

    /// Forget a peer's channels (it signed off or crashed; if it returns
    /// it will be re-keyed with fresh counters under a new logical id).
    pub fn forget(&mut self, peer: u32) {
        self.send.remove(&peer);
        self.recv.remove(&peer);
    }

    /// Number of peers with live channel state.
    pub fn peer_count(&self) -> usize {
        let mut peers: Vec<u32> = self.send.keys().copied().collect();
        peers.extend(self.recv.keys());
        peers.sort_unstable();
        peers.dedup();
        peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sites_communicate() {
        let mut a = KeyStore::from_password(1, "pw");
        let mut b = KeyStore::from_password(2, "pw");
        let sealed = a.seal_for(2, b"hello from 1");
        assert_eq!(b.open_from(1, &sealed).unwrap(), b"hello from 1");
        let sealed2 = b.seal_for(1, b"hello from 2");
        assert_eq!(a.open_from(2, &sealed2).unwrap(), b"hello from 2");
    }

    #[test]
    fn wrong_password_fails() {
        let mut a = KeyStore::from_password(1, "pw");
        let mut b = KeyStore::from_password(2, "other");
        let sealed = a.seal_for(2, b"hi");
        assert!(b.open_from(1, &sealed).is_err());
    }

    #[test]
    fn direction_matters() {
        let mut a = KeyStore::from_password(1, "pw");
        let mut b = KeyStore::from_password(2, "pw");
        let sealed = a.seal_for(2, b"hi");
        // Site 2 trying to open it as if 2 had sent it to 1 must fail.
        let mut a2 = KeyStore::from_password(1, "pw");
        assert!(a2.open_from(2, &sealed).is_err());
        assert!(b.open_from(1, &sealed).is_ok());
    }

    #[test]
    fn many_peers_independent_counters() {
        let mut hub = KeyStore::from_password(1, "pw");
        let mut peers: Vec<KeyStore> = (2..6).map(|i| KeyStore::from_password(i, "pw")).collect();
        for round in 0..3 {
            for (i, p) in peers.iter_mut().enumerate() {
                let peer_id = (i + 2) as u32;
                let msg = format!("round {round} to {peer_id}");
                let sealed = hub.seal_for(peer_id, msg.as_bytes());
                assert_eq!(p.open_from(1, &sealed).unwrap(), msg.as_bytes());
            }
        }
        assert_eq!(hub.peer_count(), 4);
    }

    #[test]
    fn forget_resets_replay_horizon() {
        let mut a = KeyStore::from_password(1, "pw");
        let mut b = KeyStore::from_password(2, "pw");
        let s1 = a.seal_for(2, b"one");
        b.open_from(1, &s1).unwrap();
        // Replay now fails...
        assert!(b.open_from(1, &s1).is_err());
        // ...but after forgetting the peer (sign-off + re-join semantics),
        // a *fresh sender* starting at nonce 1 is accepted again.
        b.forget(1);
        let mut a_fresh = KeyStore::from_password(1, "pw");
        let s2 = a_fresh.seal_for(2, b"fresh");
        assert_eq!(b.open_from(1, &s2).unwrap(), b"fresh");
    }

    #[test]
    fn from_master_matches_from_password() {
        let m = master_key("pw");
        let mut a = KeyStore::from_master(1, m);
        let mut b = KeyStore::from_password(2, "pw");
        let sealed = a.seal_for(2, b"x");
        assert!(b.open_from(1, &sealed).is_ok());
    }
}
