//! HMAC-SHA-256 (RFC 2104), validated against RFC 4231 test vectors.
//!
//! Hot-path layout: [`HmacKey`] absorbs the ipad and opad blocks once
//! at key-schedule time and keeps the two SHA-256 midstates. Each MAC
//! then starts by cloning ~100 bytes of state instead of re-running
//! two compressions — a short-message MAC costs exactly its message
//! compressions plus the one outer compression.

use crate::sha256::{sha256, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// A prepared HMAC-SHA-256 key: the ipad/opad midstates, computed once.
/// Build per channel, then mint cheap [`HmacSha256`] instances from it.
#[derive(Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl HmacKey {
    /// Derive the midstates from `key` (any length; hashed down if > 64).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            k[..DIGEST_LEN].copy_from_slice(&sha256(key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Start an incremental MAC from the midstates (no compressions).
    pub fn mac(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// One-shot MAC of `data` from the midstates.
    pub fn mac_of(&self, data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut m = self.mac();
        m.update(data);
        m.finalize()
    }
}

/// Incremental HMAC-SHA-256.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Start a MAC keyed with `key` (any length; hashed down if > 64).
    /// For repeated MACs under one key, build an [`HmacKey`] instead.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).mac()
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(data);
    h.finalize()
}

/// Constant-time comparison of two byte slices.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases 1, 2, 3, 6 (6 exercises key > block size).
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            hex(&hmac_sha256(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex(&hmac_sha256(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        assert_eq!(
            hex(&hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    // A reused HmacKey must produce the same tags as fresh HmacSha256
    // instances: the midstate schedule is an optimization, not a
    // different function.
    #[test]
    fn midstate_reuse_matches_fresh_keying() {
        let key = b"a moderately long shared traffic key";
        let schedule = HmacKey::new(key);
        for len in [0usize, 1, 31, 64, 65, 200, 1000] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 13 % 251) as u8).collect();
            assert_eq!(schedule.mac_of(&data), hmac_sha256(key, &data), "len {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"key";
        let mut h = HmacSha256::new(key);
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), hmac_sha256(key, b"part one part two"));
    }

    #[test]
    fn ct_eq_behaviour() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }
}
