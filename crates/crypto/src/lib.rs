//! Security-manager substrate for the SDVM.
//!
//! The paper (§4) places a *security manager* between the message manager
//! and the network manager: it encrypts all outgoing and decrypts all
//! incoming traffic, keyed per communication partner, bootstrapped from a
//! *start password* supplied by hand. It can be disabled on trusted
//! (insular) clusters in favor of a performance gain — measured in
//! experiment E5 (`crypto_overhead`).
//!
//! Everything here is implemented from scratch (no external crypto crates
//! are in the approved dependency list) and validated against published
//! test vectors:
//!
//! - [`sha256`] — FIPS 180-4 SHA-256,
//! - [`hmac`] — RFC 2104 HMAC-SHA-256 (RFC 4231 vectors),
//! - [`chacha`] — RFC 8439 ChaCha20 stream cipher,
//! - [`kdf`] — HKDF-style key derivation (extract/expand),
//! - [`channel`] — an encrypt-then-MAC [`SecureChannel`] with strictly
//!   monotone nonces (replay protection),
//! - [`keystore`] — per-peer channel management from one cluster password.
//!
//! This is a faithful *instance* of what the paper requires, not an
//! audited security product.

// `deny`, not `forbid`: the one sanctioned exception is the SHA-NI
// compress in `sha256::ni`, a module that only compiles when the CPU
// features it needs are statically enabled and whose single `unsafe`
// block is the feature-gated intrinsic call. Everything else stays
// unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha;
pub mod channel;
pub mod hmac;
pub mod kdf;
pub mod keystore;
pub mod sha256;

pub use chacha::ChaChaKey;
pub use channel::{SecureChannel, NONCE_PREFIX_LEN, SEAL_OVERHEAD, TAG_LEN};
pub use hmac::HmacKey;
pub use keystore::KeyStore;

/// Errors produced by the crypto layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Message authentication failed (corrupt or forged).
    BadTag,
    /// Nonce not strictly greater than the last accepted one (replay).
    Replay {
        /// Nonce carried by the rejected message.
        got: u64,
        /// Highest nonce accepted so far.
        last: u64,
    },
    /// Ciphertext too short to contain nonce and tag.
    Truncated,
}

impl std::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CryptoError::BadTag => write!(f, "message authentication failed"),
            CryptoError::Replay { got, last } => {
                write!(f, "replayed nonce {got} (last accepted {last})")
            }
            CryptoError::Truncated => write!(f, "ciphertext truncated"),
        }
    }
}

impl std::error::Error for CryptoError {}
