//! A directed secure channel: encrypt-then-MAC with monotone nonces.
//!
//! Wire layout of a sealed message:
//!
//! ```text
//! [ nonce: 8 bytes LE counter | ciphertext | tag: 16 bytes ]
//! ```
//!
//! The nonce counter makes each keystream unique and doubles as replay
//! protection: the receiver only accepts strictly increasing nonces.
//! (SDVM transports are ordered — TCP or the in-memory channel — so
//! strict monotonicity does not drop legitimate traffic.)

use crate::chacha::{chacha20_xor, KEY_LEN, NONCE_LEN};
use crate::hmac::{ct_eq, HmacSha256};
use crate::CryptoError;

/// Truncated HMAC tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Nonce prefix length in bytes.
pub const NONCE_PREFIX_LEN: usize = 8;

/// One direction of a secure peer link. The sender half allocates nonces;
/// the receiver half verifies and tracks the replay horizon. A full link
/// is a pair of channels with keys derived per direction (see
/// [`crate::keystore::KeyStore`]).
pub struct SecureChannel {
    enc_key: [u8; KEY_LEN],
    mac_key: [u8; KEY_LEN],
    next_send: u64,
    last_recv: u64,
}

impl SecureChannel {
    /// Build from a 32-byte traffic key; encryption and MAC subkeys are
    /// split off internally.
    pub fn new(traffic_key: &[u8; 32]) -> Self {
        let mut enc_key = [0u8; KEY_LEN];
        let mut mac_key = [0u8; KEY_LEN];
        crate::kdf::expand(traffic_key, b"enc", &mut enc_key);
        crate::kdf::expand(traffic_key, b"mac", &mut mac_key);
        Self { enc_key, mac_key, next_send: 1, last_recv: 0 }
    }

    fn nonce_bytes(counter: u64) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        n[..8].copy_from_slice(&counter.to_le_bytes());
        n
    }

    /// Encrypt and authenticate `plaintext`.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let counter = self.next_send;
        self.next_send += 1;
        let nonce = Self::nonce_bytes(counter);
        let mut out = Vec::with_capacity(NONCE_PREFIX_LEN + plaintext.len() + TAG_LEN);
        out.extend_from_slice(&counter.to_le_bytes());
        out.extend_from_slice(plaintext);
        chacha20_xor(&self.enc_key, &nonce, 1, &mut out[NONCE_PREFIX_LEN..]);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(&out);
        let tag = mac.finalize();
        out.extend_from_slice(&tag[..TAG_LEN]);
        out
    }

    /// Verify and decrypt a sealed message. Rejects forgeries and replays.
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        if sealed.len() < NONCE_PREFIX_LEN + TAG_LEN {
            return Err(CryptoError::Truncated);
        }
        let (body, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let mut mac = HmacSha256::new(&self.mac_key);
        mac.update(body);
        let expect = mac.finalize();
        if !ct_eq(&expect[..TAG_LEN], tag) {
            return Err(CryptoError::BadTag);
        }
        let counter = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        if counter <= self.last_recv {
            return Err(CryptoError::Replay { got: counter, last: self.last_recv });
        }
        self.last_recv = counter;
        let nonce = Self::nonce_bytes(counter);
        let mut plain = body[NONCE_PREFIX_LEN..].to_vec();
        chacha20_xor(&self.enc_key, &nonce, 1, &mut plain);
        Ok(plain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let key = [42u8; 32];
        (SecureChannel::new(&key), SecureChannel::new(&key))
    }

    #[test]
    fn seal_open_roundtrip() {
        let (mut tx, mut rx) = pair();
        for msg in [&b""[..], b"x", b"hello world", &[0u8; 5000]] {
            let sealed = tx.seal(msg);
            assert_eq!(rx.open(&sealed).unwrap(), msg);
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (mut tx, _) = pair();
        let sealed = tx.seal(b"secret data here");
        assert!(!sealed.windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn tamper_detected() {
        let (mut tx, mut rx) = pair();
        let mut sealed = tx.seal(b"important");
        for i in 0..sealed.len() {
            let mut copy = sealed.clone();
            copy[i] ^= 1;
            assert_eq!(rx.open(&copy), Err(CryptoError::BadTag), "byte {i}");
        }
        // Untampered still works afterwards.
        assert_eq!(rx.open(&sealed).unwrap(), b"important");
        sealed.clear();
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"once");
        assert!(rx.open(&sealed).is_ok());
        assert!(matches!(rx.open(&sealed), Err(CryptoError::Replay { .. })));
    }

    #[test]
    fn old_message_after_newer_rejected() {
        let (mut tx, mut rx) = pair();
        let first = tx.seal(b"first");
        let second = tx.seal(b"second");
        assert!(rx.open(&second).is_ok());
        assert!(matches!(rx.open(&first), Err(CryptoError::Replay { .. })));
    }

    #[test]
    fn truncated_rejected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"msg");
        assert_eq!(rx.open(&sealed[..10]), Err(CryptoError::Truncated));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut tx = SecureChannel::new(&[1u8; 32]);
        let mut rx = SecureChannel::new(&[2u8; 32]);
        assert_eq!(rx.open(&tx.seal(b"hi")), Err(CryptoError::BadTag));
    }

    #[test]
    fn nonces_are_unique_per_message() {
        let (mut tx, _) = pair();
        let a = tx.seal(b"same");
        let b = tx.seal(b"same");
        assert_ne!(a, b, "same plaintext must never seal identically");
    }
}
