//! A directed secure channel: encrypt-then-MAC with monotone nonces.
//!
//! Wire layout of a sealed message:
//!
//! ```text
//! [ nonce: 8 bytes LE counter | ciphertext | tag: 16 bytes ]
//! ```
//!
//! The nonce counter makes each keystream unique and doubles as replay
//! protection: the receiver tracks a sliding window (RFC 2401 style) of
//! the last [`REPLAY_WINDOW`] counters, accepting each exactly once.
//! A window — rather than strict monotonicity — is required because
//! sealing and enqueueing onto the transport are not one atomic step:
//! two site threads can seal in one order and enqueue in the other, so
//! slightly out-of-order arrival is legitimate traffic, while an exact
//! duplicate (a replay, or a frame resent by a transport-level
//! reconnect) must still be dropped.

use crate::chacha::{ChaChaKey, KEY_LEN, NONCE_LEN};
use crate::hmac::{ct_eq, HmacKey};
use crate::CryptoError;
use bytes::{Bytes, BytesMut};
use std::ops::Range;

/// Truncated HMAC tag length in bytes.
pub const TAG_LEN: usize = 16;
/// Nonce prefix length in bytes.
pub const NONCE_PREFIX_LEN: usize = 8;
/// Bytes added by sealing: nonce prefix up front, tag at the end.
pub const SEAL_OVERHEAD: usize = NONCE_PREFIX_LEN + TAG_LEN;
/// How far behind the newest accepted counter a message may arrive and
/// still be accepted (once). Anything older is rejected as a replay.
pub const REPLAY_WINDOW: u64 = 64;

/// One direction of a secure peer link. The sender half allocates nonces;
/// the receiver half verifies and tracks the replay horizon. A full link
/// is a pair of channels with keys derived per direction (see
/// [`crate::keystore::KeyStore`]).
pub struct SecureChannel {
    /// Encryption key with its state words pre-parsed.
    enc_key: ChaChaKey,
    /// MAC key with its ipad/opad midstates precomputed: each seal/open
    /// pays only the message compressions plus one outer compression.
    mac_key: HmacKey,
    next_send: u64,
    /// Highest counter accepted so far.
    recv_horizon: u64,
    /// Bitmask over the window below the horizon: bit `d` set means
    /// counter `recv_horizon - d` was already accepted.
    recv_seen: u64,
}

impl SecureChannel {
    /// Build from a 32-byte traffic key; encryption and MAC subkeys are
    /// split off internally.
    pub fn new(traffic_key: &[u8; 32]) -> Self {
        let mut enc_key = [0u8; KEY_LEN];
        let mut mac_key = [0u8; KEY_LEN];
        crate::kdf::expand(traffic_key, b"enc", &mut enc_key);
        crate::kdf::expand(traffic_key, b"mac", &mut mac_key);
        Self {
            enc_key: ChaChaKey::new(&enc_key),
            mac_key: HmacKey::new(&mac_key),
            next_send: 1,
            recv_horizon: 0,
            recv_seen: 0,
        }
    }

    /// Accept `counter` exactly once within the sliding window.
    fn check_replay(&mut self, counter: u64) -> Result<(), CryptoError> {
        if counter > self.recv_horizon {
            let ahead = counter - self.recv_horizon;
            self.recv_seen = if ahead >= REPLAY_WINDOW {
                1
            } else {
                (self.recv_seen << ahead) | 1
            };
            self.recv_horizon = counter;
            return Ok(());
        }
        let behind = self.recv_horizon - counter;
        if counter == 0 || behind >= REPLAY_WINDOW || (self.recv_seen >> behind) & 1 == 1 {
            return Err(CryptoError::Replay {
                got: counter,
                last: self.recv_horizon,
            });
        }
        self.recv_seen |= 1 << behind;
        Ok(())
    }

    fn nonce_bytes(counter: u64) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        n[..8].copy_from_slice(&counter.to_le_bytes());
        n
    }

    /// Encrypt and authenticate `plaintext`. The sealed record is
    /// returned as [`Bytes`] — the buffer sealed in place and frozen,
    /// with no trailing copy.
    pub fn seal(&mut self, plaintext: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(SEAL_OVERHEAD + plaintext.len());
        buf.resize(NONCE_PREFIX_LEN, 0);
        buf.extend_from_slice(plaintext);
        self.seal_in_place(&mut buf, 0);
        buf.freeze()
    }

    /// Seal a message already laid out in `buf` without moving it.
    ///
    /// The caller must have reserved [`NONCE_PREFIX_LEN`] zero bytes at
    /// `buf[start..start + NONCE_PREFIX_LEN]`; the plaintext follows
    /// through `buf.len()`. On return the slot holds the nonce, the
    /// plaintext is encrypted in place, and the tag is appended —
    /// producing exactly the [`SecureChannel::seal`] wire layout while
    /// letting framing and envelope headers before `start` share the
    /// allocation.
    pub fn seal_in_place(&mut self, buf: &mut BytesMut, start: usize) {
        let counter = self.next_send;
        self.next_send += 1;
        let nonce = Self::nonce_bytes(counter);
        buf[start..start + NONCE_PREFIX_LEN].copy_from_slice(&counter.to_le_bytes());
        self.enc_key
            .xor(&nonce, 1, &mut buf[start + NONCE_PREFIX_LEN..]);
        let tag = self.mac_key.mac_of(&buf[start..]);
        buf.extend_from_slice(&tag[..TAG_LEN]);
    }

    /// Verify and decrypt the sealed record at `buf[start..]` without
    /// copying. On success the tag is verified, the plaintext is
    /// decrypted in place, and its range within `buf` is returned
    /// (`start + NONCE_PREFIX_LEN .. buf.len() - TAG_LEN`). On error the
    /// buffer is left ciphertext — nothing before the MAC check writes.
    pub fn open_in_place(
        &mut self,
        buf: &mut [u8],
        start: usize,
    ) -> Result<Range<usize>, CryptoError> {
        if buf.len() < start + NONCE_PREFIX_LEN + TAG_LEN {
            return Err(CryptoError::Truncated);
        }
        let tag_at = buf.len() - TAG_LEN;
        let (body, tag) = buf[start..].split_at(tag_at - start);
        let expect = self.mac_key.mac_of(body);
        if !ct_eq(&expect[..TAG_LEN], tag) {
            return Err(CryptoError::BadTag);
        }
        let counter = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        self.check_replay(counter)?;
        let nonce = Self::nonce_bytes(counter);
        self.enc_key
            .xor(&nonce, 1, &mut buf[start + NONCE_PREFIX_LEN..tag_at]);
        Ok(start + NONCE_PREFIX_LEN..tag_at)
    }

    /// Verify and decrypt a sealed message. Rejects forgeries and replays.
    /// Copying convenience over [`SecureChannel::open_in_place`].
    pub fn open(&mut self, sealed: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut buf = sealed.to_vec();
        let plain = self.open_in_place(&mut buf, 0)?;
        buf.truncate(plain.end);
        buf.drain(..plain.start);
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let key = [42u8; 32];
        (SecureChannel::new(&key), SecureChannel::new(&key))
    }

    #[test]
    fn seal_open_roundtrip() {
        let (mut tx, mut rx) = pair();
        for msg in [&b""[..], b"x", b"hello world", &[0u8; 5000]] {
            let sealed = tx.seal(msg);
            assert_eq!(rx.open(&sealed).unwrap(), msg);
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (mut tx, _) = pair();
        let sealed = tx.seal(b"secret data here");
        assert!(!sealed.windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn tamper_detected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"important").to_vec();
        for i in 0..sealed.len() {
            let mut copy = sealed.clone();
            copy[i] ^= 1;
            assert_eq!(rx.open(&copy), Err(CryptoError::BadTag), "byte {i}");
        }
        // Untampered still works afterwards.
        assert_eq!(rx.open(&sealed).unwrap(), b"important");
    }

    #[test]
    fn open_in_place_decrypts_within_buffer() {
        let (mut tx, mut rx) = pair();
        let plain = b"in-place opened payload";
        let header = b"HDR!";
        let mut buf = header.to_vec();
        buf.extend_from_slice(&tx.seal(plain));
        let range = rx.open_in_place(&mut buf, header.len()).unwrap();
        assert_eq!(&buf[range.clone()], plain);
        assert_eq!(&buf[..header.len()], header, "header untouched");
        assert_eq!(range.start, header.len() + NONCE_PREFIX_LEN);
        assert_eq!(range.end, buf.len() - TAG_LEN);
    }

    #[test]
    fn open_in_place_rejects_tamper_and_replay() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"x");
        let mut bad = sealed.to_vec();
        bad[NONCE_PREFIX_LEN] ^= 1;
        assert_eq!(rx.open_in_place(&mut bad, 0), Err(CryptoError::BadTag));
        let mut ok = sealed.to_vec();
        assert!(rx.open_in_place(&mut ok, 0).is_ok());
        let mut again = sealed.to_vec();
        assert!(matches!(
            rx.open_in_place(&mut again, 0),
            Err(CryptoError::Replay { .. })
        ));
    }

    #[test]
    fn replay_rejected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"once");
        assert!(rx.open(&sealed).is_ok());
        assert!(matches!(rx.open(&sealed), Err(CryptoError::Replay { .. })));
    }

    #[test]
    fn out_of_order_within_window_accepted_once() {
        // Sealing and transport enqueueing are not atomic, so slightly
        // out-of-order arrival is legitimate — but only once each.
        let (mut tx, mut rx) = pair();
        let first = tx.seal(b"first");
        let second = tx.seal(b"second");
        assert!(rx.open(&second).is_ok());
        assert_eq!(rx.open(&first).unwrap(), b"first");
        assert!(matches!(rx.open(&first), Err(CryptoError::Replay { .. })));
        assert!(matches!(rx.open(&second), Err(CryptoError::Replay { .. })));
    }

    #[test]
    fn messages_older_than_window_rejected() {
        let (mut tx, mut rx) = pair();
        let oldest = tx.seal(b"too old");
        let sealed: Vec<_> = (0..REPLAY_WINDOW).map(|_| tx.seal(b"fill")).collect();
        assert!(rx.open(sealed.last().unwrap()).is_ok());
        // `oldest` has counter 1; horizon is now REPLAY_WINDOW + 1.
        assert!(matches!(rx.open(&oldest), Err(CryptoError::Replay { .. })));
        // Unseen messages still inside the window are fine.
        assert!(rx.open(&sealed[sealed.len() - 2]).is_ok());
    }

    #[test]
    fn truncated_rejected() {
        let (mut tx, mut rx) = pair();
        let sealed = tx.seal(b"msg");
        assert_eq!(rx.open(&sealed[..10]), Err(CryptoError::Truncated));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut tx = SecureChannel::new(&[1u8; 32]);
        let mut rx = SecureChannel::new(&[2u8; 32]);
        assert_eq!(rx.open(&tx.seal(b"hi")), Err(CryptoError::BadTag));
    }

    #[test]
    fn seal_in_place_matches_seal_layout() {
        let (mut tx_place, mut rx) = pair();
        let (mut tx_vec, _) = pair();
        let plain = b"in-place sealed payload";
        // Lay out [header | nonce slot | plaintext] in one buffer.
        let header = b"HDR!";
        let mut buf = BytesMut::new();
        buf.extend_from_slice(header);
        buf.resize(header.len() + NONCE_PREFIX_LEN, 0);
        buf.extend_from_slice(plain);
        tx_place.seal_in_place(&mut buf, header.len());
        assert_eq!(&buf[..header.len()], header, "header untouched");
        assert_eq!(
            buf[header.len()..],
            tx_vec.seal(plain)[..],
            "same wire layout"
        );
        assert_eq!(rx.open(&buf[header.len()..]).unwrap(), plain);
    }

    #[test]
    fn nonces_are_unique_per_message() {
        let (mut tx, _) = pair();
        let a = tx.seal(b"same");
        let b = tx.seal(b"same");
        assert_ne!(a, b, "same plaintext must never seal identically");
    }
}
