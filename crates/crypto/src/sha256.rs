//! SHA-256 (FIPS 180-4), implemented from scratch.

/// Digest length in bytes.
pub const DIGEST_LEN: usize = 32;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            state: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let block: &[u8; 64] = block.try_into().expect("64 bytes");
            self.compress(block);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_padding(bit_len);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn update_padding(&mut self, bit_len: u64) {
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Bytes of padding needed so that (total + pad + 8) % 64 == 0.
        let rem = (self.buf_len + 1 + 8) % 64;
        let zeros = if rem == 0 { 0 } else { 64 - rem };
        let pad_len = 1 + zeros + 8;
        pad[1 + zeros..pad_len].copy_from_slice(&bit_len.to_be_bytes());
        // Temporarily stop counting length — padding is not input.
        let save = self.total_len;
        self.update(&pad[..pad_len]);
        self.total_len = save;
        debug_assert_eq!(self.buf_len, 0);
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(all(
            target_arch = "x86_64",
            target_feature = "sha",
            target_feature = "ssse3",
            target_feature = "sse4.1"
        ))]
        {
            ni::compress(&mut self.state, block)
        }
        #[cfg(not(all(
            target_arch = "x86_64",
            target_feature = "sha",
            target_feature = "ssse3",
            target_feature = "sse4.1"
        )))]
        {
            compress_scalar(&mut self.state, block)
        }
    }
}

// Portable compress: eight rounds unrolled per iteration with the
// working variables rotated by argument position instead of register
// shuffling, and the message schedule kept as a rolling 16-word ring
// expanded on the fly. Compared to the naive rotate-all-eight-registers
// loop this removes seven moves per round and the 64-word schedule
// array, which matters because HMAC over a typical sealed record costs
// ~6 compressions and dominates the seal path. Also the reference the
// SHA-NI path is cross-checked against, hence not dead code on builds
// where the hardware path takes over.
#[cfg_attr(
    all(
        target_arch = "x86_64",
        target_feature = "sha",
        target_feature = "ssse3",
        target_feature = "sse4.1"
    ),
    allow(dead_code)
)]
fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    macro_rules! round {
        ($a:ident,$b:ident,$c:ident,$d:ident,$e:ident,$f:ident,$g:ident,$h:ident,$kw:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h.wrapping_add(s1).wrapping_add(ch).wrapping_add($kw);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        }};
    }
    /// Expand the next schedule word in the 16-word ring.
    #[inline(always)]
    fn sig(w: &mut [u32; 16], i: usize) -> u32 {
        let w15 = w[(i + 1) & 15];
        let w2 = w[(i + 14) & 15];
        let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
        let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
        w[i & 15] = w[i & 15]
            .wrapping_add(s0)
            .wrapping_add(w[(i + 9) & 15])
            .wrapping_add(s1);
        w[i & 15]
    }

    let mut w = [0u32; 16];
    for i in 0..16 {
        w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    let mut t = 0usize;
    while t < 64 {
        if t < 16 {
            round!(a, b, c, d, e, f, g, h, K[t].wrapping_add(w[t]));
            round!(h, a, b, c, d, e, f, g, K[t + 1].wrapping_add(w[t + 1]));
            round!(g, h, a, b, c, d, e, f, K[t + 2].wrapping_add(w[t + 2]));
            round!(f, g, h, a, b, c, d, e, K[t + 3].wrapping_add(w[t + 3]));
            round!(e, f, g, h, a, b, c, d, K[t + 4].wrapping_add(w[t + 4]));
            round!(d, e, f, g, h, a, b, c, K[t + 5].wrapping_add(w[t + 5]));
            round!(c, d, e, f, g, h, a, b, K[t + 6].wrapping_add(w[t + 6]));
            round!(b, c, d, e, f, g, h, a, K[t + 7].wrapping_add(w[t + 7]));
        } else {
            round!(a, b, c, d, e, f, g, h, K[t].wrapping_add(sig(&mut w, t)));
            round!(
                h,
                a,
                b,
                c,
                d,
                e,
                f,
                g,
                K[t + 1].wrapping_add(sig(&mut w, t + 1))
            );
            round!(
                g,
                h,
                a,
                b,
                c,
                d,
                e,
                f,
                K[t + 2].wrapping_add(sig(&mut w, t + 2))
            );
            round!(
                f,
                g,
                h,
                a,
                b,
                c,
                d,
                e,
                K[t + 3].wrapping_add(sig(&mut w, t + 3))
            );
            round!(
                e,
                f,
                g,
                h,
                a,
                b,
                c,
                d,
                K[t + 4].wrapping_add(sig(&mut w, t + 4))
            );
            round!(
                d,
                e,
                f,
                g,
                h,
                a,
                b,
                c,
                K[t + 5].wrapping_add(sig(&mut w, t + 5))
            );
            round!(
                c,
                d,
                e,
                f,
                g,
                h,
                a,
                b,
                K[t + 6].wrapping_add(sig(&mut w, t + 6))
            );
            round!(
                b,
                c,
                d,
                e,
                f,
                g,
                h,
                a,
                K[t + 7].wrapping_add(sig(&mut w, t + 7))
            );
        }
        t += 8;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Hardware SHA-256 compress via the x86 SHA extensions, ~8× the
/// scalar compress. Only compiled when every instruction it emits is
/// statically guaranteed available (e.g. `-C target-cpu=native` on a
/// CPU with SHA-NI), which is what makes the single `unsafe` call
/// below sound — there is no runtime-dispatch path to a machine
/// without the feature.
#[cfg(all(
    target_arch = "x86_64",
    target_feature = "sha",
    target_feature = "ssse3",
    target_feature = "sse4.1"
))]
mod ni {
    #![allow(unsafe_code)]

    use super::K;
    use core::arch::x86_64::*;

    pub(super) fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        // SAFETY: the module-level cfg guarantees sha/ssse3/sse4.1
        // (and sse2, implied by x86_64) are enabled for the whole
        // compilation, so the target-feature precondition always holds.
        unsafe { compress_ni(state, block) }
    }

    #[inline]
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    fn k4(i: usize) -> __m128i {
        _mm_set_epi32(
            K[i + 3] as i32,
            K[i + 2] as i32,
            K[i + 1] as i32,
            K[i] as i32,
        )
    }

    /// 16 message bytes as big-endian u32s, low schedule word in the
    /// low lane.
    #[inline]
    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    fn load_be(block: &[u8; 64], i: usize) -> __m128i {
        let w0 = u32::from_be_bytes(block[i..i + 4].try_into().expect("4 bytes"));
        let w1 = u32::from_be_bytes(block[i + 4..i + 8].try_into().expect("4 bytes"));
        let w2 = u32::from_be_bytes(block[i + 8..i + 12].try_into().expect("4 bytes"));
        let w3 = u32::from_be_bytes(block[i + 12..i + 16].try_into().expect("4 bytes"));
        _mm_set_epi32(w3 as i32, w2 as i32, w1 as i32, w0 as i32)
    }

    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    fn compress_ni(state: &mut [u32; 8], block: &[u8; 64]) {
        // sha256rnds2 wants the state packed as {A,B,E,F} / {C,D,G,H}.
        let abef = _mm_set_epi32(
            state[0] as i32,
            state[1] as i32,
            state[4] as i32,
            state[5] as i32,
        );
        let cdgh = _mm_set_epi32(
            state[2] as i32,
            state[3] as i32,
            state[6] as i32,
            state[7] as i32,
        );
        let (mut s0, mut s1) = (abef, cdgh);

        let mut m0 = load_be(block, 0);
        let mut m1 = load_be(block, 16);
        let mut m2 = load_be(block, 32);
        let mut m3 = load_be(block, 48);

        // Four rounds: two sha256rnds2, fed the low then high halves of
        // the schedule+K quad.
        macro_rules! rounds4 {
            ($m:expr, $i:expr) => {{
                let msg = _mm_add_epi32($m, k4($i));
                s1 = _mm_sha256rnds2_epu32(s1, s0, msg);
                let msg_hi = _mm_shuffle_epi32(msg, 0x0E);
                s0 = _mm_sha256rnds2_epu32(s0, s1, msg_hi);
            }};
        }
        // One schedule step: m0 <- sigma1/sigma0 expansion of the last
        // 16 words (msg1 handles sigma0, the alignr adds w[t-7], msg2
        // handles sigma1).
        macro_rules! schedule {
            ($m0:ident, $m1:ident, $m2:ident, $m3:ident) => {{
                let tmp = _mm_alignr_epi8($m3, $m2, 4);
                let x = _mm_sha256msg1_epu32($m0, $m1);
                let x = _mm_add_epi32(x, tmp);
                $m0 = _mm_sha256msg2_epu32(x, $m3);
            }};
        }

        rounds4!(m0, 0);
        rounds4!(m1, 4);
        rounds4!(m2, 8);
        rounds4!(m3, 12);
        for r in 1..4 {
            schedule!(m0, m1, m2, m3);
            rounds4!(m0, r * 16);
            schedule!(m1, m2, m3, m0);
            rounds4!(m1, r * 16 + 4);
            schedule!(m2, m3, m0, m1);
            rounds4!(m2, r * 16 + 8);
            schedule!(m3, m0, m1, m2);
            rounds4!(m3, r * 16 + 12);
        }

        let s0 = _mm_add_epi32(s0, abef);
        let s1 = _mm_add_epi32(s1, cdgh);
        state[0] = _mm_extract_epi32(s0, 3) as u32;
        state[1] = _mm_extract_epi32(s0, 2) as u32;
        state[4] = _mm_extract_epi32(s0, 1) as u32;
        state[5] = _mm_extract_epi32(s0, 0) as u32;
        state[2] = _mm_extract_epi32(s1, 3) as u32;
        state[3] = _mm_extract_epi32(s1, 2) as u32;
        state[6] = _mm_extract_epi32(s1, 1) as u32;
        state[7] = _mm_extract_epi32(s1, 0) as u32;
    }
}

/// One-shot convenience.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-4 / NIST example vectors.
    #[test]
    fn nist_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    // NIST FIPS 180-4 long-message vector: the 896-bit (112-byte)
    // two-block message. Exercises the multi-block compress loop and the
    // padding split across a block boundary.
    #[test]
    fn nist_long_message_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(msg.len(), 112);
        assert_eq!(
            hex(&sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    // NIST long-message vector: one million 'a' bytes.
    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 10_000];
        for _ in 0..100 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split {split}");
        }
    }

    // When the SHA-NI path is compiled in, it must agree with the
    // portable compress on chained pseudo-random blocks (the NIST
    // vectors above already pin both paths to the standard; this pins
    // them to each other on arbitrary input).
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "sha",
        target_feature = "ssse3",
        target_feature = "sse4.1"
    ))]
    #[test]
    fn ni_matches_scalar_compress() {
        let mut ni_state = H0;
        let mut scalar_state = H0;
        let mut block = [0u8; 64];
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..200 {
            for b in block.iter_mut() {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                *b = (x >> 56) as u8;
            }
            super::ni::compress(&mut ni_state, &block);
            compress_scalar(&mut scalar_state, &block);
            assert_eq!(ni_state, scalar_state);
        }
    }

    #[test]
    fn boundary_lengths() {
        // Around the 55/56/64-byte padding boundaries every length must
        // produce a distinct valid digest (smoke-check for padding logic).
        let mut digests = std::collections::HashSet::new();
        for len in 0..130usize {
            let data = vec![0x5au8; len];
            assert!(digests.insert(sha256(&data)), "collision at length {len}");
        }
    }
}
