//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574]; // "expand 32-byte k"

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    let mut work = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut work, 0, 4, 8, 12);
        quarter_round(&mut work, 1, 5, 9, 13);
        quarter_round(&mut work, 2, 6, 10, 14);
        quarter_round(&mut work, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut work, 0, 5, 10, 15);
        quarter_round(&mut work, 1, 6, 11, 12);
        quarter_round(&mut work, 2, 7, 8, 13);
        quarter_round(&mut work, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let v = work[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream for (`key`, `nonce`)
/// starting at block `counter`. Applying twice decrypts.
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = chacha20_block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex_to_bytes("000000090000004a00000000").try_into().unwrap();
        let block = chacha20_block(&key, 1, &nonce);
        let expected = hex_to_bytes(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    // RFC 8439 §2.4.2 encryption test vector.
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex_to_bytes("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        chacha20_xor(&key, &nonce, 1, &mut data);
        let expected = hex_to_bytes(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut data = original.clone();
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, &[0u8; 12], 0, &mut a);
        chacha20_xor(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_input_ok() {
        let mut data: Vec<u8> = vec![];
        chacha20_xor(&[0u8; 32], &[0u8; 12], 0, &mut data);
        assert!(data.is_empty());
    }
}
