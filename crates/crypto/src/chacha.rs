//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! Hot-path layout: the key is parsed into `u32` state words once per
//! channel ([`ChaChaKey`]), the keystream is generated four blocks at a
//! time with the four lanes interleaved word-wise (so the quarter
//! rounds vectorize across lanes, or failing that schedule as four
//! independent dependency chains), and the XOR onto the data is
//! applied over `u64` words instead of byte-by-byte. Inputs shorter
//! than 256 bytes fall back to single word-form blocks — a 64-byte
//! message never pays for four.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574]; // "expand 32-byte k"

/// How many blocks the wide keystream path generates per call.
const LANES: usize = 4;

/// A ChaCha20 key with its eight state words pre-parsed. Build once per
/// channel, reuse for every message.
#[derive(Clone)]
pub struct ChaChaKey {
    words: [u32; 8],
}

impl ChaChaKey {
    /// Parse the 32-byte key into state words (done once, not per block).
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut words = [0u32; 8];
        for (i, w) in words.iter_mut().enumerate() {
            *w = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        ChaChaKey { words }
    }

    /// The initial state for (`nonce`, `counter`).
    fn state(&self, nonce: &[u8; NONCE_LEN], counter: u32) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.words);
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] =
                u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        state
    }

    /// XOR `data` in place with the keystream for (`nonce`, `counter`).
    /// Applying twice decrypts.
    pub fn xor(&self, nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
        let mut state = self.state(nonce, counter);
        // Wide path: four blocks of keystream per iteration.
        let mut quads = data.chunks_exact_mut(64 * LANES);
        let mut wide = [0u32; 16 * LANES];
        for quad in quads.by_ref() {
            four_blocks(&state, &mut wide);
            for (i, block) in quad.chunks_exact_mut(64).enumerate() {
                let words: &[u32; 16] = wide[i * 16..(i + 1) * 16]
                    .try_into()
                    .expect("16 words per block");
                xor_words(block, words);
            }
            state[12] = state[12].wrapping_add(LANES as u32);
        }
        // Tail: whole single blocks, then a partial one.
        let rest = quads.into_remainder();
        if rest.is_empty() {
            return;
        }
        let mut one = [0u32; 16];
        let mut blocks = rest.chunks_exact_mut(64);
        for block in blocks.by_ref() {
            one_block(&state, &mut one);
            xor_words(block, &one);
            state[12] = state[12].wrapping_add(1);
        }
        let tail = blocks.into_remainder();
        if !tail.is_empty() {
            one_block(&state, &mut one);
            for (i, b) in tail.iter_mut().enumerate() {
                *b ^= (one[i / 4] >> (8 * (i % 4))) as u8;
            }
        }
    }
}

/// One quarter round applied to all four lanes of a word position. The
/// whole 8-op chain runs per lane inside a single loop: each lane's
/// chain is independent, so the four iterations either vectorize into
/// 128-bit adds/xors/rotates (with AVX available) or schedule as four
/// interleaved scalar dependency chains — both beat the op-at-a-time
/// formulation, which LLVM leaves as one long serial chain.
#[inline(always)]
fn quarter_round_wide(x: &mut [[u32; LANES]; 16], ai: usize, bi: usize, ci: usize, di: usize) {
    let (mut a, mut b, mut c, mut d) = (x[ai], x[bi], x[ci], x[di]);
    for l in 0..LANES {
        a[l] = a[l].wrapping_add(b[l]);
        d[l] = (d[l] ^ a[l]).rotate_left(16);
        c[l] = c[l].wrapping_add(d[l]);
        b[l] = (b[l] ^ c[l]).rotate_left(12);
        a[l] = a[l].wrapping_add(b[l]);
        d[l] = (d[l] ^ a[l]).rotate_left(8);
        c[l] = c[l].wrapping_add(d[l]);
        b[l] = (b[l] ^ c[l]).rotate_left(7);
    }
    x[ai] = a;
    x[bi] = b;
    x[ci] = c;
    x[di] = d;
}

/// Generate four consecutive keystream blocks (counters
/// `state[12] .. state[12]+3`) as words, block-major in `out`.
fn four_blocks(state: &[u32; 16], out: &mut [u32; 16 * LANES]) {
    // lanes[word][lane]: the same word position across the four blocks,
    // adjacent in memory so the round ops vectorize across lanes.
    let mut lanes = [[0u32; LANES]; 16];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = [state[i]; LANES];
    }
    for (l, ctr) in lanes[12].iter_mut().enumerate() {
        *ctr = state[12].wrapping_add(l as u32);
    }
    for _ in 0..10 {
        // Column rounds.
        quarter_round_wide(&mut lanes, 0, 4, 8, 12);
        quarter_round_wide(&mut lanes, 1, 5, 9, 13);
        quarter_round_wide(&mut lanes, 2, 6, 10, 14);
        quarter_round_wide(&mut lanes, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round_wide(&mut lanes, 0, 5, 10, 15);
        quarter_round_wide(&mut lanes, 1, 6, 11, 12);
        quarter_round_wide(&mut lanes, 2, 7, 8, 13);
        quarter_round_wide(&mut lanes, 3, 4, 9, 14);
    }
    for (i, lane) in lanes.iter().enumerate() {
        for l in 0..LANES {
            let init = if i == 12 {
                state[12].wrapping_add(l as u32)
            } else {
                state[i]
            };
            out[l * 16 + i] = lane[l].wrapping_add(init);
        }
    }
}

/// Generate one keystream block for `state` as words.
fn one_block(state: &[u32; 16], out: &mut [u32; 16]) {
    let mut work = *state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut work, 0, 4, 8, 12);
        quarter_round(&mut work, 1, 5, 9, 13);
        quarter_round(&mut work, 2, 6, 10, 14);
        quarter_round(&mut work, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut work, 0, 5, 10, 15);
        quarter_round(&mut work, 1, 6, 11, 12);
        quarter_round(&mut work, 2, 7, 8, 13);
        quarter_round(&mut work, 3, 4, 9, 14);
    }
    for (o, (w, s)) in out.iter_mut().zip(work.iter().zip(state.iter())) {
        *o = w.wrapping_add(*s);
    }
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// XOR one full 64-byte block with its keystream words, eight bytes at
/// a time. Keystream words are little-endian on the wire, so pairing
/// `ks[2i] | ks[2i+1] << 32` matches the byte layout exactly.
#[inline(always)]
fn xor_words(block: &mut [u8], ks: &[u32; 16]) {
    debug_assert_eq!(block.len(), 64);
    for (chunk, pair) in block.chunks_exact_mut(8).zip(ks.chunks_exact(2)) {
        let k = (pair[0] as u64) | ((pair[1] as u64) << 32);
        let d = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        chunk.copy_from_slice(&(d ^ k).to_le_bytes());
    }
}

/// One keystream block in byte form (the RFC 8439 §2.3 block function).
/// Test/vector use; the data path stays in word form.
pub fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let state = ChaChaKey::new(key).state(nonce, counter);
    let mut words = [0u32; 16];
    one_block(&state, &mut words);
    let mut out = [0u8; 64];
    for (i, w) in words.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// XOR `data` in place with the ChaCha20 keystream for (`key`, `nonce`)
/// starting at block `counter`. Applying twice decrypts.
pub fn chacha20_xor(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    ChaChaKey::new(key).xor(nonce, counter, data);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 8439 §2.3.2 block function test vector.
    #[test]
    fn rfc8439_block() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex_to_bytes("000000090000004a00000000").try_into().unwrap();
        let block = chacha20_block(&key, 1, &nonce);
        let expected = hex_to_bytes(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(block.to_vec(), expected);
    }

    // RFC 8439 §2.4.2 encryption test vector (114 bytes: exercises one
    // full block + partial tail through the narrow path).
    #[test]
    fn rfc8439_encrypt() {
        let key: [u8; 32] = (0u8..32).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex_to_bytes("000000000000004a00000000").try_into().unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        chacha20_xor(&key, &nonce, 1, &mut data);
        let expected = hex_to_bytes(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    // RFC 8439 A.2 test vector #2 (375 bytes: exercises the four-block
    // wide path, a full single block, and a partial tail in one input).
    #[test]
    fn rfc8439_a2_multiblock() {
        let mut key = [0u8; 32];
        key[31] = 1;
        let nonce: [u8; 12] = hex_to_bytes("000000000000000000000002").try_into().unwrap();
        let mut data = b"Any submission to the IETF intended by the Contributor for publi\
cation as all or part of an IETF Internet-Draft or RFC and any statement made within the cont\
ext of an IETF activity is considered an \"IETF Contribution\". Such statements include oral \
statements in IETF sessions, as well as written and electronic communications made at any tim\
e or place, which are addressed to"
            .to_vec();
        assert_eq!(data.len(), 375);
        chacha20_xor(&key, &nonce, 1, &mut data);
        let expected = hex_to_bytes(
            "a3fbf07df3fa2fde4f376ca23e82737041605d9f4f4f57bd8cff2c1d4b7955ec\
             2a97948bd3722915c8f3d337f7d370050e9e96d647b7c39f56e031ca5eb6250d\
             4042e02785ececfa4b4bb5e8ead0440e20b6e8db09d881a7c6132f420e527950\
             42bdfa7773d8a9051447b3291ce1411c680465552aa6c405b7764d5e87bea85a\
             d00f8449ed8f72d0d662ab052691ca66424bc86d2df80ea41f43abf937d3259d\
             c4b2d0dfb48a6c9139ddd7f76966e928e635553ba76c5c879d7b35d49eb2e62b\
             0871cdac638939e25e8a1e0ef9d5280fa8ca328b351c3c765989cbcf3daa8b6c\
             cc3aaf9f3979c92b3720fc88dc95ed84a1be059c6499b9fda236e7e818b04b0b\
             c39c1e876b193bfe5569753f88128cc08aaa9b63d1a16f80ef2554d7189c411f\
             5869ca52c5b83fa36ff216b9c1d30062bebcfd2dc5bce0911934fda79a86f6e6\
             98ced759c3ff9b6477338f3da4f9cd8514ea9982ccafb341b2384dd902f3d1ab\
             7ac61dd29c6f21ba5b862f3730e37cfdc4fd806c22f221",
        );
        assert_eq!(data, expected);
    }

    // RFC 8439 A.2 test vector #3 (127 bytes, counter 42: exercises the
    // narrow path with a non-trivial initial counter).
    #[test]
    fn rfc8439_a2_counter42() {
        let key: [u8; 32] =
            hex_to_bytes("1c9240a5eb55d38af333888604f6b5f0473917c1402b80099dca5cbc207075c0")
                .try_into()
                .unwrap();
        let nonce: [u8; 12] = hex_to_bytes("000000000000000000000002").try_into().unwrap();
        let mut data = b"'Twas brillig, and the slithy toves\nDid gyre and gimble in the wabe:\n\
All mimsy were the borogoves,\nAnd the mome raths outgrabe."
            .to_vec();
        assert_eq!(data.len(), 127);
        chacha20_xor(&key, &nonce, 42, &mut data);
        let expected = hex_to_bytes(
            "62e6347f95ed87a45ffae7426f27a1df5fb69110044c0d73118effa95b01e5cf\
             166d3df2d721caf9b21e5fb14c616871fd84c54f9d65b283196c7fe4f60553eb\
             f39c6402c42234e32a356b3e764312a61a5532055716ead6962568f87d3f3f77\
             04c6a8d1bcd1bf4d50d6154b6da731b187b58dfd728afa36757a797ac188d1",
        );
        assert_eq!(data, expected);
    }

    // The wide path must agree with the narrow path at every length that
    // straddles the 256-byte quad boundary.
    #[test]
    fn wide_path_matches_single_blocks() {
        let key = ChaChaKey::new(&[0x42u8; 32]);
        let nonce = [7u8; 12];
        for len in [0, 1, 63, 64, 65, 255, 256, 257, 511, 512, 640, 1021] {
            let original: Vec<u8> = (0..len as u32).map(|i| (i * 37 % 251) as u8).collect();
            let mut wide = original.clone();
            key.xor(&nonce, 1, &mut wide);
            // Reference: one block at a time through the RFC block function.
            let mut narrow = original.clone();
            let keybytes = [0x42u8; 32];
            for (b, chunk) in narrow.chunks_mut(64).enumerate() {
                let ks = chacha20_block(&keybytes, 1 + b as u32, &nonce);
                for (x, k) in chunk.iter_mut().zip(ks.iter()) {
                    *x ^= k;
                }
            }
            assert_eq!(wide, narrow, "len {len}");
        }
    }

    #[test]
    fn xor_roundtrip() {
        let key = [7u8; 32];
        let nonce = [9u8; 12];
        let original: Vec<u8> = (0..1000u32).map(|i| (i * 31 % 251) as u8).collect();
        let mut data = original.clone();
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, &nonce, 0, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_differ() {
        let key = [1u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, &[0u8; 12], 0, &mut a);
        chacha20_xor(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_wraps_without_panic() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let mut data = vec![0u8; 512];
        chacha20_xor(&key, &nonce, u32::MAX - 1, &mut data);
        let mut back = data.clone();
        chacha20_xor(&key, &nonce, u32::MAX - 1, &mut back);
        assert!(back.iter().all(|&b| b == 0));
    }

    #[test]
    fn empty_input_ok() {
        let mut data: Vec<u8> = vec![];
        chacha20_xor(&[0u8; 32], &[0u8; 12], 0, &mut data);
        assert!(data.is_empty());
    }
}
