//! HKDF-style key derivation (RFC 5869 construction over HMAC-SHA-256).
//!
//! The cluster's *start password* (supplied by hand at first contact,
//! paper §4) is stretched into a master key; per-peer, per-direction
//! traffic keys are derived from it with context labels, so compromising
//! one directed channel's key does not reveal any other.

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// Extract: password + salt → pseudorandom master key.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm)
}

/// Expand: master key + context info → `out.len()` bytes of key material
/// (up to 255 blocks, plenty for our 32-byte keys).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "hkdf expand too long");
    let mut t: Vec<u8> = Vec::new();
    let mut done = 0;
    let mut counter = 1u8;
    while done < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - done).min(DIGEST_LEN);
        out[done..done + take].copy_from_slice(&block[..take]);
        t = block.to_vec();
        done += take;
        counter += 1;
    }
}

/// Derive the 32-byte master key of a cluster from its start password.
///
/// A fixed application salt domain-separates SDVM keys from any other use
/// of the same password. The iteration loop adds (mild) stretching.
pub fn master_key(password: &str) -> [u8; 32] {
    let mut key = extract(b"sdvm-cluster-v1", password.as_bytes());
    for _ in 0..1024 {
        key = hmac_sha256(&key, password.as_bytes());
    }
    key
}

/// Derive the directed traffic key for messages from `from_site` to
/// `to_site` under the given master key.
pub fn traffic_key(master: &[u8; 32], from_site: u32, to_site: u32) -> [u8; 32] {
    let mut info = Vec::with_capacity(24);
    info.extend_from_slice(b"sdvm-traffic");
    info.extend_from_slice(&from_site.to_le_bytes());
    info.extend_from_slice(&to_site.to_le_bytes());
    let mut out = [0u8; 32];
    expand(master, &info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt = hex_to_bytes("000102030405060708090a0b0c");
        let info = hex_to_bytes("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            hex_to_bytes("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            okm.to_vec(),
            hex_to_bytes(
                "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
                 34007208d5b887185865"
            )
        );
    }

    #[test]
    fn traffic_keys_are_directional_and_peer_specific() {
        let m = master_key("hunter2");
        let a_to_b = traffic_key(&m, 1, 2);
        let b_to_a = traffic_key(&m, 2, 1);
        let a_to_c = traffic_key(&m, 1, 3);
        assert_ne!(a_to_b, b_to_a);
        assert_ne!(a_to_b, a_to_c);
        // Deterministic.
        assert_eq!(a_to_b, traffic_key(&master_key("hunter2"), 1, 2));
    }

    #[test]
    fn different_passwords_different_masters() {
        assert_ne!(master_key("a"), master_key("b"));
        assert_ne!(master_key("a"), master_key("a "));
    }

    #[test]
    fn expand_multi_block() {
        let prk = [3u8; 32];
        let mut out = [0u8; 100]; // > 3 HMAC blocks
        expand(&prk, b"ctx", &mut out);
        // Distinct from a different context.
        let mut out2 = [0u8; 100];
        expand(&prk, b"ctx2", &mut out2);
        assert_ne!(out.to_vec(), out2.to_vec());
        // No all-zero tail (every block filled).
        assert!(out[68..].iter().any(|&b| b != 0));
    }
}
