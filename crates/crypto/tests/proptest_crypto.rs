//! Property-based tests of the crypto substrate.

use proptest::prelude::*;
use sdvm_crypto::chacha::chacha20_xor;
use sdvm_crypto::hmac::hmac_sha256;
use sdvm_crypto::kdf::{expand, extract};
use sdvm_crypto::sha256::sha256;
use sdvm_crypto::{CryptoError, KeyStore, SecureChannel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn chacha_is_an_involution(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        mut data in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let original = data.clone();
        chacha20_xor(&key, &nonce, counter, &mut data);
        chacha20_xor(&key, &nonce, counter, &mut data);
        prop_assert_eq!(data, original);
    }

    #[test]
    fn chacha_block_boundaries_consistent(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        data in prop::collection::vec(any::<u8>(), 1..512),
        split in any::<prop::sample::Index>(),
    ) {
        // Encrypting the whole buffer equals encrypting a prefix with the
        // same starting counter *only* when the prefix is block-aligned —
        // verify the stream is position-dependent but deterministic.
        let mut whole = data.clone();
        chacha20_xor(&key, &nonce, 5, &mut whole);
        let mut again = data.clone();
        chacha20_xor(&key, &nonce, 5, &mut again);
        prop_assert_eq!(&whole, &again, "keystream must be deterministic");
        let _ = split.index(data.len());
    }

    #[test]
    fn sha256_and_hmac_are_deterministic_functions(
        a in prop::collection::vec(any::<u8>(), 0..512),
        b in prop::collection::vec(any::<u8>(), 0..512),
        key in prop::collection::vec(any::<u8>(), 0..96),
    ) {
        prop_assert_eq!(sha256(&a), sha256(&a));
        prop_assert_eq!(hmac_sha256(&key, &a), hmac_sha256(&key, &a));
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b), "collision found?!");
        }
    }

    #[test]
    fn hkdf_output_depends_on_every_input(
        salt in prop::collection::vec(any::<u8>(), 0..32),
        ikm in prop::collection::vec(any::<u8>(), 1..64),
        info in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let prk = extract(&salt, &ikm);
        let mut out1 = [0u8; 48];
        expand(&prk, &info, &mut out1);
        let mut out2 = [0u8; 48];
        let mut info2 = info.clone();
        info2.push(0xff);
        expand(&prk, &info2, &mut out2);
        prop_assert_ne!(out1.to_vec(), out2.to_vec());
    }

    #[test]
    fn channel_roundtrip_any_payload(
        key in any::<[u8; 32]>(),
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..8),
    ) {
        let mut tx = SecureChannel::new(&key);
        let mut rx = SecureChannel::new(&key);
        for m in &msgs {
            let sealed = tx.seal(m);
            prop_assert_eq!(&rx.open(&sealed).unwrap(), m);
        }
    }

    #[test]
    fn any_single_byte_tamper_is_detected(
        key in any::<[u8; 32]>(),
        msg in prop::collection::vec(any::<u8>(), 0..256),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut tx = SecureChannel::new(&key);
        let mut rx = SecureChannel::new(&key);
        let mut sealed = tx.seal(&msg).to_vec();
        let i = pos.index(sealed.len());
        sealed[i] ^= flip;
        prop_assert_eq!(rx.open(&sealed), Err(CryptoError::BadTag));
    }

    #[test]
    fn open_in_place_equals_open(
        key in any::<[u8; 32]>(),
        msg in prop::collection::vec(any::<u8>(), 0..512),
        header in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        let mut tx = SecureChannel::new(&key);
        let mut rx_copy = SecureChannel::new(&key);
        let mut rx_place = SecureChannel::new(&key);
        let sealed = tx.seal(&msg);
        prop_assert_eq!(&rx_copy.open(&sealed).unwrap(), &msg);
        let mut buf = header.clone();
        buf.extend_from_slice(&sealed);
        let range = rx_place.open_in_place(&mut buf, header.len()).unwrap();
        prop_assert_eq!(&buf[range], &msg[..]);
        prop_assert_eq!(&buf[..header.len()], &header[..]);
    }

    #[test]
    fn keystore_pairwise_isolation(
        pw in "[ -~]{1,24}",
        peer_a in 1u32..1000,
        peer_b in 1u32..1000,
        msg in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        prop_assume!(peer_a != peer_b);
        let mut hub = KeyStore::from_password(7, &pw);
        let mut a = KeyStore::from_password(peer_a, &pw);
        let mut b = KeyStore::from_password(peer_b, &pw);
        prop_assume!(peer_a != 7 && peer_b != 7);
        let for_a = hub.seal_for(peer_a, &msg);
        prop_assert_eq!(a.open_from(7, &for_a).unwrap(), msg.clone());
        // The same ciphertext must not open as traffic for anyone else.
        prop_assert!(b.open_from(7, &for_a).is_err());
    }
}
