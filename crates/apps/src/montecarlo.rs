//! Monte-Carlo π estimation: the embarrassingly parallel,
//! no-data-dependency shape the paper's introduction attributes to
//! public-resource computing (Seti@Home) — the easiest case for the
//! SDVM and a useful upper-bound baseline for speedup experiments.

use sdvm_cdag::Cdag;
use sdvm_core::{AppBuilder, ProgramHandle, Site};
use sdvm_types::{SdvmResult, Value};

/// Deterministic per-task sample count inside the unit circle, using a
/// seeded xorshift generator (so results are reproducible anywhere).
pub fn hits_in_circle(seed: u64, samples: u64) -> u64 {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut hits = 0u64;
    for _ in 0..samples {
        let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
        let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
        if x * x + y * y <= 1.0 {
            hits += 1;
        }
    }
    hits
}

const TASK: u32 = 0;
const COLLECT: u32 = 1;

/// The π program: `tasks` independent sampling tasks.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloProgram {
    /// Number of parallel sampling tasks.
    pub tasks: usize,
    /// Samples per task.
    pub samples: u64,
}

impl MonteCarloProgram {
    /// Build the code table.
    pub fn app(&self) -> AppBuilder {
        let mut app = AppBuilder::new("montecarlo-pi");
        let samples = self.samples;
        let task = app.thread("sample", move |ctx| {
            let seed = ctx.param(0)?.as_u64()?;
            let hits = hits_in_circle(seed, samples);
            let t = ctx.target(0)?;
            ctx.send(t, seed as u32, Value::from_u64(hits))
        });
        assert_eq!(task, TASK);
        let collect = app.thread("collect", |ctx| {
            let mut hits = 0u64;
            for i in 0..ctx.param_count() as u32 {
                hits += ctx.param(i)?.as_u64()?;
            }
            let t = ctx.target(0)?;
            ctx.send(t, 0, Value::from_u64(hits))
        });
        assert_eq!(collect, COLLECT);
        app
    }

    /// Launch; the result is the total hit count (π ≈ 4·hits/samples).
    pub fn launch(&self, site: &Site) -> SdvmResult<ProgramHandle> {
        let app = self.app();
        let tasks = self.tasks;
        site.launch(&app, move |ctx, result| {
            let coord = ctx.create_frame(COLLECT, tasks, vec![result], Default::default());
            for s in 0..tasks {
                let f = ctx.create_frame(TASK, 1, vec![coord], Default::default());
                ctx.send(f, 0, Value::from_u64(s as u64))?;
            }
            Ok(())
        })
    }

    /// Sequential reference hit count.
    pub fn reference(&self) -> u64 {
        (0..self.tasks as u64)
            .map(|s| hits_in_circle(s, self.samples))
            .sum()
    }

    /// π estimate from a hit count.
    pub fn estimate(&self, hits: u64) -> f64 {
        4.0 * hits as f64 / (self.tasks as u64 * self.samples) as f64
    }

    /// The task graph: a pure fork-join with uniform costs.
    pub fn graph(&self) -> Cdag {
        let mut g = Cdag::new();
        let collect = g.add_node("collect", COLLECT, self.tasks as u64);
        for s in 0..self.tasks {
            let t = g.add_node(format!("sample{s}"), TASK, self.samples.max(1));
            g.add_edge(t, collect, s as u32, 16).expect("edge");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_converges_to_pi() {
        let prog = MonteCarloProgram {
            tasks: 16,
            samples: 20_000,
        };
        let est = prog.estimate(prog.reference());
        assert!((est - std::f64::consts::PI).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(hits_in_circle(7, 1000), hits_in_circle(7, 1000));
        assert_ne!(hits_in_circle(7, 1000), hits_in_circle(8, 1000));
    }

    #[test]
    fn graph_is_flat_fork_join() {
        let g = MonteCarloProgram {
            tasks: 10,
            samples: 100,
        }
        .graph();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.roots().len(), 10);
    }
}
