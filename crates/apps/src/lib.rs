//! SDVM example applications.
//!
//! Each workload exists in two forms:
//!
//! 1. a **real SDVM program** — microthreads on the `sdvm-core` runtime,
//!    launched on a [`Site`](sdvm_core::Site) (in-process or TCP
//!    cluster); and
//! 2. a **CDAG generator** — the same task structure as a
//!    [`Cdag`](sdvm_cdag::Cdag) with a calibrated cost model, executed by
//!    `sdvm-sim` for the scaling experiments (Table 1 etc.).
//!
//! Workloads:
//!
//! - [`primes`] — the paper's evaluation program (§5): "parallel
//!   computation of the first p prime numbers, working on `width`
//!   numbers in parallel each";
//! - [`mandelbrot`] — row-parallel escape-time rendering (uneven task
//!   costs → load balancing);
//! - [`matmul`] — block matrix multiply through the attraction memory
//!   (global-memory-heavy);
//! - [`nqueens`] — irregular divide-and-conquer with dynamically
//!   unfolding task trees and tree reduction;
//! - [`montecarlo`] — embarrassingly parallel π estimation (the
//!   public-resource-computing shape from the paper's introduction).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mandelbrot;
pub mod matmul;
pub mod montecarlo;
pub mod nqueens;
pub mod primes;
