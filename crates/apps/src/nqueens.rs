//! N-queens solution counting: an *irregular* divide-and-conquer
//! workload. Unlike the fork-join apps, the task tree unfolds
//! dynamically at runtime — every explored board position spawns an
//! unpredictable number of children, and partial counts flow back
//! through a tree of combine microframes. This exercises exactly the
//! SDVM property the paper emphasizes in §3.2: microframes for loops
//! and recursions "of unknown length" can be allocated dynamically,
//! because an allocated frame's address is known from that moment on.

use sdvm_cdag::Cdag;
use sdvm_core::{AppBuilder, ProgramHandle, Site};
use sdvm_types::{SdvmResult, Value};

/// Sequential solution counter from a partial placement (bitmask state).
fn count_from(n: u32, row: u32, cols: u32, diag1: u32, diag2: u32) -> u64 {
    if row == n {
        return 1;
    }
    let mut count = 0;
    let mut free = !(cols | diag1 | diag2) & ((1u32 << n) - 1);
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        count += count_from(
            n,
            row + 1,
            cols | bit,
            (diag1 | bit) << 1,
            (diag2 | bit) >> 1,
        );
    }
    count
}

/// Reference: total solutions for an n×n board.
pub fn solutions(n: u32) -> u64 {
    count_from(n, 0, 0, 0, 0)
}

const EXPLORE: u32 = 0;
const COMBINE: u32 = 1;

/// The N-queens program.
#[derive(Clone, Copy, Debug)]
pub struct NQueensProgram {
    /// Board size.
    pub n: u32,
    /// Rows explored as parallel microthreads before switching to the
    /// sequential solver (task granularity knob).
    pub parallel_depth: u32,
}

impl NQueensProgram {
    /// Build the microthread code table.
    pub fn app(&self) -> AppBuilder {
        let mut app = AppBuilder::new("nqueens");
        let n = self.n;
        let parallel_depth = self.parallel_depth;
        // explore: params [row, cols, diag1, diag2, slot-in-target];
        // target(0) = where the subtree count goes.
        let explore = app.thread("explore", move |ctx| {
            let s = ctx.param(0)?.as_u64_slice()?;
            let (row, cols, diag1, diag2, slot) = (
                s[0] as u32,
                s[1] as u32,
                s[2] as u32,
                s[3] as u32,
                s[4] as u32,
            );
            let target = ctx.target(0)?;
            if row >= parallel_depth || row == n {
                // Granularity reached: finish sequentially.
                let count = count_from(n, row, cols, diag1, diag2);
                return ctx.send(target, slot, Value::from_u64(count));
            }
            // Expand one row in parallel.
            let mut placements = Vec::new();
            let mut free = !(cols | diag1 | diag2) & ((1u32 << n) - 1);
            while free != 0 {
                let bit = free & free.wrapping_neg();
                free ^= bit;
                placements.push(bit);
            }
            if placements.is_empty() {
                return ctx.send(target, slot, Value::from_u64(0));
            }
            // A combine frame gathers the children's counts and forwards
            // the sum: slot 0 carries the parent slot, 1..=k the counts.
            let k = placements.len();
            let combine = ctx.create_frame(COMBINE, k + 1, vec![target], Default::default());
            ctx.send(combine, 0, Value::from_u64(u64::from(slot)))?;
            for (i, bit) in placements.into_iter().enumerate() {
                let child = ctx.create_frame(EXPLORE, 1, vec![combine], Default::default());
                ctx.send(
                    child,
                    0,
                    Value::from_u64_slice(&[
                        u64::from(row + 1),
                        u64::from(cols | bit),
                        u64::from((diag1 | bit) << 1),
                        u64::from((diag2 | bit) >> 1),
                        i as u64 + 1,
                    ]),
                )?;
            }
            Ok(())
        });
        assert_eq!(explore, EXPLORE);
        let combine = app.thread("combine", |ctx| {
            let slot = ctx.param(0)?.as_u64()? as u32;
            let mut sum = 0u64;
            for i in 1..ctx.param_count() as u32 {
                sum += ctx.param(i)?.as_u64()?;
            }
            ctx.send(ctx.target(0)?, slot, Value::from_u64(sum))
        });
        assert_eq!(combine, COMBINE);
        app
    }

    /// Launch; the result is the number of solutions.
    pub fn launch(&self, site: &Site) -> SdvmResult<ProgramHandle> {
        let app = self.app();
        site.launch(&app, move |ctx, result| {
            let root = ctx.create_frame(EXPLORE, 1, vec![result], Default::default());
            ctx.send(root, 0, Value::from_u64_slice(&[0, 0, 0, 0, 0]))
        })
    }

    /// Static task graph of the same exploration (for the simulator):
    /// costs are the *actual* sequential-subtree sizes, so the sim sees
    /// the true irregularity. Returns the graph and the expected total.
    pub fn graph(&self) -> (Cdag, u64) {
        let mut g = Cdag::new();
        let sink = g.add_node("root-combine", COMBINE, 1);
        let total = self.expand(&mut g, sink, 0, 0, 0, 0, 0);
        (g, total)
    }

    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        g: &mut Cdag,
        parent: usize,
        slot: u32,
        row: u32,
        cols: u32,
        diag1: u32,
        diag2: u32,
    ) -> u64 {
        if row >= self.parallel_depth || row == self.n {
            let count = count_from(self.n, row, cols, diag1, diag2);
            // Leaf cost ≈ nodes of the sequential subtree (≥1).
            let node = g.add_node(format!("leaf r{row}"), EXPLORE, (count * 10).max(1));
            g.add_edge(node, parent, slot, 16).expect("leaf edge");
            return count;
        }
        let combine = g.add_node(format!("combine r{row}"), COMBINE, 1);
        g.add_edge(combine, parent, slot, 16).expect("combine edge");
        let mut total = 0;
        let mut i = 0;
        let mut free = !(cols | diag1 | diag2) & ((1u32 << self.n) - 1);
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free ^= bit;
            total += self.expand(
                g,
                combine,
                i,
                row + 1,
                cols | bit,
                (diag1 | bit) << 1,
                (diag2 | bit) >> 1,
            );
            i += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts() {
        assert_eq!(solutions(1), 1);
        assert_eq!(solutions(4), 2);
        assert_eq!(solutions(6), 4);
        assert_eq!(solutions(8), 92);
    }

    #[test]
    fn graph_total_matches_reference() {
        for depth in [1u32, 2, 3] {
            let (g, total) = NQueensProgram {
                n: 7,
                parallel_depth: depth,
            }
            .graph();
            assert_eq!(total, solutions(7));
            g.topo_order().expect("acyclic");
        }
    }

    #[test]
    fn graph_is_irregular() {
        let (g, _) = NQueensProgram {
            n: 8,
            parallel_depth: 3,
        }
        .graph();
        let costs: Vec<u64> = g.node_ids().map(|n| g.node(n).cost).collect();
        let (min, max) = (costs.iter().min().unwrap(), costs.iter().max().unwrap());
        assert!(
            max > &(min * 10),
            "leaf costs should vary widely: {min}..{max}"
        );
    }
}
