//! The paper's evaluation program (§5, Table 1): find the first `p`
//! primes, "working on `width` numbers in parallel each".
//!
//! The program keeps a *sliding window* of `width` candidates under test
//! at any time (the paper's `simultaneousTestCount`; its code snippet
//! carries a state array sized `simultaneousTestCount + 4`). Each
//! candidate has a `test` microthread and a tiny `collect` microthread;
//! the collects form a chain that consumes verdicts in candidate order,
//! maintains the running prime count, and — for every verdict consumed —
//! creates the test-and-collect pair for the candidate `width` positions
//! ahead. The chain state carries the addresses of the next `width`
//! pending collect frames (the window ring), which is how each collect
//! knows where to send the updated state.
//!
//! The serial collect spine plus the bounded window is exactly what
//! keeps Table 1's speedups below the site count.

use sdvm_cdag::Cdag;
use sdvm_core::{AppBuilder, ProgramHandle, Site};
use sdvm_types::{GlobalAddress, SdvmResult, SiteId, Value};

/// Trial-division primality test (the candidate tester's real work).
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n.is_multiple_of(2) {
        return n == 2;
    }
    let mut d = 3u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The n-th prime (1-based): `nth_prime(1) == 2`. Reference for tests
/// and for sizing the CDAG.
pub fn nth_prime(n: u64) -> u64 {
    assert!(n >= 1);
    let mut count = 0;
    let mut cand = 1u64;
    loop {
        cand += 1;
        if is_prime(cand) {
            count += 1;
            if count == n {
                return cand;
            }
        }
    }
}

/// Trial divisions performed when testing `n` (cost of [`is_prime`]).
pub fn division_count(n: u64) -> u64 {
    if n < 2 || n.is_multiple_of(2) {
        return 1;
    }
    let mut d = 3u64;
    let mut count = 1; // the %2 test
    while d * d <= n {
        count += 1;
        if n.is_multiple_of(d) {
            return count;
        }
        d += 2;
    }
    count
}

const TEST: u32 = 0;
const COLLECT: u32 = 1;

/// The prime-search program.
#[derive(Clone, Copy, Debug)]
pub struct PrimesProgram {
    /// How many primes to find (the paper's `p`).
    pub p: u64,
    /// Candidates under test simultaneously (the paper's `width` /
    /// `simultaneousTestCount`).
    pub width: usize,
    /// Extra busy work per candidate in iterations (models the paper's
    /// heavyweight per-candidate computation; 0 = pure trial division).
    pub spin: u64,
    /// Extra *sleeping* work per candidate in microseconds. Unlike
    /// `spin` this yields the CPU, which keeps all sites' daemon threads
    /// schedulable when a whole cluster shares few cores (demos on small
    /// machines).
    pub sleep_us: u64,
}

// State layout (u64 slice): [count, then 2 words per ring entry
// (home, local) for the next `width` pending collect addresses, oldest
// first]. The verdict consumed by collect_i belongs to candidate
// 2 + i; the pair it creates is for candidate 2 + i + width.
fn encode_state(count: u64, ring: &[GlobalAddress]) -> Value {
    let mut words = Vec::with_capacity(1 + ring.len() * 2);
    words.push(count);
    for a in ring {
        words.push(a.home.0 as u64);
        words.push(a.local);
    }
    Value::from_u64_slice(&words)
}

fn decode_state(v: &Value) -> SdvmResult<(u64, Vec<GlobalAddress>)> {
    let words = v.as_u64_slice()?;
    let count = words[0];
    let ring = words[1..]
        .chunks_exact(2)
        .map(|c| GlobalAddress::new(SiteId(c[0] as u32), c[1]))
        .collect();
    Ok((count, ring))
}

impl PrimesProgram {
    /// A program finding the first `p` primes, `width` at a time.
    pub fn new(p: u64, width: usize) -> Self {
        assert!(width >= 1);
        PrimesProgram {
            p,
            width,
            spin: 0,
            sleep_us: 0,
        }
    }

    /// Build the microthread code table.
    pub fn app(&self) -> AppBuilder {
        let mut app = AppBuilder::new("primes");
        let spin = self.spin;
        let sleep_us = self.sleep_us;
        let test = app.thread("test", move |ctx| {
            let cand = ctx.param(0)?.as_u64()?;
            let isp = is_prime(cand);
            // Calibratable extra work (the paper's per-candidate load).
            let mut acc = 0u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
            if sleep_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(sleep_us));
            }
            let t = ctx.target(0)?;
            ctx.send(t, 1, Value::from_u64_slice(&[cand, isp as u64]))
        });
        assert_eq!(test, TEST);
        let p = self.p;
        let width = self.width;
        let collect = app.thread("collect", move |ctx| {
            let (mut count, mut ring) = decode_state(ctx.param(0)?)?;
            let verdict = ctx.param(1)?.as_u64_slice()?;
            let (cand, isp) = (verdict[0], verdict[1]);
            let result_target = ctx.target(0)?;
            if isp == 1 {
                count += 1;
                if count == p {
                    // The p-th prime: deliver and stop the pipeline (the
                    // outstanding window frames are purged with the
                    // program).
                    return ctx.send(result_target, 0, Value::from_u64(cand));
                }
            }
            // Create the pair for the candidate `width` ahead and pass
            // the state down the chain.
            let next_cand = cand + width as u64;
            let new_collect = ctx.create_frame(COLLECT, 2, vec![result_target], Default::default());
            let new_test = ctx.create_frame(TEST, 1, vec![new_collect], Default::default());
            ctx.send(new_test, 0, Value::from_u64(next_cand))?;
            ring.push(new_collect);
            let next_in_chain = ring.remove(0);
            ctx.send(next_in_chain, 0, encode_state(count, &ring))
        });
        assert_eq!(collect, COLLECT);
        app
    }

    /// Launch on a site; the result is the p-th prime.
    pub fn launch(&self, site: &Site) -> SdvmResult<ProgramHandle> {
        let app = self.app();
        let width = self.width;
        site.launch(&app, move |ctx, result| {
            // Seed the window: pairs for candidates 2..2+width.
            let mut collects = Vec::with_capacity(width);
            for i in 0..width {
                let c = ctx.create_frame(COLLECT, 2, vec![result], Default::default());
                let t = ctx.create_frame(TEST, 1, vec![c], Default::default());
                ctx.send(t, 0, Value::from_u64(2 + i as u64))?;
                collects.push(c);
            }
            // collect_0 receives the initial state; its ring is the rest
            // of the window.
            ctx.send(collects[0], 0, encode_state(0, &collects[1..]))
        })
    }

    /// Number of candidates the pipeline processes (2 ..= p-th prime).
    pub fn candidates(&self) -> usize {
        (nth_prime(self.p) - 1) as usize
    }

    /// The task graph of this program, with per-node costs in abstract
    /// work units: each candidate test costs `unit_cost` (the paper's
    /// per-candidate computation is approximately constant in the
    /// candidate) plus its real trial-division count; each collect costs
    /// `collect_cost`.
    pub fn graph(&self, unit_cost: u64, collect_cost: u64) -> Cdag {
        let mut g = Cdag::new();
        let m = self.candidates();
        let w = self.width;
        let mut tests = Vec::with_capacity(m);
        let mut collects = Vec::with_capacity(m);
        for i in 0..m {
            let cand = 2 + i as u64;
            let cost = unit_cost + division_count(cand);
            tests.push(g.add_node(format!("test{cand}"), TEST, cost));
            collects.push(g.add_node(format!("collect{cand}"), COLLECT, collect_cost.max(1)));
        }
        for i in 0..m {
            // Verdict edge.
            g.add_edge(tests[i], collects[i], 1, 24)
                .expect("verdict edge");
            // Chain (state) edge.
            if i + 1 < m {
                g.add_edge(collects[i], collects[i + 1], 0, 8 + 16 * w as u64)
                    .expect("state edge");
            }
            // Window dispatch: collect_i creates test_{i+w}.
            if i + w < m {
                g.add_edge(collects[i], tests[i + w], 0, 16)
                    .expect("dispatch edge");
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_reference() {
        let primes: Vec<u64> = (0..100).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![
                2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79,
                83, 89, 97
            ]
        );
    }

    #[test]
    fn nth_prime_reference() {
        assert_eq!(nth_prime(1), 2);
        assert_eq!(nth_prime(10), 29);
        assert_eq!(nth_prime(100), 541);
        assert_eq!(nth_prime(1000), 7919);
    }

    #[test]
    fn state_roundtrip() {
        let ring = vec![
            GlobalAddress::new(SiteId(1), 7),
            GlobalAddress::new(SiteId(3), 9),
        ];
        let v = encode_state(42, &ring);
        let (count, back) = decode_state(&v).unwrap();
        assert_eq!(count, 42);
        assert_eq!(back, ring);
        let (c0, r0) = decode_state(&encode_state(0, &[])).unwrap();
        assert_eq!(c0, 0);
        assert!(r0.is_empty());
    }

    #[test]
    fn graph_shape() {
        let prog = PrimesProgram::new(10, 5);
        let g = prog.graph(100, 10);
        let m = prog.candidates(); // candidates 2..=29 → 28
        assert_eq!(m, 28);
        assert_eq!(g.node_count(), 2 * m);
        // Roots: the first `width` tests (their dispatching collect is
        // outside the graph — the bootstrap) and collect_0's state also
        // comes from the bootstrap.
        assert_eq!(g.roots().len(), 5);
        g.topo_order().expect("acyclic");
    }

    #[test]
    fn graph_window_limits_parallelism() {
        let prog = PrimesProgram::new(20, 4);
        let g = prog.graph(1_000, 1);
        let analysis = sdvm_cdag::CdagAnalysis::analyse(&g).unwrap();
        // With a window of 4, average parallelism can't exceed ~4 tests
        // in flight (plus epsilon from the cheap collect chain).
        assert!(
            analysis.avg_parallelism <= 4.3,
            "window must bound parallelism, got {}",
            analysis.avg_parallelism
        );
    }

    #[test]
    fn division_count_matches_is_prime_effort() {
        assert_eq!(division_count(4), 1); // even: one test
        assert!(division_count(541) > division_count(9));
    }
}
