//! Row-parallel Mandelbrot rendering: a fork-join workload with *uneven*
//! task costs (rows near the set take far longer), exercising the SDVM's
//! automatic load balancing.

use sdvm_cdag::Cdag;
use sdvm_core::{AppBuilder, ProgramHandle, Site};
use sdvm_types::{SdvmResult, Value};

/// Escape-time iteration count for one point.
pub fn escape_time(cx: f64, cy: f64, max_iter: u32) -> u32 {
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut i = 0;
    while i < max_iter && x * x + y * y <= 4.0 {
        let nx = x * x - y * y + cx;
        y = 2.0 * x * y + cy;
        x = nx;
        i += 1;
    }
    i
}

/// Total iterations spent on one row of the classic viewport.
pub fn row_iterations(row: usize, rows: usize, cols: usize, max_iter: u32) -> u64 {
    let cy = -1.2 + 2.4 * row as f64 / rows as f64;
    let mut total = 0u64;
    for c in 0..cols {
        let cx = -2.2 + 3.0 * c as f64 / cols as f64;
        total += escape_time(cx, cy, max_iter) as u64;
    }
    total
}

const ROW: u32 = 0;
const COLLECT: u32 = 1;

/// The Mandelbrot program: `rows` row tasks, one collector.
#[derive(Clone, Copy, Debug)]
pub struct MandelbrotProgram {
    /// Image rows (= parallel tasks).
    pub rows: usize,
    /// Image columns.
    pub cols: usize,
    /// Iteration cap.
    pub max_iter: u32,
}

impl MandelbrotProgram {
    /// Build the microthread code table.
    pub fn app(&self) -> AppBuilder {
        let mut app = AppBuilder::new("mandelbrot");
        let (rows, cols, max_iter) = (self.rows, self.cols, self.max_iter);
        let row = app.thread("row", move |ctx| {
            let r = ctx.param(0)?.as_u64()? as usize;
            let total = row_iterations(r, rows, cols, max_iter);
            let t = ctx.target(0)?;
            ctx.send(t, r as u32, Value::from_u64(total))
        });
        assert_eq!(row, ROW);
        let collect = app.thread("collect", move |ctx| {
            let mut sum = 0u64;
            for i in 0..ctx.param_count() as u32 {
                sum += ctx.param(i)?.as_u64()?;
            }
            let t = ctx.target(0)?;
            ctx.send(t, 0, Value::from_u64(sum))
        });
        assert_eq!(collect, COLLECT);
        app
    }

    /// Launch; the result is the total iteration count of the image (a
    /// checksum that any sequential implementation reproduces).
    pub fn launch(&self, site: &Site) -> SdvmResult<ProgramHandle> {
        let app = self.app();
        let rows = self.rows;
        site.launch(&app, move |ctx, result| {
            let coord = ctx.create_frame(COLLECT, rows, vec![result], Default::default());
            for r in 0..rows {
                let f = ctx.create_frame(ROW, 1, vec![coord], Default::default());
                ctx.send(f, 0, Value::from_u64(r as u64))?;
            }
            Ok(())
        })
    }

    /// Reference (sequential) checksum.
    pub fn reference(&self) -> u64 {
        (0..self.rows)
            .map(|r| row_iterations(r, self.rows, self.cols, self.max_iter))
            .sum()
    }

    /// The task graph with *real* per-row costs (iterations), so the
    /// simulator sees the same imbalance the runtime does.
    pub fn graph(&self) -> Cdag {
        let mut g = Cdag::new();
        let collect = g.add_node("collect", COLLECT, self.rows as u64);
        for r in 0..self.rows {
            let cost = row_iterations(r, self.rows, self.cols, self.max_iter).max(1);
            let t = g.add_node(format!("row{r}"), ROW, cost);
            g.add_edge(t, collect, r as u32, 16).expect("edge");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_time_basics() {
        // Origin is in the set: runs to the cap.
        assert_eq!(escape_time(0.0, 0.0, 100), 100);
        // Far outside: escapes immediately-ish.
        assert!(escape_time(2.0, 2.0, 100) < 3);
    }

    #[test]
    fn costs_are_uneven() {
        let m = MandelbrotProgram {
            rows: 32,
            cols: 32,
            max_iter: 200,
        };
        let costs: Vec<u64> = (0..32).map(|r| row_iterations(r, 32, 32, 200)).collect();
        let (min, max) = (costs.iter().min().unwrap(), costs.iter().max().unwrap());
        assert!(
            max > &(min * 2),
            "rows should differ in cost: {min} vs {max}"
        );
        assert_eq!(m.reference(), costs.iter().sum::<u64>());
    }

    #[test]
    fn graph_mirrors_costs() {
        let m = MandelbrotProgram {
            rows: 8,
            cols: 16,
            max_iter: 64,
        };
        let g = m.graph();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.sinks().len(), 1);
        let total: u64 = (1..9).map(|n| g.node(n).cost).sum();
        assert_eq!(total, m.reference().max(8)); // each row ≥ 1
    }
}
