//! Block matrix multiplication through the attraction memory.
//!
//! A and B are stored block-wise as global memory objects; every task
//! computing a C block *reads* its row of A blocks and column of B
//! blocks — mostly from remote sites, so data is attracted to where it
//! is used. This is the global-memory-heavy counterpart to the
//! compute-only workloads.

use sdvm_cdag::Cdag;
use sdvm_core::{AppBuilder, ProgramHandle, Site};
use sdvm_types::{SdvmResult, Value};

const BLOCK_TASK: u32 = 0;
const COLLECT: u32 = 1;

/// Block matmul of an (nb·bs)² matrix, nb² parallel block tasks.
#[derive(Clone, Copy, Debug)]
pub struct MatmulProgram {
    /// Blocks per dimension.
    pub nb: usize,
    /// Block size (elements per dimension).
    pub bs: usize,
}

impl MatmulProgram {
    /// Deterministic input matrices: `A[i][j] = i + 2j`, `B[i][j] = i·j + 1`
    /// over the full (nb·bs)² index space, stored block-wise.
    fn a_elem(&self, i: usize, j: usize) -> i64 {
        (i + 2 * j) as i64 % 97
    }

    fn b_elem(&self, i: usize, j: usize) -> i64 {
        (i * j + 1) as i64 % 89
    }

    fn block_values(&self, which: char, bi: usize, bj: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.bs * self.bs);
        for r in 0..self.bs {
            for c in 0..self.bs {
                let (i, j) = (bi * self.bs + r, bj * self.bs + c);
                let v = if which == 'a' {
                    self.a_elem(i, j)
                } else {
                    self.b_elem(i, j)
                };
                out.push(v as u64);
            }
        }
        out
    }

    /// Sequential reference: checksum of C = A·B.
    pub fn reference(&self) -> u64 {
        let n = self.nb * self.bs;
        let mut sum = 0u64;
        for i in 0..n {
            for j in 0..n {
                let mut c = 0i64;
                for k in 0..n {
                    c += self.a_elem(i, k) * self.b_elem(k, j);
                }
                sum = sum.wrapping_add(c as u64);
            }
        }
        sum
    }

    /// Build the microthread code table.
    pub fn app(&self) -> AppBuilder {
        let mut app = AppBuilder::new("matmul");
        let (nb, bs) = (self.nb, self.bs);
        // Block task: params [bi, bj, a_addrs..., b_addrs...] packed as a
        // u64 slice in param 0 plus address params; simpler: param 0 is
        // [bi, bj], params 1..=nb are A-row block addresses, params
        // nb+1..=2nb are B-column block addresses.
        let task = app.thread("block", move |ctx| {
            let meta = ctx.param(0)?.as_u64_slice()?;
            let (bi, bj) = (meta[0] as usize, meta[1] as usize);
            let mut c = vec![0i64; bs * bs];
            for k in 0..nb {
                let a_addr = ctx.param(1 + k as u32)?.as_address()?;
                let b_addr = ctx.param(1 + (nb + k) as u32)?.as_address()?;
                let a = ctx.read(a_addr)?.as_u64_slice()?;
                let b = ctx.read(b_addr)?.as_u64_slice()?;
                for r in 0..bs {
                    for cc in 0..bs {
                        let mut acc = 0i64;
                        for x in 0..bs {
                            acc += a[r * bs + x] as i64 * b[x * bs + cc] as i64;
                        }
                        c[r * bs + cc] += acc;
                    }
                }
            }
            let checksum: u64 = c.iter().map(|&v| v as u64).fold(0, u64::wrapping_add);
            let t = ctx.target(0)?;
            ctx.send(t, (bi * nb + bj) as u32, Value::from_u64(checksum))
        });
        assert_eq!(task, BLOCK_TASK);
        let collect = app.thread("collect", |ctx| {
            let mut sum = 0u64;
            for i in 0..ctx.param_count() as u32 {
                sum = sum.wrapping_add(ctx.param(i)?.as_u64()?);
            }
            let t = ctx.target(0)?;
            ctx.send(t, 0, Value::from_u64(sum))
        });
        assert_eq!(collect, COLLECT);
        app
    }

    /// Launch; the result is the checksum of C (compare to
    /// [`MatmulProgram::reference`]).
    #[allow(clippy::needless_range_loop)] // bi/bj index two parallel grids
    pub fn launch(&self, site: &Site) -> SdvmResult<ProgramHandle> {
        let app = self.app();
        let me = *self;
        let nb = self.nb;
        site.launch(&app, move |ctx, result| {
            // Allocate all blocks of A and B in global memory.
            let mut a_addrs = vec![vec![]; nb];
            let mut b_addrs = vec![vec![]; nb];
            for (bi, (a_row, b_row)) in a_addrs.iter_mut().zip(b_addrs.iter_mut()).enumerate() {
                for bj in 0..nb {
                    a_row.push(ctx.alloc(Value::from_u64_slice(&me.block_values('a', bi, bj))));
                    b_row.push(ctx.alloc(Value::from_u64_slice(&me.block_values('b', bi, bj))));
                }
            }
            let coord = ctx.create_frame(COLLECT, nb * nb, vec![result], Default::default());
            for bi in 0..nb {
                for bj in 0..nb {
                    let f =
                        ctx.create_frame(BLOCK_TASK, 1 + 2 * nb, vec![coord], Default::default());
                    ctx.send(f, 0, Value::from_u64_slice(&[bi as u64, bj as u64]))?;
                    for k in 0..nb {
                        ctx.send(f, 1 + k as u32, Value::from_address(a_addrs[bi][k]))?;
                        ctx.send(f, 1 + (nb + k) as u32, Value::from_address(b_addrs[k][bj]))?;
                    }
                }
            }
            Ok(())
        })
    }

    /// Task graph: nb² block tasks (cost ≈ nb·bs³ multiply-adds, plus the
    /// remote-read pressure is modelled by the sim's cost model), one
    /// collector.
    pub fn graph(&self) -> Cdag {
        let mut g = Cdag::new();
        let collect = g.add_node("collect", COLLECT, (self.nb * self.nb) as u64);
        let cost = (self.nb * self.bs * self.bs * self.bs) as u64;
        let block_bytes = (self.bs * self.bs * 8) as u64;
        for bi in 0..self.nb {
            for bj in 0..self.nb {
                let t = g.add_node(format!("c{bi}.{bj}"), BLOCK_TASK, cost.max(1));
                g.add_edge(t, collect, (bi * self.nb + bj) as u32, block_bytes)
                    .expect("edge");
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic() {
        let m = MatmulProgram { nb: 2, bs: 3 };
        assert_eq!(m.reference(), m.reference());
    }

    #[test]
    fn block_values_tile_the_matrix() {
        let m = MatmulProgram { nb: 2, bs: 2 };
        let b00 = m.block_values('a', 0, 0);
        let b11 = m.block_values('a', 1, 1);
        assert_eq!(b00[0], m.a_elem(0, 0) as u64);
        assert_eq!(b11[3], m.a_elem(3, 3) as u64);
    }

    #[test]
    fn graph_shape() {
        let m = MatmulProgram { nb: 3, bs: 4 };
        let g = m.graph();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.roots().len(), 9);
        assert_eq!(g.sinks(), vec![0]);
    }
}
