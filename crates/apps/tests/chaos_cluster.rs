//! Acceptance drill for the robustness work: a real application on a
//! six-site cluster survives two site kills plus a partition-and-heal —
//! scripted deterministically — and still produces the right answer,
//! exactly once.
//!
//! `fault_matrix_scenario` is the CI fault-matrix hook: the plan and
//! seed come from `SDVM_CHAOS_PLAN` / `SDVM_CHAOS_SEED`, so one test
//! body covers the whole seeds × plans grid without recompiling.

use sdvm_apps::primes::{nth_prime, PrimesProgram};
use sdvm_core::{
    AppBuilder, AppFault, AppFaultKind, ChaosAction, ChaosScenario, InProcessCluster,
    ReplicaSelector, ReplicationPolicy, SiteConfig, TraceEvent, TraceLog,
};
use sdvm_net::FaultPlan;
use sdvm_types::{SchedulingHint, Value};
use std::time::{Duration, Instant};

const WAIT: Duration = Duration::from_secs(120);

fn chaos_config() -> SiteConfig {
    let mut cfg = SiteConfig::default().with_crash_tolerance();
    cfg.heartbeat_interval = Duration::from_millis(50);
    cfg.suspect_timeout = Duration::from_millis(200);
    cfg.crash_timeout = Duration::from_millis(600);
    cfg
}

/// Tentpole acceptance: six sites run the paper's prime search while the
/// scripted scenario kills two sites mid-program and blackholes (then
/// heals) a link between two survivors. The answer must match the
/// sequential reference and arrive exactly once.
#[test]
fn six_sites_survive_two_kills_and_a_partition() {
    let cluster = InProcessCluster::new(6, chaos_config()).unwrap();
    let prog = PrimesProgram {
        p: 60,
        width: 16,
        spin: 0,
        sleep_us: 8_000,
    };
    let handle = prog.launch(cluster.site(0)).unwrap();
    let scenario = ChaosScenario::new()
        .at(Duration::from_millis(400), ChaosAction::Kill { site: 4 })
        .at(
            Duration::from_millis(700),
            ChaosAction::Partition {
                a: 1,
                b: 2,
                heal_after: Duration::from_millis(400),
            },
        )
        .at(Duration::from_millis(1_200), ChaosAction::Kill { site: 5 });
    let result = std::thread::scope(|s| {
        s.spawn(|| scenario.run(&cluster));
        handle.wait(WAIT).unwrap()
    });
    assert_eq!(
        result.as_u64().unwrap(),
        nth_prime(60),
        "the 60th prime, 281"
    );
    // Exactly-once: the one result was consumed above; nothing else may
    // arrive (no doubly-revived result frame firing twice).
    assert!(
        handle.wait(Duration::from_millis(500)).is_err(),
        "result must be delivered exactly once"
    );
}

/// Poison cell of the fault matrix: a deterministic application fault
/// (panic or handler failure) fires while the transport is already
/// degraded. The program must *fail fast with a descriptive error* —
/// never hang, never take a worker slot down — and the poison frame must
/// be quarantined exactly once cluster-wide.
fn poison_drill(kind: AppFaultKind, plan: &str, seed: u64, scenario: ChaosScenario) {
    let trace = TraceLog::new();
    let cluster =
        InProcessCluster::with_configs(vec![chaos_config(); 4], Some(trace.clone())).unwrap();
    if plan == "poison_panic" {
        cluster.hub().set_default_plan(FaultPlan::udp_like(seed));
    }
    // 3rd wrapped execution on the launch site: the fan-out is warm when
    // the poison fires.
    let fault = AppFault::new(cluster.site(0).id(), 3, kind);
    let mut app = AppBuilder::new("poison-matrix");
    let work = |ctx: &mut sdvm_core::ExecCtx<'_>| {
        let v = ctx.param(0)?.as_u64()?;
        let slot = ctx.param(1)?.as_u64()? as u32;
        std::thread::sleep(Duration::from_millis(4));
        ctx.send(ctx.target(0)?, slot, Value::from_u64(v * v))
    };
    app.thread("work", fault.wrap(work));
    app.thread("join", |ctx| {
        let mut acc = 0;
        for i in 0..ctx.param_count() as u32 {
            acc += ctx.param(i)?.as_u64()?;
        }
        ctx.send(ctx.target(0)?, 0, Value::from_u64(acc))
    });
    let n = 16usize;
    let handle = cluster
        .site(0)
        .launch(&app, move |ctx, result| {
            let join = ctx.create_frame(1, n, vec![result], Default::default());
            for i in 0..n {
                let w = ctx.create_frame(0, 2, vec![join], Default::default());
                ctx.send(w, 0, Value::from_u64(i as u64))?;
                ctx.send(w, 1, Value::from_u64(i as u64))?;
            }
            Ok(())
        })
        .unwrap();
    let err = std::thread::scope(|s| {
        s.spawn(|| scenario.run(&cluster));
        handle
            .wait(WAIT)
            .expect_err("poisoned program must fail fast, not hang")
    });
    let text = err.to_string();
    assert!(
        text.contains("chaos: injected"),
        "plan={plan} seed={seed}: error must carry the injected cause, got: {text}"
    );
    std::thread::sleep(Duration::from_millis(500));
    for i in 0..4 {
        assert_eq!(
            cluster.site(i).live_workers(),
            cluster.site(i).inner().config.slots,
            "plan={plan} seed={seed}: site {i} lost a worker slot"
        );
    }
    assert_eq!(
        trace
            .filter(|e| matches!(e, TraceEvent::FrameQuarantined { .. }))
            .len(),
        1,
        "plan={plan} seed={seed}: exactly one quarantine cluster-wide"
    );
}

/// Replica cell of the fault matrix: a partition opens between an
/// object's owner and a site holding a cached read replica, the owner
/// writes *during* the partition (the invalidation is lost in the
/// blackhole), and the partition heals. The lease semantics under test:
/// while the replica is fresh, reads serve it; once the TTL expires
/// mid-partition, reads go remote and may *time out* (the honest CAP
/// outcome — never a value staler than the lease); after the heal, the
/// holder must converge on the owner's new value.
fn replica_partition_drill(seed: u64) {
    let mut cfg = chaos_config().with_replica_ttl(Duration::from_millis(300));
    // The drill partitions, it doesn't kill: suspicion verdicts would
    // only add noise on top of the blackhole. Short request timeout so
    // mid-partition probes fail fast.
    cfg.crash_timeout = Duration::from_secs(30);
    cfg.suspect_timeout = Duration::from_secs(10);
    cfg.request_timeout = Duration::from_millis(400);
    let cluster = InProcessCluster::with_configs(vec![cfg; 3], None).unwrap();
    let s0 = cluster.site(0).inner();
    let s2 = cluster.site(2).inner();
    let addr = s0
        .memory
        .alloc(s0, sdvm_types::ProgramId(1), Value::from_u64(1));
    // Replica outstanding at site 2.
    assert_eq!(
        s2.memory.read(s2, addr, false).unwrap().as_u64().unwrap(),
        1
    );
    assert!(s2.memory.replica_version(addr).is_some(), "replica cached");
    // Seed staggers when the partition opens relative to the write.
    let partition_at = Duration::from_millis(50 + (seed % 5) * 40);
    let scenario = ChaosScenario::new().at(
        partition_at,
        ChaosAction::Partition {
            a: 0,
            b: 2,
            heal_after: Duration::from_millis(600),
        },
    );
    std::thread::scope(|s| {
        s.spawn(|| scenario.run(&cluster));
        std::thread::sleep(partition_at + Duration::from_millis(100));
        // Owner writes mid-partition: the ReplicaInvalidate to site 2
        // dies in the blackhole.
        s0.memory.write(s0, addr, Value::from_u64(2)).unwrap();
        // Site 2 keeps reading. Three legal outcomes per read: the stale
        // value while the lease lasts, a timeout once the lease expired
        // and the owner is unreachable, the fresh value after the heal.
        // Never a value staler than the lease allows once v2 was seen.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        loop {
            match s2.memory.read(s2, addr, false) {
                Ok(v) => {
                    let v = v.as_u64().unwrap();
                    if v == 2 {
                        break;
                    }
                    assert_eq!(v, 1, "seed={seed}: impossible value");
                }
                Err(sdvm_types::SdvmError::Timeout(_))
                | Err(sdvm_types::SdvmError::Transport(_))
                | Err(sdvm_types::SdvmError::ObjectMissing(_)) => {
                    // Lease expired with the owner unreachable: honest
                    // unavailability, not stale data.
                }
                Err(e) => panic!("seed={seed}: unexpected read error: {e}"),
            }
            assert!(
                std::time::Instant::now() < deadline,
                "seed={seed}: never converged on the post-partition write"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        // Converged: the fresh value is now also re-cacheable locally.
        assert_eq!(
            s2.memory.read(s2, addr, false).unwrap().as_u64().unwrap(),
            2
        );
    });
}

/// A fan of `n` squaring frames into one sticky join: the pure work
/// leaves are the replicated/hedged threads; the join (which creates
/// nothing and must run once) is pinned to the launch site.
fn replicated_fan(
    policy: ReplicationPolicy,
    fast_sites: Vec<sdvm_types::SiteId>,
    work_sleep: Duration,
) -> AppBuilder {
    let mut app = AppBuilder::new("sdc-fan").replicate(policy);
    app.thread("work", move |ctx: &mut sdvm_core::ExecCtx<'_>| {
        let v = ctx.param(0)?.as_u64()?;
        let slot = ctx.param(1)?.as_u64()? as u32;
        if !fast_sites.contains(&ctx.site_id()) {
            std::thread::sleep(work_sleep);
        }
        ctx.send(ctx.target(0)?, slot, Value::from_u64(v * v))
    });
    app.thread("join", |ctx| {
        let mut acc = 0;
        for i in 0..ctx.param_count() as u32 {
            acc += ctx.param(i)?.as_u64()?;
        }
        ctx.send(ctx.target(0)?, 0, Value::from_u64(acc))
    });
    app
}

fn launch_replicated_fan(
    cluster: &InProcessCluster,
    app: &AppBuilder,
    n: usize,
) -> sdvm_core::ProgramHandle {
    cluster
        .site(0)
        .launch(app, move |ctx, result| {
            let sticky = SchedulingHint {
                sticky: true,
                ..Default::default()
            };
            let join = ctx.create_frame(1, n, vec![result], sticky);
            for i in 0..n {
                let w = ctx.create_frame(0, 2, vec![join], Default::default());
                ctx.send(w, 0, Value::from_u64(i as u64))?;
                ctx.send(w, 1, Value::from_u64(i as u64))?;
            }
            Ok(())
        })
        .unwrap()
}

/// Silent-data-corruption cell of the fault matrix. Two acts:
///
/// 1. **Control (`Off`)**: on a single site, a bit flip in the one
///    result send silently produces the *wrong* answer — nothing in the
///    baseline stack notices a lying ALU.
/// 2. **Drill (k = 3)**: on four sites under a lossy transport, two
///    sites flip (different) bits in their first result send. The
///    majority outvotes each liar, the divergence counter fires, and
///    the answer is exactly the fault-free sum.
fn sdc_corrupt_drill(seed: u64) {
    // Act 1: replication off, the corruption wins. 21*2 = 42 becomes 43.
    let control = InProcessCluster::new(1, chaos_config()).unwrap();
    control.corrupt_results(0, 2, 0); // send #1 is the launch parameter
    let mut app = AppBuilder::new("sdc-control");
    app.thread("work", |ctx: &mut sdvm_core::ExecCtx<'_>| {
        let v = ctx.param(0)?.as_u64()?;
        ctx.send(ctx.target(0)?, 0, Value::from_u64(v * 2))
    });
    let handle = control
        .site(0)
        .launch(&app, |ctx, result| {
            let w = ctx.create_frame(0, 1, vec![result], Default::default());
            ctx.send(w, 0, Value::from_u64(21))
        })
        .unwrap();
    assert_eq!(
        handle.wait(WAIT).unwrap().as_u64().unwrap(),
        43,
        "seed={seed}: without replication the flipped bit must go unnoticed"
    );

    // Act 2: k = 3 voting under udp_like, two independent liars.
    let trace = TraceLog::new();
    let cluster =
        InProcessCluster::with_configs(vec![chaos_config(); 4], Some(trace.clone())).unwrap();
    cluster.hub().set_default_plan(FaultPlan::udp_like(seed));
    let liars = vec![cluster.site(1).id(), cluster.site(2).id()];
    let policy = ReplicationPolicy::Replicate {
        k: 3,
        selector: ReplicaSelector::Thread(0),
    };
    // Liars answer fast so their corrupted ballots are observed (not
    // fenced after an honest majority already settled the frame).
    let app = replicated_fan(policy, liars, Duration::from_millis(25));
    let n = 12usize;
    let scenario = ChaosScenario::new()
        .at(
            Duration::ZERO,
            ChaosAction::CorruptResult {
                site: 1,
                nth: 1,
                bit: 0,
            },
        )
        .at(
            Duration::ZERO,
            ChaosAction::CorruptResult {
                site: 2,
                nth: 1,
                bit: 8,
            },
        );
    let result = std::thread::scope(|s| {
        s.spawn(|| scenario.run(&cluster));
        let handle = launch_replicated_fan(&cluster, &app, n);
        let r = handle.wait(WAIT).unwrap();
        assert!(
            handle.wait(Duration::from_millis(500)).is_err(),
            "seed={seed}: result must be delivered exactly once"
        );
        r
    });
    let expect: u64 = (0..n as u64).map(|i| i * i).sum();
    assert_eq!(
        result.as_u64().unwrap(),
        expect,
        "seed={seed}: the majority must outvote both liars"
    );
    let divergence: u64 = (0..4)
        .map(|i| cluster.site(i).inner().metrics.snapshot().result_divergence)
        .sum();
    assert!(
        divergence >= 1,
        "seed={seed}: corrupted ballots must be counted as divergence"
    );
}

/// Straggler cell of the fault matrix: one site is paused (a long GC
/// stall — it heartbeats nothing but is *not* declared crashed, the
/// detector is detuned) while a hedged program runs. Work landing on the
/// frozen site is rescued by hedge duplicates, so the program finishes
/// in a fraction of the pause instead of waiting it out.
fn hedge_straggler_drill(seed: u64) {
    let mut cfg = chaos_config();
    // The pause must read as a straggler, not a crash: no suspicion
    // verdicts, no recovery — hedging is the only rescue.
    cfg.crash_timeout = Duration::from_secs(30);
    cfg.suspect_timeout = Duration::from_secs(10);
    let cluster = InProcessCluster::with_configs(vec![cfg; 4], None).unwrap();
    let policy = ReplicationPolicy::Hedge {
        delay: Duration::from_millis(60),
        selector: ReplicaSelector::Thread(0),
    };
    let app = replicated_fan(policy, Vec::new(), Duration::from_millis(5 + seed % 3));
    let n = 8usize;
    let pause_for = Duration::from_secs(6);
    let scenario = ChaosScenario::new().at(
        Duration::ZERO,
        ChaosAction::Pause {
            site: 2,
            for_: pause_for,
        },
    );
    let (result, elapsed) = std::thread::scope(|s| {
        s.spawn(|| scenario.run(&cluster));
        let started = Instant::now();
        let handle = launch_replicated_fan(&cluster, &app, n);
        let r = handle.wait(WAIT).unwrap();
        let elapsed = started.elapsed();
        assert!(
            handle.wait(Duration::from_millis(500)).is_err(),
            "seed={seed}: result must be delivered exactly once"
        );
        (r, elapsed)
    });
    let expect: u64 = (0..n as u64).map(|i| i * i).sum();
    assert_eq!(result.as_u64().unwrap(), expect, "seed={seed}");
    assert!(
        elapsed < pause_for / 2,
        "seed={seed}: hedging must beat the {pause_for:?} pause, took {elapsed:?}"
    );
    let fired: u64 = (0..4)
        .map(|i| cluster.site(i).inner().metrics.snapshot().hedges_fired)
        .sum();
    assert!(
        fired >= 1,
        "seed={seed}: frames on the frozen site must have been hedged"
    );
}

/// Rolling-restart cell of the fault matrix (the zero-downtime tentpole
/// acceptance): every one of the six original sites is restarted, one at
/// a time — graceful drain, then a fresh site rejoins through a peer
/// that is still up — while the paper's prime search runs throughout.
/// The bar: the right answer exactly once, zero quarantines, and zero
/// crash verdicts (a planned departure must never look like a failure).
fn rolling_restart_drill(seed: u64) {
    let trace = TraceLog::new();
    let cfg = chaos_config();
    let mut cluster =
        InProcessCluster::with_configs(vec![cfg.clone(); 6], Some(trace.clone())).unwrap();
    // Long enough to still be in flight while all six restarts happen.
    let prog = PrimesProgram {
        p: 60,
        width: 16,
        spin: 0,
        sleep_us: 8_000,
    };
    let handle = prog.launch(cluster.site(0)).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    // Seed staggers how long the cluster settles between restarts.
    let settle = Duration::from_millis(100 + (seed % 3) * 100);
    for victim in 0..6usize {
        cluster
            .site(victim)
            .drain()
            .unwrap_or_else(|e| panic!("seed={seed}: drain of site {victim} failed: {e}"));
        assert_eq!(
            cluster.site(victim).inner().metrics.drain_completed.get(),
            1,
            "seed={seed}: site {victim} must record a completed drain"
        );
        // Rejoin through a peer that is still up: the next original site
        // for early victims, the first replacement once they run out.
        let contact = cluster.site(victim + 1).addr();
        let idx = cluster
            .add_site_via(cfg.clone(), &contact)
            .unwrap_or_else(|e| {
                panic!("seed={seed}: rejoin after draining site {victim} failed: {e}")
            });
        assert!(cluster.site(idx).id().is_valid());
        std::thread::sleep(settle);
    }
    let result = handle.wait(WAIT).unwrap();
    assert_eq!(
        result.as_u64().unwrap(),
        nth_prime(60),
        "seed={seed}: the 60th prime must survive six rolling restarts"
    );
    assert!(
        handle.wait(Duration::from_millis(500)).is_err(),
        "seed={seed}: result must be delivered exactly once"
    );
    assert_eq!(
        trace
            .filter(|e| matches!(e, TraceEvent::FrameQuarantined { .. }))
            .len(),
        0,
        "seed={seed}: zero quarantines across six restarts"
    );
    assert_eq!(
        trace
            .filter(|e| matches!(e, TraceEvent::SiteGone { crashed: true, .. }))
            .len(),
        0,
        "seed={seed}: a planned departure must never be declared a crash"
    );
}

/// Drain-under-partition cell of the fault matrix: a site drains while
/// blackholed from one (non-successor) peer. The Draining/SignOff gossip
/// to that peer is lost — it may honestly suspect the departed site —
/// but the relocation to the successor goes through, the drain
/// completes, and the program finishes exactly once with nothing
/// quarantined.
fn drain_under_partition_drill(seed: u64) {
    let trace = TraceLog::new();
    let cluster =
        InProcessCluster::with_configs(vec![chaos_config(); 5], Some(trace.clone())).unwrap();
    let prog = PrimesProgram {
        p: 40,
        width: 8,
        spin: 0,
        sleep_us: 4_000,
    };
    let handle = prog.launch(cluster.site(0)).unwrap();
    // Seed staggers when the partition opens relative to the drain.
    let partition_at = Duration::from_millis(200 + (seed % 3) * 100);
    let scenario = ChaosScenario::new()
        .at(
            partition_at,
            ChaosAction::Partition {
                a: 1,
                b: 3,
                heal_after: Duration::from_millis(1_500),
            },
        )
        .at(
            partition_at + Duration::from_millis(100),
            ChaosAction::Drain { site: 3 },
        );
    let result = std::thread::scope(|s| {
        s.spawn(|| scenario.run(&cluster));
        handle.wait(WAIT).unwrap()
    });
    assert_eq!(result.as_u64().unwrap(), nth_prime(40), "seed={seed}");
    assert!(
        handle.wait(Duration::from_millis(500)).is_err(),
        "seed={seed}: result must be delivered exactly once"
    );
    assert_eq!(
        cluster.site(3).inner().metrics.drain_completed.get(),
        1,
        "seed={seed}: the drain must complete despite the partition"
    );
    assert_eq!(
        trace
            .filter(|e| matches!(e, TraceEvent::FrameQuarantined { .. }))
            .len(),
        0,
        "seed={seed}: zero quarantines"
    );
}

/// CI fault-matrix hook: one scripted drill parameterized by environment.
///
/// - `SDVM_CHAOS_PLAN`: `reliable` (default), `udp_like`,
///   `partition_heal`, `pause`, `poison_panic` (a handler panics on a
///   lossy transport), `poison_fail` (a handler fails during a
///   partition-and-heal), `replica_partition` (a lost replica
///   invalidation must be healed by the TTL lease), `sdc_corrupt`
///   (silent bit flips are outvoted by k = 3 replication on a lossy
///   transport), `hedge_straggler` (a frozen site's work is rescued
///   by hedge duplicates), `rolling_restart` (every site of a loaded
///   six-site cluster is drained and replaced, one at a time), or
///   `drain_under_partition` (a site drains while blackholed from a
///   non-successor peer).
/// - `SDVM_CHAOS_SEED`: RNG seed for the fault plan (default 1).
#[test]
fn fault_matrix_scenario() {
    let plan = std::env::var("SDVM_CHAOS_PLAN").unwrap_or_else(|_| "reliable".into());
    let seed: u64 = std::env::var("SDVM_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    match plan.as_str() {
        "replica_partition" => {
            return replica_partition_drill(seed);
        }
        "sdc_corrupt" => {
            return sdc_corrupt_drill(seed);
        }
        "hedge_straggler" => {
            return hedge_straggler_drill(seed);
        }
        "rolling_restart" => {
            return rolling_restart_drill(seed);
        }
        "drain_under_partition" => {
            return drain_under_partition_drill(seed);
        }
        "poison_panic" => {
            return poison_drill(
                AppFaultKind::Panic,
                "poison_panic",
                seed,
                ChaosScenario::new(),
            );
        }
        "poison_fail" => {
            let scenario = ChaosScenario::new().at(
                Duration::from_millis(100),
                ChaosAction::Partition {
                    a: 0,
                    b: 3,
                    heal_after: Duration::from_millis(500),
                },
            );
            return poison_drill(AppFaultKind::Fail, "poison_fail", seed, scenario);
        }
        _ => {}
    }
    let cluster = InProcessCluster::new(4, chaos_config()).unwrap();
    let mut scenario = ChaosScenario::new();
    match plan.as_str() {
        "reliable" => {}
        "udp_like" => cluster.hub().set_default_plan(FaultPlan::udp_like(seed)),
        "partition_heal" => {
            scenario = scenario.at(
                Duration::from_millis(300),
                ChaosAction::Partition {
                    a: 0,
                    b: 3,
                    heal_after: Duration::from_millis(500),
                },
            );
        }
        "pause" => {
            scenario = scenario.at(
                Duration::from_millis(300),
                ChaosAction::Pause {
                    site: 2,
                    for_: Duration::from_millis(1_500),
                },
            );
        }
        other => panic!("unknown SDVM_CHAOS_PLAN {other:?}"),
    }
    let prog = PrimesProgram {
        p: 40,
        width: 8,
        spin: 0,
        sleep_us: 4_000,
    };
    let handle = prog.launch(cluster.site(0)).unwrap();
    let result = std::thread::scope(|s| {
        s.spawn(|| scenario.run(&cluster));
        handle.wait(WAIT).unwrap()
    });
    assert_eq!(
        result.as_u64().unwrap(),
        nth_prime(40),
        "plan={plan} seed={seed}"
    );
    assert!(handle.wait(Duration::from_millis(500)).is_err());
}
