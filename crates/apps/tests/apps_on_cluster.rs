//! The example applications executed on real in-process SDVM clusters,
//! checked against their sequential references.

use sdvm_apps::{
    mandelbrot::MandelbrotProgram,
    matmul::MatmulProgram,
    montecarlo::MonteCarloProgram,
    primes::{nth_prime, PrimesProgram},
};
use sdvm_core::{InProcessCluster, SiteConfig};
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

#[test]
fn primes_single_site() {
    let cluster = InProcessCluster::new(1, SiteConfig::default()).unwrap();
    let prog = PrimesProgram::new(25, 6);
    let handle = prog.launch(cluster.site(0)).unwrap();
    let result = handle.wait(WAIT).unwrap();
    assert_eq!(result.as_u64().unwrap(), nth_prime(25)); // 97
}

#[test]
fn primes_on_cluster_matches_reference() {
    let cluster = InProcessCluster::new(3, SiteConfig::default()).unwrap();
    let prog = PrimesProgram::new(60, 8);
    let handle = prog.launch(cluster.site(0)).unwrap();
    let result = handle.wait(WAIT).unwrap();
    assert_eq!(result.as_u64().unwrap(), nth_prime(60)); // 281
}

#[test]
fn primes_width_does_not_change_the_answer() {
    let cluster = InProcessCluster::new(2, SiteConfig::default()).unwrap();
    for width in [3usize, 10, 20] {
        let handle = PrimesProgram::new(30, width)
            .launch(cluster.site(0))
            .unwrap();
        assert_eq!(handle.wait(WAIT).unwrap().as_u64().unwrap(), nth_prime(30));
    }
}

#[test]
fn mandelbrot_checksum_matches() {
    let cluster = InProcessCluster::new(2, SiteConfig::default()).unwrap();
    let prog = MandelbrotProgram {
        rows: 24,
        cols: 32,
        max_iter: 150,
    };
    let handle = prog.launch(cluster.site(0)).unwrap();
    let result = handle.wait(WAIT).unwrap();
    assert_eq!(result.as_u64().unwrap(), prog.reference());
}

#[test]
fn matmul_through_attraction_memory() {
    let cluster = InProcessCluster::new(2, SiteConfig::default()).unwrap();
    let prog = MatmulProgram { nb: 2, bs: 4 };
    let handle = prog.launch(cluster.site(0)).unwrap();
    let result = handle.wait(WAIT).unwrap();
    assert_eq!(result.as_u64().unwrap(), prog.reference());
}

#[test]
fn montecarlo_hits_match_reference() {
    let cluster = InProcessCluster::new(2, SiteConfig::default()).unwrap();
    let prog = MonteCarloProgram {
        tasks: 12,
        samples: 5_000,
    };
    let handle = prog.launch(cluster.site(0)).unwrap();
    let result = handle.wait(WAIT).unwrap();
    assert_eq!(result.as_u64().unwrap(), prog.reference());
    let est = prog.estimate(result.as_u64().unwrap());
    assert!((est - std::f64::consts::PI).abs() < 0.1);
}

#[test]
fn nqueens_dynamic_tree_on_cluster() {
    use sdvm_apps::nqueens::{solutions, NQueensProgram};
    let cluster = InProcessCluster::new(2, SiteConfig::default()).unwrap();
    for (n, depth) in [(6u32, 2u32), (7, 2), (8, 3)] {
        let prog = NQueensProgram {
            n,
            parallel_depth: depth,
        };
        let handle = prog.launch(cluster.site(0)).unwrap();
        let result = handle.wait(WAIT).unwrap();
        assert_eq!(
            result.as_u64().unwrap(),
            solutions(n),
            "n={n} depth={depth}"
        );
    }
}

#[test]
fn nqueens_graph_runs_on_simulator() {
    use sdvm_apps::nqueens::NQueensProgram;
    let (g, total) = NQueensProgram {
        n: 8,
        parallel_depth: 3,
    }
    .graph();
    assert_eq!(total, 92);
    // The irregular tree must still complete and distribute on the sim.
    let m = sdvm_sim_shim::run(g);
    assert!(m.1 >= 2, "irregular tree should spread over sites");
    let _ = m;
}

// Minimal local shim so this test file doesn't force a sdvm-sim dev-dep
// onto every consumer; apps' dev-deps include sdvm-sim via the bench
// crate's tests otherwise.
mod sdvm_sim_shim {
    pub fn run(g: sdvm_cdag::Cdag) -> (f64, usize) {
        let m = sdvm_sim::Simulation::new(sdvm_sim::SimConfig::homogeneous(4), g).run();
        let active = m.executed_per_site.iter().filter(|&&e| e > 0).count();
        (m.makespan, active)
    }
}
