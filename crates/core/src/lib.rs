//! The SDVM daemon: the core of the Self Distributing Virtual Machine.
//!
//! One [`Site`] is one machine's daemon. It is structured exactly like the
//! paper's Fig. 3, as a set of *managers* in three layers:
//!
//! - **execution layer** — [`managers::processing`],
//!   [`managers::scheduling`], [`managers::code`], [`managers::memory`]
//!   (the attraction memory) and [`managers::io`]: enough to run SDVM
//!   programs on a single site;
//! - **maintenance layer** — [`managers::cluster`], [`managers::program`],
//!   [`managers::site_mgr`] and [`managers::security`];
//! - **communication layer** — `managers::message` and
//!   `managers::network`.
//!
//! Programs are built from *microthreads* (Rust handler functions, see
//! [`thread`]) fired by *microframes* ([`frame`]) under dataflow
//! synchronization. The [`api`] module offers the program-building and
//! cluster-building entry points; [`trace`] records the "career of
//! microframes" (Fig. 5) and message hops (Fig. 6) as checkable events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod chaos;
pub mod checkpoint;
pub mod config;
pub mod coord;
pub mod frame;
pub mod managers;
pub mod pending;
pub mod site;
pub mod telemetry;
pub mod thread;
pub mod trace;

pub use api::{AppBuilder, ExecCtx, InProcessCluster, ProgramHandle};
pub use chaos::{AppFault, AppFaultKind, ChaosAction, ChaosEvent, ChaosScenario};
pub use checkpoint::ProgramSnapshot;
pub use config::SiteConfig;
pub use frame::Microframe;
pub use managers::cluster::{DeadView, MemberView, MembershipView};
pub use managers::deadletter::{DeadLetter, DeadLetterManager};
pub use managers::replication::ReplicationManager;
pub use sdvm_types::{ReplicaSelector, ReplicationPolicy};
pub use site::Site;
pub use telemetry::{
    cluster_prometheus_text, digest_of, perfetto_trace_json, prometheus_text, ClusterRollup,
    ClusterTotals, FlightRecorder, HistogramSnapshot, SiteMetrics,
};
pub use thread::{AppRegistry, ThreadFn, ThreadSpec};
pub use trace::{BusEvent, Category, TraceEvent, TraceLog};
