//! Microthreads: the code fragments of SDVM programs.
//!
//! A microthread is a short, atomically executed code fragment; its start
//! arguments come from a microframe (paper §3.1, Fig. 2). The prototype
//! compiled C fragments with `g++` on the fly; here a microthread's
//! *behaviour* is a registered Rust handler ([`ThreadFn`]), while its
//! *distribution* (which sites hold a binary for which platform, shipping
//! source as a fallback, compiling on the fly) is modelled explicitly by
//! the code manager — see DESIGN.md §1 for the substitution argument.

use crate::api::ExecCtx;
use parking_lot::RwLock;
use sdvm_types::{MicrothreadId, ProgramId, SdvmResult};
use std::collections::HashMap;
use std::sync::Arc;

/// The behaviour of one microthread. Handlers are run to completion,
/// uninterrupted (microthreads are the atomic execution unit); all
/// interaction with the SDVM goes through the [`ExecCtx`] — the paper's
/// "special instructions [...] which represent the only interface between
/// the program running on the SDVM and the SDVM itself".
pub type ThreadFn = Arc<dyn Fn(&mut ExecCtx<'_>) -> SdvmResult<()> + Send + Sync>;

/// Declaration of one microthread in a program's code table.
#[derive(Clone)]
pub struct ThreadSpec {
    /// Human-readable name (shows up in traces and DOT exports).
    pub name: String,
    /// The handler.
    pub func: ThreadFn,
}

impl std::fmt::Debug for ThreadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadSpec({})", self.name)
    }
}

/// Index of the hidden result-delivery microthread appended to every
/// program (its single frame routes the program's final value back to the
/// waiting [`ProgramHandle`](crate::api::ProgramHandle)).
pub const RESULT_THREAD_INDEX: u32 = u32::MAX;

/// The in-process registry of program code.
///
/// Every site of a cluster resolves `MicrothreadId → ThreadFn` here —
/// the analogue of all machines having the program installed or shipped.
/// What the code *manager* tracks on top is availability: which
/// `(thread, platform)` binaries a site holds, when source must be
/// shipped instead, and the compile-on-the-fly latency.
#[derive(Default)]
pub struct AppRegistry {
    programs: RwLock<HashMap<ProgramId, RegisteredProgram>>,
}

struct RegisteredProgram {
    name: String,
    threads: Vec<ThreadSpec>,
}

impl AppRegistry {
    /// An empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Register a program's code table.
    pub fn register(&self, program: ProgramId, name: &str, threads: Vec<ThreadSpec>) {
        self.programs.write().insert(
            program,
            RegisteredProgram {
                name: name.to_string(),
                threads,
            },
        );
    }

    /// Remove a terminated program's code.
    pub fn unregister(&self, program: ProgramId) {
        self.programs.write().remove(&program);
    }

    /// Resolve a microthread's handler.
    pub fn resolve(&self, id: MicrothreadId) -> Option<ThreadFn> {
        let programs = self.programs.read();
        let prog = programs.get(&id.program)?;
        prog.threads.get(id.index as usize).map(|s| s.func.clone())
    }

    /// A microthread's name (for traces).
    pub fn thread_name(&self, id: MicrothreadId) -> String {
        if id.index == RESULT_THREAD_INDEX {
            return "__result".to_string();
        }
        let programs = self.programs.read();
        programs
            .get(&id.program)
            .and_then(|p| p.threads.get(id.index as usize))
            .map(|s| s.name.clone())
            .unwrap_or_else(|| format!("{id}"))
    }

    /// The program's name, if registered.
    pub fn program_name(&self, program: ProgramId) -> Option<String> {
        self.programs.read().get(&program).map(|p| p.name.clone())
    }

    /// Number of microthreads in the program's code table.
    pub fn thread_count(&self, program: ProgramId) -> usize {
        self.programs
            .read()
            .get(&program)
            .map(|p| p.threads.len())
            .unwrap_or(0)
    }

    /// Whether the program is known here.
    pub fn knows(&self, program: ProgramId) -> bool {
        self.programs.read().contains_key(&program)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    fn noop() -> ThreadFn {
        Arc::new(|_ctx| Ok(()))
    }

    #[test]
    fn register_resolve_unregister() {
        let reg = AppRegistry::new();
        let p = ProgramId(1);
        assert!(!reg.knows(p));
        reg.register(
            p,
            "demo",
            vec![
                ThreadSpec {
                    name: "a".into(),
                    func: noop(),
                },
                ThreadSpec {
                    name: "b".into(),
                    func: noop(),
                },
            ],
        );
        assert!(reg.knows(p));
        assert_eq!(reg.thread_count(p), 2);
        assert_eq!(reg.program_name(p).as_deref(), Some("demo"));
        assert!(reg.resolve(MicrothreadId::new(p, 0)).is_some());
        assert!(reg.resolve(MicrothreadId::new(p, 1)).is_some());
        assert!(reg.resolve(MicrothreadId::new(p, 2)).is_none());
        assert_eq!(reg.thread_name(MicrothreadId::new(p, 1)), "b");
        reg.unregister(p);
        assert!(!reg.knows(p));
        assert!(reg.resolve(MicrothreadId::new(p, 0)).is_none());
    }

    #[test]
    fn result_thread_name() {
        let reg = AppRegistry::new();
        assert_eq!(
            reg.thread_name(MicrothreadId::new(ProgramId(1), RESULT_THREAD_INDEX)),
            "__result"
        );
    }

    #[test]
    fn unknown_thread_name_falls_back_to_id() {
        let reg = AppRegistry::new();
        let name = reg.thread_name(MicrothreadId::new(ProgramId(9), 3));
        assert!(name.contains("prog9"), "{name}");
    }
}
