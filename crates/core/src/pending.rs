//! Request/response correlation for blocking remote operations.
//!
//! Worker threads block on remote memory reads, code fetches and help
//! requests; the router thread completes them when the matching reply
//! (`in_reply_to == seq`) arrives. A crashed peer simply never answers —
//! the waiter times out and can retry elsewhere, which is exactly the
//! paper's "damage is diminished" behaviour.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use sdvm_types::{SdvmError, SdvmResult};
use sdvm_wire::SdMessage;
use std::collections::HashMap;
use std::time::Duration;

/// Outstanding requests of one site.
#[derive(Default)]
pub struct PendingMap {
    waiters: Mutex<HashMap<u64, Sender<SdMessage>>>,
}

impl PendingMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register interest in the reply to `seq`.
    pub fn register(&self, seq: u64) -> Receiver<SdMessage> {
        let (tx, rx) = bounded(1);
        self.waiters.lock().insert(seq, tx);
        rx
    }

    /// Deliver a reply; returns `true` if a waiter consumed it.
    pub fn complete(&self, in_reply_to: u64, msg: SdMessage) -> bool {
        // Send while holding the map lock: a waiter that is timing out
        // concurrently must acquire the same lock in `cancel` before its
        // post-cancel drain, so the message is already in the (bounded-1,
        // never-blocking) channel when it looks — no reply can fall into
        // the gap between removal and send.
        let mut waiters = self.waiters.lock();
        if let Some(tx) = waiters.remove(&in_reply_to) {
            // A waiter that timed out and dropped its receiver is fine.
            let _ = tx.send(msg);
            true
        } else {
            false
        }
    }

    /// Give up on a request (timeout path).
    pub fn cancel(&self, seq: u64) {
        self.waiters.lock().remove(&seq);
    }

    /// Block for the reply to `seq` for at most `timeout`.
    pub fn await_reply(
        &self,
        seq: u64,
        rx: &Receiver<SdMessage>,
        timeout: Duration,
    ) -> SdvmResult<SdMessage> {
        match rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(_) => {
                // Cancel first so a concurrent `complete` can no longer
                // claim the reply, then drain anything that was sent in
                // the race window — otherwise a reply carrying state
                // (e.g. a HelpReply's microframe) would be lost: the
                // completer believes it was delivered, the waiter
                // believes it never came.
                self.cancel(seq);
                if let Ok(m) = rx.try_recv() {
                    return Ok(m);
                }
                Err(SdvmError::Timeout(format!("no reply to request #{seq}")))
            }
        }
    }

    /// Number of requests still waiting (observability).
    pub fn outstanding(&self) -> usize {
        self.waiters.lock().len()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use sdvm_types::{ManagerId, SiteId};
    use sdvm_wire::Payload;

    fn msg(seq: u64, reply_to: u64) -> SdMessage {
        let mut m = SdMessage::new(
            SiteId(2),
            ManagerId::Scheduling,
            SiteId(1),
            ManagerId::Scheduling,
            seq,
            Payload::Pong { token: 0 },
        );
        m.in_reply_to = Some(reply_to);
        m
    }

    #[test]
    fn complete_wakes_waiter() {
        let p = PendingMap::new();
        let rx = p.register(5);
        assert!(p.complete(5, msg(9, 5)));
        let got = p.await_reply(5, &rx, Duration::from_millis(100)).unwrap();
        assert_eq!(got.in_reply_to, Some(5));
        assert_eq!(p.outstanding(), 0);
    }

    #[test]
    fn unknown_reply_is_reported() {
        let p = PendingMap::new();
        assert!(!p.complete(99, msg(1, 99)));
    }

    #[test]
    fn timeout_cancels() {
        let p = PendingMap::new();
        let rx = p.register(7);
        let err = p
            .await_reply(7, &rx, Duration::from_millis(10))
            .unwrap_err();
        assert!(matches!(err, SdvmError::Timeout(_)));
        assert_eq!(p.outstanding(), 0);
        // A late reply after timeout is dropped without panic.
        assert!(!p.complete(7, msg(2, 7)));
    }

    #[test]
    fn concurrent_waiters() {
        let p = std::sync::Arc::new(PendingMap::new());
        let mut handles = Vec::new();
        for seq in 0..8u64 {
            let rx = p.register(seq);
            let p2 = p.clone();
            handles.push(std::thread::spawn(move || {
                p2.await_reply(seq, &rx, Duration::from_secs(2)).unwrap()
            }));
        }
        for seq in (0..8u64).rev() {
            assert!(p.complete(seq, msg(100 + seq, seq)));
        }
        for (i, h) in handles.into_iter().enumerate() {
            let m = h.join().unwrap();
            assert_eq!(m.in_reply_to, Some(i as u64));
        }
    }
}
