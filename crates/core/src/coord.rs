//! Vivaldi network coordinates (wire v9): decentralized RTT prediction.
//!
//! Every site maintains a point in a 3-D Euclidean space plus a
//! non-Euclidean *height* modelling its access-link delay, exactly as in
//! Dabek et al.'s Vivaldi. Each measured RTT to a peer whose coordinate
//! is known moves this site's point a little along the spring between
//! the two points; after a handful of samples the pairwise distances
//! predict RTTs well enough to *rank* peers by proximity, which is all
//! the routing layers need (help targets, probe victims, replica
//! placement). No extra probe traffic is ever sent: samples come from
//! request/response pairs that already flow (help requests, direct
//! probes), and coordinates travel piggybacked on heartbeats and probe
//! acks.
//!
//! The update rule per sample (rtt in milliseconds, peer coordinate
//! `xj` with confidence `ej`):
//!
//! ```text
//! w      = ei / (ei + ej)                  // sample weight
//! dist   = |xi - xj| + hi + hj             // predicted rtt
//! es     = |dist - rtt| / rtt              // relative sample error
//! ei     = es*CE*w + ei*(1 - CE*w)         // confidence EWMA
//! delta  = CC * w
//! xi    += delta * (rtt - dist) * u(xi-xj) // spring displacement
//! ```
//!
//! `CE = CC = 0.25` (the paper's recommended constants). Convergence in
//! practice: with CC = 0.25 each sample removes ~25% of the prediction
//! error along one spring, so the relative fit error falls below 0.5
//! within ~10 samples and below ~0.25 within a few tens — the
//! [`VivaldiState::converged`] gate reflects exactly that bound, and
//! routing falls back to uniform selection until it holds.

use sdvm_wire::WireCoord;

/// Confidence EWMA gain (Vivaldi's `ce`).
const CE: f64 = 0.25;
/// Displacement gain (Vivaldi's `cc`).
const CC: f64 = 0.25;
/// Fraction of each measured RTT attributed to the access link (height).
const HEIGHT_FRACTION: f64 = 0.1;
/// Samples required before the coordinate may be trusted for routing.
const MIN_SAMPLES: u64 = 10;
/// Relative fit error below which the coordinate counts as converged.
const CONVERGED_ERR: f64 = 0.5;
/// Gain for the absolute-error EWMA exported as `sdvm_coord_error_ms`.
const ABS_ERR_GAIN: f64 = 0.1;

/// This site's Vivaldi coordinate plus the bookkeeping the update rule
/// and the telemetry gauge need. Cheap to copy under a lock.
#[derive(Clone, Debug)]
pub struct VivaldiState {
    /// Current coordinate (what gets gossiped).
    pub coord: WireCoord,
    /// RTT samples absorbed so far.
    pub samples: u64,
    /// EWMA of the absolute prediction error, milliseconds (telemetry).
    pub abs_error_ms: f64,
}

impl Default for VivaldiState {
    fn default() -> Self {
        VivaldiState {
            coord: WireCoord::origin(),
            samples: 0,
            abs_error_ms: 0.0,
        }
    }
}

impl VivaldiState {
    /// Absorb one RTT measurement (milliseconds) against a peer at
    /// `peer` coordinate. RTTs that are zero, negative, NaN or absurd
    /// are dropped — a poisoned sample must not fling the coordinate.
    pub fn observe(&mut self, peer: &WireCoord, rtt_ms: f64) {
        if !rtt_ms.is_finite() || rtt_ms <= 0.0 || rtt_ms > 120_000.0 {
            return;
        }
        let ei = self.coord.err.clamp(0.0, 1.0).max(1e-6);
        let ej = peer.err.clamp(0.0, 1.0).max(1e-6);
        let w = ei / (ei + ej);

        let dx = self.coord.x - peer.x;
        let dy = self.coord.y - peer.y;
        let dz = self.coord.z - peer.z;
        let euclid = (dx * dx + dy * dy + dz * dz).sqrt();
        let dist = euclid + self.coord.h + peer.h;

        let es = (dist - rtt_ms).abs() / rtt_ms;
        self.coord.err = (es * CE * w + self.coord.err * (1.0 - CE * w)).clamp(0.0, 10.0);
        self.abs_error_ms += ABS_ERR_GAIN * ((dist - rtt_ms).abs() - self.abs_error_ms);

        // Unit vector away from the peer; when the points coincide
        // (every site starts at the origin) pick a deterministic
        // pseudo-random direction seeded by the sample count so the
        // cluster unfolds instead of oscillating along one axis.
        let (ux, uy, uz) = if euclid > 1e-9 {
            (dx / euclid, dy / euclid, dz / euclid)
        } else {
            unit_from_seed(self.samples)
        };

        let delta = CC * w;
        let disp = delta * (rtt_ms - dist);
        // Split the displacement between the Euclidean part and the
        // height: most of it moves the point, a fixed fraction grows or
        // shrinks the access-link delay (heights must stay >= 0).
        self.coord.x += disp * ux * (1.0 - HEIGHT_FRACTION);
        self.coord.y += disp * uy * (1.0 - HEIGHT_FRACTION);
        self.coord.z += disp * uz * (1.0 - HEIGHT_FRACTION);
        self.coord.h = (self.coord.h + disp * HEIGHT_FRACTION).max(0.0);
        self.samples += 1;
    }

    /// Whether the coordinate is trustworthy enough to drive routing.
    /// Until this holds every consumer must fall back to its uniform
    /// (pre-v9) selection behavior.
    pub fn converged(&self) -> bool {
        self.samples >= MIN_SAMPLES && self.coord.err < CONVERGED_ERR
    }

    /// Predicted RTT (ms) from this site to a peer coordinate.
    pub fn predict_ms(&self, peer: &WireCoord) -> f64 {
        self.coord.predicted_rtt_ms(peer)
    }
}

/// Deterministic unit vector on the sphere from a counter: splitmix64
/// into two angles. No RNG dependency, identical across runs.
fn unit_from_seed(seed: u64) -> (f64, f64, f64) {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let a = (z & 0xffff_ffff) as f64 / 4294967296.0 * std::f64::consts::TAU;
    let c = ((z >> 32) as f64 / 4294967296.0) * 2.0 - 1.0; // cos(polar)
    let s = (1.0 - c * c).sqrt();
    (s * a.cos(), s * a.sin(), c)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two sites repeatedly measuring a stable RTT must converge to
    /// coordinates whose predicted distance matches it.
    #[test]
    fn two_sites_converge_to_measured_rtt() {
        let mut a = VivaldiState::default();
        let mut b = VivaldiState::default();
        for _ in 0..200 {
            let ca = a.coord;
            let cb = b.coord;
            a.observe(&cb, 20.0);
            b.observe(&ca, 20.0);
        }
        assert!(a.converged(), "a not converged: {a:?}");
        assert!(b.converged(), "b not converged: {b:?}");
        let predicted = a.predict_ms(&b.coord);
        assert!(
            (predicted - 20.0).abs() < 4.0,
            "predicted {predicted} vs measured 20"
        );
    }

    /// A clustered topology (two LAN islands joined by a WAN link) must
    /// rank same-island peers closer than cross-island peers.
    #[test]
    fn islands_are_ranked_correctly() {
        let n = 8;
        let mut states: Vec<VivaldiState> = (0..n).map(|_| VivaldiState::default()).collect();
        let rtt = |i: usize, j: usize| -> f64 {
            if (i < n / 2) == (j < n / 2) {
                2.0 // same island
            } else {
                60.0 // cross-island
            }
        };
        // Deterministic all-pairs gossip rounds.
        for _round in 0..60 {
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let cj = states[j].coord;
                    states[i].observe(&cj, rtt(i, j));
                }
            }
        }
        // Site 0 must predict every same-island peer closer than every
        // cross-island peer.
        let near_max = (1..n / 2)
            .map(|j| states[0].predict_ms(&states[j].coord))
            .fold(0.0f64, f64::max);
        let far_min = (n / 2..n)
            .map(|j| states[0].predict_ms(&states[j].coord))
            .fold(f64::INFINITY, f64::min);
        assert!(
            near_max < far_min,
            "island ranking violated: near max {near_max} >= far min {far_min}"
        );
    }

    /// Convergence gate: fresh state is not converged, and garbage
    /// samples (zero, NaN, absurd) never move the coordinate.
    #[test]
    fn garbage_samples_are_dropped() {
        let mut s = VivaldiState::default();
        assert!(!s.converged());
        let before = s.coord;
        s.observe(&WireCoord::origin(), 0.0);
        s.observe(&WireCoord::origin(), -5.0);
        s.observe(&WireCoord::origin(), f64::NAN);
        s.observe(&WireCoord::origin(), 1e9);
        assert_eq!(s.samples, 0);
        assert_eq!(s.coord, before);
    }

    /// Heights never go negative regardless of sample order.
    #[test]
    fn height_stays_non_negative() {
        let mut s = VivaldiState::default();
        for i in 0..100 {
            let peer = WireCoord {
                x: (i % 7) as f64,
                ..WireCoord::origin()
            };
            s.observe(&peer, if i % 2 == 0 { 0.1 } else { 50.0 });
            assert!(s.coord.h >= 0.0, "height went negative at sample {i}");
        }
    }
}
