//! Deterministic chaos harness: scripted fault scenarios against an
//! [`InProcessCluster`].
//!
//! A [`ChaosScenario`] is a fixed schedule of kills, pauses and link
//! partitions, each pinned to an offset from scenario start. Combined
//! with a seeded [`sdvm_net::FaultPlan`] on the hub, a scenario makes a
//! whole failure drill reproducible: the same seed and schedule yield
//! the same fault decisions, so a test can assert the *outcome* (right
//! answer, exactly-once delivery, reconverged membership) across runs.
//!
//! The runner executes the schedule on the calling thread, sleeping
//! between events; paired follow-ups (resume after a pause, heal after a
//! partition) are expanded into the same timeline, so overlapping faults
//! interleave exactly as scripted.

use crate::api::{ExecCtx, InProcessCluster};
use sdvm_types::{SdvmError, SdvmResult, SiteId};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One scripted fault.
#[derive(Clone, Copy, Debug)]
pub enum ChaosAction {
    /// Crash site `site` abruptly (sever + kill, no relocation).
    Kill {
        /// Index of the victim in the cluster.
        site: usize,
    },
    /// Freeze site `site` for `for_` (GC-pause emulation), then resume.
    Pause {
        /// Index of the frozen site.
        site: usize,
        /// Pause length.
        for_: Duration,
    },
    /// Blackhole the link between `a` and `b` (both directions), healing
    /// it after `heal_after`.
    Partition {
        /// One end of the cut link.
        a: usize,
        /// The other end.
        b: usize,
        /// Time until the link heals.
        heal_after: Duration,
    },
    /// Gracefully drain site `site` (planned departure): announce
    /// `Draining`, quiesce, relocate every owned object and frame to the
    /// successor, sign off. Blocks the scenario thread until the drain
    /// completes (steps scheduled behind it fire immediately once their
    /// time has passed). A failed drain leaves the site running with its
    /// work re-adopted; assert on the site's `drain_completed` metric to
    /// pin the outcome.
    Drain {
        /// Index of the departing site.
        site: usize,
    },
    /// Make one worker slot of site `site` exit its loop (the
    /// maintenance supervisor respawns it) — drills the die-and-respawn
    /// path of the execution engine.
    KillWorker {
        /// Index of the site losing a worker.
        site: usize,
    },
    /// Arm silent data corruption on site `site`: its `nth` outgoing
    /// result send gets `bit` flipped in the value. Deterministic (the
    /// trigger is a send count), so corruption drills replay exactly
    /// under a fixed seed and schedule.
    CorruptResult {
        /// Index of the corrupting site.
        site: usize,
        /// 1-based count of result sends on that site that triggers the
        /// flip.
        nth: u32,
        /// Bit to flip: byte `bit / 8` (mod value length), bit `bit % 8`.
        bit: u8,
    },
}

/// A fault pinned to an offset from scenario start.
#[derive(Clone, Copy, Debug)]
pub struct ChaosEvent {
    /// When the fault fires, relative to [`ChaosScenario::run`].
    pub at: Duration,
    /// What happens.
    pub action: ChaosAction,
}

/// Atomic steps a schedule expands into (follow-ups made explicit).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Step {
    Kill(usize),
    Drain(usize),
    Pause(usize),
    Resume(usize),
    Partition(usize, usize),
    Heal(usize, usize),
    KillWorker(usize),
    CorruptResult(usize, u32, u8),
}

/// A deterministic fault schedule.
#[derive(Clone, Debug, Default)]
pub struct ChaosScenario {
    events: Vec<ChaosEvent>,
}

impl ChaosScenario {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a fault at `at` from scenario start (builder style).
    pub fn at(mut self, at: Duration, action: ChaosAction) -> Self {
        self.events.push(ChaosEvent { at, action });
        self
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Expand paired follow-ups into one sorted timeline.
    fn timeline(&self) -> Vec<(Duration, Step)> {
        let mut steps = Vec::new();
        for ev in &self.events {
            match ev.action {
                ChaosAction::Kill { site } => steps.push((ev.at, Step::Kill(site))),
                ChaosAction::Drain { site } => steps.push((ev.at, Step::Drain(site))),
                ChaosAction::Pause { site, for_ } => {
                    steps.push((ev.at, Step::Pause(site)));
                    steps.push((ev.at + for_, Step::Resume(site)));
                }
                ChaosAction::Partition { a, b, heal_after } => {
                    steps.push((ev.at, Step::Partition(a, b)));
                    steps.push((ev.at + heal_after, Step::Heal(a, b)));
                }
                ChaosAction::KillWorker { site } => steps.push((ev.at, Step::KillWorker(site))),
                ChaosAction::CorruptResult { site, nth, bit } => {
                    steps.push((ev.at, Step::CorruptResult(site, nth, bit)))
                }
            }
        }
        steps.sort_by_key(|(at, _)| *at);
        steps
    }

    /// Execute the schedule against `cluster`, blocking until the last
    /// step fired. Run it from a helper thread (e.g. inside
    /// `std::thread::scope`) while the main thread awaits the program
    /// under test.
    pub fn run(&self, cluster: &InProcessCluster) {
        let start = Instant::now();
        for (at, step) in self.timeline() {
            if let Some(wait) = at.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            match step {
                Step::Kill(site) => cluster.crash(site),
                Step::Drain(site) => {
                    if let Err(e) = cluster.site(site).drain() {
                        eprintln!("chaos: drain of site index {site} failed: {e}");
                    }
                }
                Step::Pause(site) => cluster.pause_site(site),
                Step::Resume(site) => cluster.resume_site(site),
                Step::Partition(a, b) => cluster.partition(a, b),
                Step::Heal(a, b) => cluster.heal(a, b),
                Step::KillWorker(site) => cluster.site(site).kill_worker(),
                Step::CorruptResult(site, nth, bit) => cluster.corrupt_results(site, nth, bit),
            }
        }
    }
}

/// Kind of application fault injected by an [`AppFault`].
#[derive(Clone, Copy, Debug)]
pub enum AppFaultKind {
    /// The handler panics.
    Panic,
    /// The handler returns an application error.
    Fail,
    /// The handler hangs for the given duration, then runs normally.
    Hang(Duration),
}

/// Deterministic application-fault injection: wraps a microthread
/// handler so that its `nth` execution on a chosen site panics, fails
/// or hangs. Executions on other sites run the handler unchanged, so a
/// drill can pin the poison to one site of a cluster and assert exactly
/// where the quarantine happens.
#[derive(Clone)]
pub struct AppFault {
    /// Logical id of the site where the fault fires.
    pub site: SiteId,
    /// 1-based count of executions on `site` that triggers the fault.
    pub nth: u32,
    /// What happens on the triggering execution.
    pub kind: AppFaultKind,
    count: Arc<AtomicU32>,
}

impl AppFault {
    /// A fault firing on the `nth` execution of the wrapped handler on
    /// site `site`.
    pub fn new(site: SiteId, nth: u32, kind: AppFaultKind) -> Self {
        AppFault {
            site,
            nth,
            kind,
            count: Arc::new(AtomicU32::new(0)),
        }
    }

    /// Executions of the wrapped handler seen on the target site so far.
    pub fn seen(&self) -> u32 {
        self.count.load(Ordering::SeqCst)
    }

    /// Wrap a handler with this fault. Register the returned closure in
    /// place of `f` on the [`crate::AppBuilder`].
    pub fn wrap<F>(&self, f: F) -> impl Fn(&mut ExecCtx<'_>) -> SdvmResult<()> + Send + Sync
    where
        F: Fn(&mut ExecCtx<'_>) -> SdvmResult<()> + Send + Sync,
    {
        let fault = self.clone();
        move |ctx: &mut ExecCtx<'_>| {
            if ctx.site_id() == fault.site {
                let n = fault.count.fetch_add(1, Ordering::SeqCst) + 1;
                if n == fault.nth {
                    match fault.kind {
                        AppFaultKind::Panic => {
                            panic!("chaos: injected panic (execution {n})")
                        }
                        AppFaultKind::Fail => {
                            return Err(SdvmError::Application(format!(
                                "chaos: injected failure (execution {n})"
                            )));
                        }
                        AppFaultKind::Hang(d) => std::thread::sleep(d),
                    }
                }
            }
            f(ctx)
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    #[test]
    fn timeline_expands_and_sorts_followups() {
        let s = ChaosScenario::new()
            .at(
                Duration::from_millis(50),
                ChaosAction::Partition {
                    a: 0,
                    b: 1,
                    heal_after: Duration::from_millis(100),
                },
            )
            .at(
                Duration::from_millis(10),
                ChaosAction::Pause {
                    site: 2,
                    for_: Duration::from_millis(30),
                },
            )
            .at(Duration::from_millis(60), ChaosAction::Kill { site: 3 });
        assert_eq!(s.len(), 3);
        let t = s.timeline();
        let steps: Vec<Step> = t.iter().map(|(_, st)| *st).collect();
        assert_eq!(
            steps,
            vec![
                Step::Pause(2),
                Step::Resume(2),
                Step::Partition(0, 1),
                Step::Kill(3),
                Step::Heal(0, 1),
            ]
        );
        // Follow-ups land at event time + duration.
        assert_eq!(t[1].0, Duration::from_millis(40));
        assert_eq!(t[4].0, Duration::from_millis(150));
    }
}
