//! Microframes: dataflow argument containers (paper §3.1–3.2, Fig. 2).
//!
//! A microframe holds parameter slots, a pointer to its microthread, and
//! the target addresses its results go to. It becomes *executable* once
//! every slot is filled (dataflow firing) and is *consumed* by execution.

use sdvm_types::{
    GlobalAddress, MicrothreadId, ProgramId, SchedulingHint, SdvmError, SdvmResult, SiteId, Value,
};
use sdvm_wire::WireFrame;

/// Replica identity of a microframe dispatched by the replication
/// manager (vote or hedge mode). In-memory only — never serialized with
/// the frame itself; the wire carries it inside `ReplicaTask` and the
/// executor re-attaches it after `from_wire`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReplicaRun {
    /// The site holding the escrow entry (the frame's home).
    pub coordinator: SiteId,
    /// Dispatch round: bumped for tie-break re-executions and hedge
    /// duplicates, so stale ballots are fenced.
    pub generation: u32,
    /// Replica index within the round (0-based).
    pub replica: u8,
    /// Buffer result sends into a ballot and report them in
    /// `ReplicaDone` instead of applying them. Always `true` for both
    /// vote and hedge replicas — only the coordinator ever applies a
    /// (winning) ballot, so no consumer can observe two results.
    pub vote: bool,
}

/// A runtime microframe.
#[derive(Clone, Debug, PartialEq)]
pub struct Microframe {
    /// Global id (the frame is a special attraction-memory object).
    pub id: GlobalAddress,
    /// The microthread this frame fires.
    pub thread: MicrothreadId,
    /// Parameter slots (`None` = still missing).
    pub slots: Vec<Option<Value>>,
    /// Statically known result target addresses, available to the
    /// microthread at execution time.
    pub targets: Vec<GlobalAddress>,
    /// Scheduling hint (priority, stickiness).
    pub hint: SchedulingHint,
    /// Local retry count: how often this frame already failed on an
    /// infrastructure error and was re-enqueued with backoff. Not on the
    /// wire — a migrated or revived frame starts a fresh budget on its
    /// new site.
    pub retries: u32,
    /// Replica identity when this frame is a replication-manager
    /// dispatch (`None` for ordinary frames). In-memory only — not on
    /// the wire; `ReplicaTask` carries it separately.
    pub replica: Option<ReplicaRun>,
    missing: usize,
}

impl Microframe {
    /// A fresh frame waiting for `nslots` parameters.
    pub fn new(
        id: GlobalAddress,
        thread: MicrothreadId,
        nslots: usize,
        targets: Vec<GlobalAddress>,
        hint: SchedulingHint,
    ) -> Self {
        Microframe {
            id,
            thread,
            slots: vec![None; nslots],
            targets,
            hint,
            retries: 0,
            replica: None,
            missing: nslots,
        }
    }

    /// The program this frame belongs to.
    pub fn program(&self) -> ProgramId {
        self.thread.program
    }

    /// Parameters still missing.
    pub fn missing(&self) -> usize {
        self.missing
    }

    /// True once every parameter has arrived.
    pub fn is_executable(&self) -> bool {
        self.missing == 0
    }

    /// Apply a result to a slot. Returns `true` if the frame just became
    /// executable. Filling an out-of-range or already-filled slot is an
    /// error (each slot receives exactly one result).
    pub fn apply(&mut self, slot: u32, value: Value) -> SdvmResult<bool> {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            return Err(SdvmError::FrameSlot {
                frame: self.id,
                slot,
                reason: "out of range",
            });
        }
        if self.slots[idx].is_some() {
            return Err(SdvmError::FrameSlot {
                frame: self.id,
                slot,
                reason: "already filled",
            });
        }
        self.slots[idx] = Some(value);
        self.missing -= 1;
        Ok(self.missing == 0)
    }

    /// Read a filled parameter.
    pub fn param(&self, slot: u32) -> SdvmResult<&Value> {
        self.slots
            .get(slot as usize)
            .and_then(|s| s.as_ref())
            .ok_or(SdvmError::FrameSlot {
                frame: self.id,
                slot,
                reason: "not filled",
            })
    }

    /// Serialize for the wire (help replies, relocation, backups).
    pub fn to_wire(&self) -> WireFrame {
        WireFrame {
            id: self.id,
            thread: self.thread,
            slots: self.slots.clone(),
            targets: self.targets.clone(),
            hint: self.hint,
        }
    }

    /// Reconstruct from the wire.
    pub fn from_wire(w: WireFrame) -> Self {
        let missing = w.slots.iter().filter(|s| s.is_none()).count();
        Microframe {
            id: w.id,
            thread: w.thread,
            slots: w.slots,
            targets: w.targets,
            hint: w.hint,
            retries: 0,
            replica: None,
            missing,
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use sdvm_types::SiteId;

    fn mk(nslots: usize) -> Microframe {
        Microframe::new(
            GlobalAddress::new(SiteId(1), 1),
            MicrothreadId::new(ProgramId(1), 0),
            nslots,
            vec![GlobalAddress::new(SiteId(1), 2)],
            SchedulingHint::default(),
        )
    }

    #[test]
    fn dataflow_firing_rule() {
        let mut f = mk(3);
        assert!(!f.is_executable());
        assert!(!f.apply(0, Value::from_u64(1)).unwrap());
        assert!(!f.apply(2, Value::from_u64(3)).unwrap());
        assert_eq!(f.missing(), 1);
        assert!(f.apply(1, Value::from_u64(2)).unwrap(), "last param fires");
        assert!(f.is_executable());
    }

    #[test]
    fn zero_slot_frame_is_born_executable() {
        let f = mk(0);
        assert!(f.is_executable());
    }

    #[test]
    fn double_apply_rejected() {
        let mut f = mk(2);
        f.apply(0, Value::from_u64(1)).unwrap();
        let err = f.apply(0, Value::from_u64(9)).unwrap_err();
        assert!(matches!(
            err,
            SdvmError::FrameSlot {
                reason: "already filled",
                ..
            }
        ));
        assert_eq!(f.missing(), 1, "failed apply must not consume a slot");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = mk(1);
        assert!(matches!(
            f.apply(5, Value::empty()),
            Err(SdvmError::FrameSlot {
                reason: "out of range",
                ..
            })
        ));
    }

    #[test]
    fn param_access() {
        let mut f = mk(2);
        f.apply(1, Value::from_i64(-7)).unwrap();
        assert_eq!(f.param(1).unwrap().as_i64().unwrap(), -7);
        assert!(f.param(0).is_err(), "unfilled slot");
        assert!(f.param(9).is_err(), "out of range");
    }

    #[test]
    fn wire_roundtrip_preserves_missing_count() {
        let mut f = mk(3);
        f.apply(1, Value::from_u64(5)).unwrap();
        let back = Microframe::from_wire(f.to_wire());
        assert_eq!(back, f);
        assert_eq!(back.missing(), 2);
    }

    #[test]
    fn retry_count_is_local_and_resets_over_the_wire() {
        let mut f = mk(0);
        f.retries = 3;
        let back = Microframe::from_wire(f.to_wire());
        assert_eq!(back.retries, 0, "a migrated frame gets a fresh budget");
    }
}
