//! Per-site configuration.

use sdvm_types::{IdAllocStrategy, PlatformId, QueuePolicy};
use std::time::Duration;

/// Configuration of one SDVM site (daemon).
#[derive(Clone, Debug)]
pub struct SiteConfig {
    /// Platform id of this machine (architecture + OS); drives the code
    /// manager's binary-vs-source decisions on heterogeneous clusters.
    pub platform: PlatformId,
    /// Relative CPU speed announced to the cluster (1.0 = reference).
    pub speed: f64,
    /// Number of microthreads executed in (virtual) parallel by the
    /// processing manager to hide memory/communication latency. The paper
    /// found "about 5" to work well (§4); experiment E3 sweeps this.
    pub slots: usize,
    /// Local scheduling discipline (paper: FIFO, against starvation).
    pub local_policy: QueuePolicy,
    /// Discipline used when answering help requests (paper: LIFO, for
    /// latency hiding).
    pub help_policy: QueuePolicy,
    /// Start password enabling the security manager; `None` runs the
    /// cluster unencrypted ("insular cluster", §4).
    pub password: Option<String>,
    /// Volunteer as a code distribution site (stores every microthread).
    pub code_distribution: bool,
    /// Simulated duration of compiling a microthread's source on the fly.
    pub compile_latency: Duration,
    /// Simulated per-artifact transfer cost added when receiving binary
    /// code (zero by default; E10 uses it).
    pub binary_fetch_latency: Duration,
    /// How logical site ids are allocated (paper discusses three concepts).
    pub id_alloc: IdAllocStrategy,
    /// Mirror frames/objects to a backup site and recover them when a
    /// site crashes (the paper's crash management, §2.2/\[4\]).
    pub crash_tolerance: bool,
    /// Heartbeat gossip period.
    pub heartbeat_interval: Duration,
    /// Silence after which a site is declared crashed (when crash
    /// tolerance is on).
    pub crash_timeout: Duration,
    /// Use the two-phase (suspect → confirm) failure detector: silence
    /// past `suspect_timeout` only *suspects* a site and triggers
    /// indirect probes; `declare_crashed` needs silence past
    /// `crash_timeout` or a quorum of gossiped suspicions. Off, silence
    /// past `crash_timeout` kills directly (the pre-suspicion behavior).
    pub suspicion: bool,
    /// Silence after which a site becomes *suspected* (two-phase
    /// detector only). Must be below `crash_timeout` to buy the suspect
    /// a probing window before the verdict.
    pub suspect_timeout: Duration,
    /// How many other members are asked to probe a suspect indirectly.
    pub probe_fanout: usize,
    /// Gossiped suspicions (distinct accusers, this site included) that
    /// escalate a suspect to crashed before `crash_timeout` elapses.
    pub suspicion_quorum: usize,
    /// Rank help-request targets, replica placement and probe victims by
    /// Vivaldi-predicted proximity (wire v9). Until this site's
    /// coordinate converges, selection falls back to the uniform
    /// pre-coordinate behavior either way — the knob exists for A/B
    /// ablation against uniform selection on converged clusters.
    pub proximity_routing: bool,
    /// How long an idle worker waits for a help reply before trying the
    /// next site.
    pub help_timeout: Duration,
    /// Timeout for blocking remote operations (memory reads, code fetch).
    pub request_timeout: Duration,
    /// How often a microframe that failed on an *infrastructure* error
    /// (transport, timeout, missing object) is re-tried before it is
    /// escalated to the dead-letter store as poison.
    pub max_frame_retries: u32,
    /// Backoff before the first retry; doubles per attempt (capped by
    /// `retry_backoff_cap`). Deterministic — no jitter — so drills can
    /// assert the exact delay schedule.
    pub retry_backoff_base: Duration,
    /// Upper bound on the per-retry backoff.
    pub retry_backoff_cap: Duration,
    /// Quiet period after which a frontend program with an undelivered
    /// result, no runnable frames and no in-flight requests is declared
    /// stuck (watchdog; the waiter gets `SdvmError::ProgramStuck`).
    pub stuck_timeout: Duration,
    /// Number of address-hashed shards the attraction memory is split
    /// into. More shards, less lock contention between workers touching
    /// unrelated objects; 1 reproduces the old single-mutex store.
    pub mem_shards: usize,
    /// Cache non-migrating remote reads as local replicas (copyset
    /// tracked at the owner, invalidated on write). Off, every remote
    /// read re-crosses the wire.
    pub replica_reads: bool,
    /// Lease on a cached replica: a replica older than this is ignored
    /// and re-fetched. Bounds staleness when an invalidation is lost
    /// (e.g. dropped during a network partition).
    pub replica_ttl: Duration,
    /// Bind address for the ops-plane HTTP listener serving
    /// `GET /metrics`, `/healthz` and `/status` (e.g. `"127.0.0.1:0"`
    /// to let the OS pick a port). `None` (the default) runs no
    /// listener at all — the hot path then pays nothing for the ops
    /// plane beyond the relaxed counter loads it already does.
    pub ops_addr: Option<String>,
    /// Directory where the flight recorder writes
    /// `postmortem-<site>-<seq>.json` black boxes on crash verdicts,
    /// frame quarantines, result divergence, or stuck programs.
    /// `None` (the default) disables the recorder.
    pub postmortem_dir: Option<std::path::PathBuf>,
}

impl Default for SiteConfig {
    fn default() -> Self {
        SiteConfig {
            platform: PlatformId(0),
            speed: 1.0,
            slots: 5,
            local_policy: QueuePolicy::Fifo,
            help_policy: QueuePolicy::Lifo,
            password: None,
            code_distribution: false,
            compile_latency: Duration::from_millis(20),
            binary_fetch_latency: Duration::ZERO,
            id_alloc: IdAllocStrategy::CentralServer,
            crash_tolerance: false,
            heartbeat_interval: Duration::from_millis(100),
            crash_timeout: Duration::from_millis(600),
            suspicion: true,
            suspect_timeout: Duration::from_millis(300),
            probe_fanout: 3,
            suspicion_quorum: 2,
            proximity_routing: true,
            help_timeout: Duration::from_millis(100),
            request_timeout: Duration::from_secs(5),
            max_frame_retries: 5,
            retry_backoff_base: Duration::from_millis(10),
            retry_backoff_cap: Duration::from_millis(500),
            stuck_timeout: Duration::from_secs(30),
            mem_shards: 8,
            replica_reads: true,
            replica_ttl: Duration::from_secs(2),
            ops_addr: None,
            postmortem_dir: None,
        }
    }
}

impl SiteConfig {
    /// Shorthand: default config with crash tolerance enabled.
    pub fn with_crash_tolerance(mut self) -> Self {
        self.crash_tolerance = true;
        self
    }

    /// Shorthand: default config with the given start password.
    pub fn with_password(mut self, pw: &str) -> Self {
        self.password = Some(pw.to_string());
        self
    }

    /// Shorthand: disable the two-phase detector (single-timeout kill).
    pub fn without_suspicion(mut self) -> Self {
        self.suspicion = false;
        self
    }

    /// Shorthand: set the retry budget and backoff schedule.
    pub fn with_retry_budget(mut self, retries: u32, base: Duration, cap: Duration) -> Self {
        self.max_frame_retries = retries;
        self.retry_backoff_base = base;
        self.retry_backoff_cap = cap;
        self
    }

    /// Shorthand: set the stuck-program watchdog timeout.
    pub fn with_stuck_timeout(mut self, t: Duration) -> Self {
        self.stuck_timeout = t;
        self
    }

    /// Shorthand: set the attraction-memory shard count.
    pub fn with_mem_shards(mut self, n: usize) -> Self {
        self.mem_shards = n.max(1);
        self
    }

    /// Shorthand: disable replica caching of remote reads.
    pub fn without_replica_reads(mut self) -> Self {
        self.replica_reads = false;
        self
    }

    /// Shorthand: set the replica staleness lease.
    pub fn with_replica_ttl(mut self, t: Duration) -> Self {
        self.replica_ttl = t;
        self
    }

    /// Shorthand: serve the ops-plane HTTP endpoints on `addr`
    /// (`"127.0.0.1:0"` picks a free port; query it via
    /// [`crate::site::Site::ops_addr`] after start).
    pub fn with_ops_addr(mut self, addr: &str) -> Self {
        self.ops_addr = Some(addr.to_string());
        self
    }

    /// Shorthand: enable the flight recorder, writing postmortem black
    /// boxes into `dir`.
    pub fn with_postmortem_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.postmortem_dir = Some(dir.into());
        self
    }

    /// Backoff before retry attempt `n` (1-based): `base · 2^(n-1)`,
    /// capped. Deterministic so tests can assert the schedule.
    pub fn retry_backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.retry_backoff_base
            .saturating_mul(factor)
            .min(self.retry_backoff_cap)
    }
}

/// True when `SDVM_DEBUG` was set in the environment at first use —
/// consulted once and cached, never re-read (the env lookup used to sit
/// on every failed execution).
pub fn debug_enabled() -> bool {
    static DEBUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEBUG.get_or_init(|| std::env::var_os("SDVM_DEBUG").is_some())
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SiteConfig::default();
        assert_eq!(c.slots, 5, "paper: about 5 virtual-parallel microthreads");
        assert_eq!(c.local_policy, QueuePolicy::Fifo);
        assert_eq!(c.help_policy, QueuePolicy::Lifo);
        assert!(
            c.password.is_none(),
            "security off by default on insular clusters"
        );
    }

    #[test]
    fn retry_backoff_schedule_is_deterministic_and_capped() {
        let c = SiteConfig::default().with_retry_budget(
            4,
            Duration::from_millis(10),
            Duration::from_millis(35),
        );
        assert_eq!(c.retry_backoff(1), Duration::from_millis(10));
        assert_eq!(c.retry_backoff(2), Duration::from_millis(20));
        assert_eq!(c.retry_backoff(3), Duration::from_millis(35), "capped");
        assert_eq!(c.retry_backoff(4), Duration::from_millis(35));
        // Huge attempt numbers don't overflow.
        assert_eq!(c.retry_backoff(1000), Duration::from_millis(35));
    }

    #[test]
    fn builders() {
        let c = SiteConfig::default()
            .with_crash_tolerance()
            .with_password("pw");
        assert!(c.crash_tolerance);
        assert_eq!(c.password.as_deref(), Some("pw"));
        assert!(c.suspicion, "two-phase detector on by default");
        assert!(!c.clone().without_suspicion().suspicion);
        assert!(
            c.suspect_timeout < c.crash_timeout,
            "suspicion must precede the verdict"
        );
    }
}
