//! Crash management (paper §2.2, §6, \[4\]): backup mirroring and recovery.
//!
//! When crash tolerance is enabled, every site continuously mirrors the
//! state it *owns* — incomplete microframes, queued executable frames and
//! global memory objects — to its *buddy*, the next alive site in id
//! order. Result applications are mirrored by the **sender** (to the
//! owner's buddy), so there is no window in which a result reaches only
//! the owner and dies with it. Execution of a frame retires its backup.
//!
//! When the cluster declares a site crashed, every site revives what it
//! holds in backup for the dead site; the succession map reroutes
//! directory lookups for addresses homed on the dead site. Semantics are
//! *at-least-once*: work not yet mirrored as consumed may re-execute —
//! duplicate results are dropped idempotently by the attraction memory.

use crate::frame::Microframe;
use crate::site::SiteInner;
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use sdvm_types::{GlobalAddress, ManagerId, ProgramId, SiteId, Value};
use sdvm_wire::{Payload, WireFrame, WireMemObject};
use std::collections::{HashMap, HashSet};

#[derive(Default)]
struct BackupState {
    /// owner → (frame address → wire frame as last mirrored).
    frames: HashMap<SiteId, HashMap<GlobalAddress, WireFrame>>,
    /// owner → (object address → object).
    objects: HashMap<SiteId, HashMap<GlobalAddress, WireMemObject>>,
    /// Results mirrored by senders, keyed by target frame (owner-agnostic
    /// because the sender's view of the owner may lag a migration).
    applied: HashMap<GlobalAddress, Vec<(u32, Value)>>,
    /// Frames known consumed (tombstones; suppress revival of stale
    /// backups).
    consumed: HashSet<GlobalAddress>,
}

/// A frame ready for revival: its last mirrored image plus the results
/// that arrived after mirroring.
type RevivableFrame = (WireFrame, Vec<(u32, Value)>);

/// The backup store of one site (holds *other* sites' mirrored state).
#[derive(Default)]
pub struct BackupManager {
    state: Mutex<BackupState>,
}

impl BackupManager {
    /// Fresh, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a mirrored frame (owner = message sender).
    pub fn on_frame(&self, owner: SiteId, frame: WireFrame) {
        let mut st = self.state.lock();
        // A fresh mirror supersedes an old migration-release/tombstone
        // only if it was a release; real consumption never recurs, and
        // frames are only re-mirrored when adopted alive.
        st.consumed.remove(&frame.id);
        st.frames.entry(owner).or_default().insert(frame.id, frame);
    }

    /// Record a mirrored result application.
    pub fn on_apply(&self, _from: SiteId, target: GlobalAddress, slot: u32, value: Value) {
        let mut st = self.state.lock();
        if st.consumed.contains(&target) {
            return;
        }
        let list = st.applied.entry(target).or_default();
        if !list.iter().any(|(s, _)| *s == slot) {
            list.push((slot, value));
        }
    }

    /// The frame was executed: drop all its backup state, tombstone it.
    pub fn on_consumed(&self, frame: GlobalAddress) {
        let mut st = self.state.lock();
        for bucket in st.frames.values_mut() {
            bucket.remove(&frame);
        }
        st.applied.remove(&frame);
        st.consumed.insert(frame);
    }

    /// The frame migrated away from `owner`: drop it from that bucket
    /// only (the new owner mirrors it afresh).
    pub fn on_release(&self, owner: SiteId, frame: GlobalAddress) {
        let mut st = self.state.lock();
        if let Some(bucket) = st.frames.get_mut(&owner) {
            bucket.remove(&frame);
        }
    }

    /// Record a mirrored memory object.
    pub fn on_object(&self, owner: SiteId, obj: WireMemObject) {
        self.state
            .lock()
            .objects
            .entry(owner)
            .or_default()
            .insert(obj.addr, obj);
    }

    /// Counts (frames, objects) held for `owner` — observability.
    pub fn held_for(&self, owner: SiteId) -> (usize, usize) {
        let st = self.state.lock();
        (
            st.frames.get(&owner).map(|b| b.len()).unwrap_or(0),
            st.objects.get(&owner).map(|b| b.len()).unwrap_or(0),
        )
    }

    /// Drop everything belonging to a terminated program.
    pub fn purge_program(&self, program: ProgramId) {
        let mut st = self.state.lock();
        for bucket in st.frames.values_mut() {
            bucket.retain(|_, f| f.thread.program != program);
        }
        for bucket in st.objects.values_mut() {
            bucket.retain(|_, o| o.program != program);
        }
    }

    fn take_for(&self, dead: SiteId) -> (Vec<RevivableFrame>, Vec<WireMemObject>) {
        let mut st = self.state.lock();
        let frames = st.frames.remove(&dead).unwrap_or_default();
        let objects = st.objects.remove(&dead).unwrap_or_default();
        let mut out_frames = Vec::with_capacity(frames.len());
        for (addr, wire) in frames {
            if st.consumed.contains(&addr) {
                continue;
            }
            let applied = st.applied.remove(&addr).unwrap_or_default();
            out_frames.push((wire, applied));
        }
        (out_frames, objects.into_values().collect())
    }
}

/// Revive everything this site holds in backup for `dead`.
pub(crate) fn recover(site: &SiteInner, dead: SiteId) {
    let (frames, objects) = site.backup.take_for(dead);
    if crate::config::debug_enabled() {
        for (w, applied) in &frames {
            eprintln!(
                "[dbg site{}] reviving {} thread={} applied_slots={:?}",
                site.my_id().0,
                w.id,
                w.thread,
                applied.iter().map(|(s, _)| *s).collect::<Vec<_>>()
            );
        }
    }
    let (nf, no) = (frames.len(), objects.len());
    if nf == 0 && no == 0 {
        return;
    }
    for obj in objects {
        site.memory.adopt_object(site, obj);
    }
    // Rebuild all frames first, then adopt incomplete ones before
    // executable ones: an executable frame starts running on adoption
    // and its results must find every revived waiting frame registered.
    let mut rebuilt = Vec::with_capacity(frames.len());
    for (wire, applied) in frames {
        let mut frame = Microframe::from_wire(wire);
        for (slot, value) in applied {
            // Slots the frame already had filled when mirrored are
            // skipped; apply() errors on duplicates and that's fine.
            let _ = frame.apply(slot, value);
        }
        rebuilt.push(frame);
    }
    let (incomplete, executable): (Vec<_>, Vec<_>) =
        rebuilt.into_iter().partition(|f| !f.is_executable());
    for frame in incomplete.into_iter().chain(executable) {
        site.memory.adopt_frame(site, frame);
    }
    site.emit(TraceEvent::Recovered {
        site: site.my_id(),
        dead,
        frames: nf,
        objects: no,
    });
}

// ---- sender-side mirroring helpers ----

fn buddy_of(site: &SiteInner, owner: SiteId) -> Option<SiteId> {
    if !site.config.crash_tolerance {
        return None;
    }
    site.cluster.successor_of(owner).filter(|b| *b != owner)
}

/// Mirror a frame owned by *this* site to its buddy.
pub(crate) fn mirror_frame(site: &SiteInner, frame: &Microframe) {
    if let Some(buddy) = buddy_of(site, site.my_id()) {
        let _ = site.send_payload(
            buddy,
            ManagerId::Memory,
            ManagerId::Memory,
            site.next_seq(),
            Payload::BackupFrame {
                frame: frame.to_wire(),
            },
        );
    }
}

/// Mirror a result application to the target owner's buddy (sender-side).
pub(crate) fn mirror_apply(
    site: &SiteInner,
    owner: SiteId,
    target: GlobalAddress,
    slot: u32,
    value: Value,
) {
    if let Some(buddy) = buddy_of(site, owner) {
        let _ = site.send_payload(
            buddy,
            ManagerId::Memory,
            ManagerId::Memory,
            site.next_seq(),
            Payload::BackupApply {
                target,
                slot,
                value,
            },
        );
    }
}

/// Retire a frame's backup after execution.
pub(crate) fn mirror_consumed(site: &SiteInner, frame: GlobalAddress) {
    if let Some(buddy) = buddy_of(site, site.my_id()) {
        let _ = site.send_payload(
            buddy,
            ManagerId::Memory,
            ManagerId::Memory,
            site.next_seq(),
            Payload::BackupConsumed { frame },
        );
    }
}

/// Drop a frame from `prev_owner`'s backup bucket after its migration —
/// called by the *adopter* once its own mirror has been sent, so the
/// frame is never without a backup (the old entry outlives the handoff).
pub(crate) fn mirror_released(site: &SiteInner, prev_owner: SiteId, frame: GlobalAddress) {
    if !site.config.crash_tolerance {
        return;
    }
    if let Some(buddy) = site
        .cluster
        .successor_of(prev_owner)
        .filter(|b| *b != prev_owner)
    {
        let _ = site.send_payload(
            buddy,
            ManagerId::Memory,
            ManagerId::Memory,
            site.next_seq(),
            Payload::BackupRelease {
                frame,
                owner: prev_owner,
            },
        );
    }
}

/// Mirror a memory object owned by *this* site. The write version rides
/// along so a revived object resumes the version chain where it stopped
/// (replicas themselves are cache and are never mirrored).
pub(crate) fn mirror_object(
    site: &SiteInner,
    addr: GlobalAddress,
    program: ProgramId,
    data: Value,
    version: u64,
) {
    if let Some(buddy) = buddy_of(site, site.my_id()) {
        let _ = site.send_payload(
            buddy,
            ManagerId::Memory,
            ManagerId::Memory,
            site.next_seq(),
            Payload::BackupObject {
                obj: WireMemObject {
                    addr,
                    program,
                    data,
                    version,
                },
            },
        );
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use sdvm_types::{MicrothreadId, ProgramId, SchedulingHint};
    use sdvm_wire::WireFrame;

    fn wf(home: u32, local: u64, program: u32) -> WireFrame {
        WireFrame {
            id: GlobalAddress::new(SiteId(home), local),
            thread: MicrothreadId::new(ProgramId(program), 0),
            slots: vec![None, None],
            targets: vec![],
            hint: SchedulingHint::default(),
        }
    }

    #[test]
    fn frame_apply_consume_lifecycle() {
        let b = BackupManager::new();
        let owner = SiteId(3);
        let f = wf(3, 1, 1);
        let addr = f.id;
        b.on_frame(owner, f);
        b.on_apply(SiteId(2), addr, 0, Value::from_u64(9));
        b.on_apply(SiteId(2), addr, 0, Value::from_u64(99)); // dup slot: ignored
        assert_eq!(b.held_for(owner), (1, 0));
        let (frames, objects) = b.take_for(owner);
        assert!(objects.is_empty());
        assert_eq!(frames.len(), 1);
        let (wire, applied) = &frames[0];
        assert_eq!(wire.id, addr);
        assert_eq!(applied.len(), 1, "duplicate slot mirror must be deduped");
        assert_eq!(applied[0].1.as_u64().unwrap(), 9, "first mirror wins");
    }

    #[test]
    fn consumed_frames_are_not_revived() {
        let b = BackupManager::new();
        let owner = SiteId(2);
        let f = wf(2, 7, 1);
        let addr = f.id;
        b.on_frame(owner, f);
        b.on_consumed(addr);
        assert_eq!(b.held_for(owner), (0, 0));
        let (frames, _) = b.take_for(owner);
        assert!(frames.is_empty());
        // Late applies to a consumed frame are dropped too.
        b.on_apply(SiteId(1), addr, 0, Value::empty());
        let (frames, _) = b.take_for(owner);
        assert!(frames.is_empty());
    }

    #[test]
    fn release_only_clears_the_given_owner_bucket() {
        let b = BackupManager::new();
        let f = wf(4, 1, 1);
        let addr = f.id;
        b.on_frame(SiteId(4), f.clone());
        b.on_frame(SiteId(5), f); // re-mirrored by the adopter
        b.on_release(SiteId(4), addr);
        assert_eq!(b.held_for(SiteId(4)), (0, 0));
        assert_eq!(b.held_for(SiteId(5)), (1, 0), "adopter's mirror survives");
    }

    #[test]
    fn remirroring_clears_a_consumed_tombstone() {
        // consumed → re-mirrored (frame adopted alive elsewhere) → revivable.
        let b = BackupManager::new();
        let f = wf(6, 2, 1);
        b.on_frame(SiteId(6), f.clone());
        b.on_consumed(f.id);
        b.on_frame(SiteId(7), f);
        let (frames, _) = b.take_for(SiteId(7));
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn purge_program_clears_everything() {
        let b = BackupManager::new();
        b.on_frame(SiteId(1), wf(1, 1, 7));
        b.on_frame(SiteId(1), wf(1, 2, 8));
        b.on_object(
            SiteId(1),
            WireMemObject {
                addr: GlobalAddress::new(SiteId(1), 3),
                program: ProgramId(7),
                data: Value::empty(),
                version: 1,
            },
        );
        b.purge_program(ProgramId(7));
        assert_eq!(b.held_for(SiteId(1)), (1, 0), "program 8's frame remains");
    }

    #[test]
    fn objects_roundtrip() {
        let b = BackupManager::new();
        let obj = WireMemObject {
            addr: GlobalAddress::new(SiteId(9), 4),
            program: ProgramId(1),
            data: Value::from_u64(11),
            version: 3,
        };
        b.on_object(SiteId(9), obj.clone());
        let (_, objects) = b.take_for(SiteId(9));
        assert_eq!(objects, vec![obj]);
        // take_for drains.
        assert_eq!(b.held_for(SiteId(9)), (0, 0));
    }
}
