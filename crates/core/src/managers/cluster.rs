//! The cluster manager (paper §4): cluster list, sign-on/sign-off,
//! logical-id allocation, help-target selection, heartbeats and crash
//! detection.
//!
//! The paper discusses three concepts for creating unique logical site
//! ids — a central contact site, id contingents handed to several id
//! servers, and a fixed number of servers emitting their residue class
//! modulo the server count. All three are implemented and compared in
//! experiment E8.

use crate::coord::VivaldiState;
use crate::site::{SiteInner, Task};
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use sdvm_types::{
    IdAllocStrategy, LoadReport, ManagerId, PhysicalAddr, SdvmError, SdvmResult, SiteDescriptor,
    SiteId,
};
use sdvm_wire::{Payload, SdMessage, WireCoord};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

/// Id-allocation state of this site.
enum AllocState {
    /// Not an id server (forwards to one).
    Client,
    /// The central server's counter.
    Central { next: u32 },
    /// Contingents: ranges of free ids this site may hand out.
    Ranges { ranges: Vec<(u32, u32)> },
    /// Modulo server: slot `s` (0-based) among `servers` emits ids
    /// congruent to `s+1` (mod servers).
    Modulo { slot: u32, servers: u32, next: u32 },
}

/// An open suspicion against a silent site (first phase of the
/// two-phase detector).
struct Suspicion {
    /// Distinct sites (self included) that independently suspect it.
    accusers: HashSet<SiteId>,
}

/// Tombstone for a declared-dead site: every incarnation at or below
/// `floor` is fenced as a zombie.
struct DeadEntry {
    /// Highest incarnation covered by the death verdict.
    floor: u64,
    /// Last known physical address (for fencing notices).
    addr: PhysicalAddr,
    /// Rate limiter on outgoing [`Payload::DeathNotice`]s.
    last_notice: Option<Instant>,
}

/// Minimum delay between fencing notices to the same zombie.
const DEATH_NOTICE_INTERVAL: Duration = Duration::from_millis(200);

/// One live member as seen by this site's cluster manager (ops plane).
#[derive(Clone, Debug)]
pub struct MemberView {
    /// Logical site id.
    pub site: SiteId,
    /// Highest incarnation observed for it.
    pub incarnation: u64,
    /// Whether an open suspicion exists against it.
    pub suspected: bool,
    /// Distinct accusers behind the open suspicion (0 when none).
    pub accusers: usize,
    /// Time since this site last heard from it.
    pub silent_for: Duration,
    /// Its last gossiped load report.
    pub load: LoadReport,
    /// Whether it announced a planned departure (`SiteDraining`).
    pub draining: bool,
}

/// One death tombstone (ops plane).
#[derive(Clone, Copy, Debug)]
pub struct DeadView {
    /// The dead site.
    pub site: SiteId,
    /// Fencing floor: incarnations at or below are zombies.
    pub floor: u64,
}

/// Point-in-time membership snapshot served by the ops plane.
#[derive(Clone, Debug, Default)]
pub struct MembershipView {
    /// Live members, sorted by site id.
    pub members: Vec<MemberView>,
    /// Death tombstones, sorted by site id.
    pub dead: Vec<DeadView>,
    /// Crash succession pairs `(dead, successor)`, sorted.
    pub succession: Vec<(SiteId, SiteId)>,
}

struct ClusterState {
    me: Option<SiteDescriptor>,
    sites: HashMap<SiteId, SiteDescriptor>,
    loads: HashMap<SiteId, LoadReport>,
    last_heard: HashMap<SiteId, Instant>,
    /// Departed site → inheritor of its homesite-directory role.
    succession: HashMap<SiteId, SiteId>,
    announced_to: HashSet<SiteId>,
    /// Logical ids handed out by this site but not yet visible in
    /// `sites` (the learn() happens after the ack): prevents two
    /// concurrent sign-ons from receiving the same bootstrap id.
    handed_out: HashSet<u32>,
    /// Highest incarnation each member is known to live at.
    incarnations: HashMap<SiteId, u64>,
    /// Open suspicions (two-phase detector).
    suspects: HashMap<SiteId, Suspicion>,
    /// Declared-dead sites and the incarnation floor that fences them.
    dead: HashMap<SiteId, DeadEntry>,
    /// Members that gossiped a planned departure (`SiteDraining`, wire
    /// v8): still alive and answering, but excluded from help targeting,
    /// successor/backup-buddy selection and program announcements. An
    /// entry clears on the site's `SignOff` or on a fresh descriptor
    /// (the drain was aborted / the site rejoined).
    draining: HashSet<SiteId>,
    /// Current central id server (`CentralServer` strategy): the first
    /// site from birth, moved to the successor when the server drains
    /// (the drain hands the counter over in an `IdBlockGrant`, and the
    /// `SignOff` names the inheritor for everyone else).
    id_server: SiteId,
    alloc: AllocState,
    rr: usize,
    hb_rr: usize,
    /// This site's Vivaldi coordinate (wire v9), fed by RTT samples from
    /// traffic that already flows (help requests, direct probes).
    vivaldi: VivaldiState,
    /// Latest gossiped coordinate per peer (heartbeats, probe acks).
    coords: HashMap<SiteId, WireCoord>,
}

/// The cluster manager of one site.
pub struct ClusterManager {
    state: Mutex<ClusterState>,
    strategy: IdAllocStrategy,
    crash_tolerance: bool,
    crash_timeout: Duration,
    suspicion: bool,
    suspect_timeout: Duration,
    probe_fanout: usize,
    suspicion_quorum: usize,
    proximity_routing: bool,
}

impl ClusterManager {
    /// Build from the site config.
    pub fn new(config: &crate::config::SiteConfig) -> Self {
        ClusterManager {
            state: Mutex::new(ClusterState {
                me: None,
                sites: HashMap::new(),
                loads: HashMap::new(),
                last_heard: HashMap::new(),
                succession: HashMap::new(),
                announced_to: HashSet::new(),
                handed_out: HashSet::new(),
                incarnations: HashMap::new(),
                suspects: HashMap::new(),
                dead: HashMap::new(),
                draining: HashSet::new(),
                id_server: SiteId::FIRST,
                alloc: AllocState::Client,
                rr: 0,
                hb_rr: 0,
                vivaldi: VivaldiState::default(),
                coords: HashMap::new(),
            }),
            strategy: config.id_alloc,
            crash_tolerance: config.crash_tolerance,
            crash_timeout: config.crash_timeout,
            suspicion: config.suspicion,
            suspect_timeout: config.suspect_timeout,
            probe_fanout: config.probe_fanout,
            suspicion_quorum: config.suspicion_quorum.max(2),
            proximity_routing: config.proximity_routing,
        }
    }

    /// Initialize as the first site of a fresh cluster (id server role).
    pub fn init_first(&self, site: &SiteInner) {
        let mut st = self.state.lock();
        let mut desc = self.build_descriptor(site);
        // The first site implicitly acts as a code distribution site
        // (paper: "the site where the SDVM application was started, is
        // implicitly a code distribution site").
        desc.code_distribution = true;
        st.sites.insert(desc.site, desc.clone());
        st.me = Some(desc);
        st.alloc = match self.strategy {
            IdAllocStrategy::CentralServer => AllocState::Central { next: 2 },
            IdAllocStrategy::Contingents { .. } => AllocState::Ranges {
                ranges: vec![(2, u32::MAX / 2)],
            },
            IdAllocStrategy::Modulo { servers } => AllocState::Modulo {
                slot: 0,
                servers,
                next: 1 + servers,
            },
        };
    }

    fn build_descriptor(&self, site: &SiteInner) -> SiteDescriptor {
        SiteDescriptor {
            site: site.my_id(),
            addr: site.transport.local_addr(),
            platform: site.config.platform,
            speed: site.config.speed,
            code_distribution: site.config.code_distribution,
            incarnation: site.my_incarnation(),
        }
    }

    /// This site's current descriptor.
    pub fn my_descriptor(&self, site: &SiteInner) -> SiteDescriptor {
        self.state
            .lock()
            .me
            .clone()
            .unwrap_or_else(|| self.build_descriptor(site))
    }

    /// Current load report of this site (for gossip and help requests).
    pub fn my_load(&self, site: &SiteInner) -> LoadReport {
        let (queued_frames, busy_slots) = site.scheduling.load_numbers();
        let mem = site.memory.stats();
        LoadReport {
            queued_frames,
            busy_slots,
            programs: site.program.active_count(),
            memory_bytes: mem.memory_bytes,
            epoch: site.scheduling.next_epoch(),
        }
    }

    // ---- membership ----

    /// Join a cluster through `contact` (blocking handshake, §3.4).
    pub fn sign_on(&self, site: &SiteInner, contact: &PhysicalAddr) -> SdvmResult<()> {
        let descriptor = self.build_descriptor(site); // id still NONE
        let reply = site.request_addr(
            contact,
            ManagerId::Cluster,
            ManagerId::Cluster,
            Payload::SignOn { descriptor },
            site.config.request_timeout,
        )?;
        match reply.payload {
            Payload::SignOnAck { assigned, cluster } => {
                site.set_id(assigned);
                let mut st = self.state.lock();
                let mut desc = self.build_descriptor(site);
                desc.site = assigned;
                st.sites.insert(assigned, desc.clone());
                st.me = Some(desc);
                // Assume the id-server role this strategy gives us:
                // contingent sites hold ranges (granted by the acker in a
                // follow-up IdBlockGrant, or begged on demand); the first
                // `servers` sites under the modulo concept emit their
                // residue class autonomously.
                st.alloc = match self.strategy {
                    IdAllocStrategy::CentralServer => AllocState::Client,
                    // The acker's follow-up IdBlockGrant may have been
                    // processed by the router before this waiter thread
                    // ran — never wipe an already-granted range.
                    IdAllocStrategy::Contingents { .. } => {
                        match std::mem::replace(&mut st.alloc, AllocState::Client) {
                            existing @ AllocState::Ranges { .. } => existing,
                            _ => AllocState::Ranges { ranges: vec![] },
                        }
                    }
                    IdAllocStrategy::Modulo { servers } if assigned.0 <= servers => {
                        AllocState::Modulo {
                            slot: assigned.0 - 1,
                            servers,
                            next: assigned.0 + servers,
                        }
                    }
                    IdAllocStrategy::Modulo { .. } => AllocState::Client,
                };
                let now = Instant::now();
                for d in cluster {
                    if d.site != assigned {
                        st.last_heard.insert(d.site, now);
                        st.incarnations.insert(d.site, d.incarnation);
                        st.sites.insert(d.site, d);
                    }
                }
                // The contact knows us (it acked); others learn
                // epidemically with normal traffic.
                st.announced_to.insert(reply.src_site);
                Ok(())
            }
            Payload::SignOnRefused { reason } => Err(SdvmError::InvalidState(format!(
                "sign-on refused: {reason}"
            ))),
            other => Err(SdvmError::InvalidState(format!(
                "unexpected sign-on reply {}",
                other.name()
            ))),
        }
    }

    /// Orderly departure — the drain flow (wire v8). In order: gossip
    /// the `Draining` state (peers stop granting us help, announcing
    /// programs at us, and targeting us as successor/backup buddy),
    /// quiesce the local workers, hand the dead-letter store and
    /// code-source duty to the successor, relocate every owned object
    /// and frame plus the homesite directory, announce `SignOff`, and
    /// flush the outbound queues so nothing is lost when the caller
    /// stops the site. No tombstone, no detector involvement.
    pub fn sign_off(&self, site: &SiteInner) -> SdvmResult<()> {
        let me = site.my_id();
        let Some(successor) = self.successor_of(me) else {
            return Ok(()); // last site: nothing to relocate to
        };
        let drain_started = Instant::now();
        site.metrics.drain_started.inc();
        for p in self.known_sites() {
            if p != me {
                let _ = site.send_payload(
                    p,
                    ManagerId::Cluster,
                    ManagerId::Cluster,
                    site.next_seq(),
                    Payload::SiteDraining {
                        site: me,
                        incarnation: site.my_incarnation(),
                    },
                );
            }
        }
        // Quiesce: the draining flag (set by Site::drain) stops the
        // workers from taking new frames; wait for the ones already
        // executing to finish, then let any in-flight help replies and
        // results settle before cutting. Iterate until a drain pass finds
        // nothing new.
        let deadline = Instant::now() + site.config.request_timeout;
        loop {
            let (_, busy) = site.scheduling.load_numbers();
            if busy == 0 || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(site.config.help_timeout);
        // Dead-letter handoff: quarantined frames must stay redrivable
        // after we are gone. The frames were already consumed
        // cluster-wide on quarantine, so a plain transfer suffices.
        let letters = site.deadletter.take_all();
        if !letters.is_empty() {
            let wire: Vec<(sdvm_wire::WireFrame, String)> = letters
                .iter()
                .map(|d| (d.frame.to_wire(), d.cause.to_string()))
                .collect();
            let count = wire.len() as u64;
            match site.send_payload(
                successor,
                ManagerId::Program,
                ManagerId::Program,
                site.next_seq(),
                Payload::DeadLetterSweep { letters: wire },
            ) {
                Ok(()) => site.metrics.drain_dead_letters_swept.add(count),
                Err(_) => {
                    // Successor unreachable: keep the letters; the
                    // relocate below will fail the same way and the
                    // drain aborts with the store intact.
                    for d in letters {
                        site.deadletter.adopt(d.frame, d.cause);
                    }
                }
            }
        }
        // Code-home duty handoff: for every program whose source we
        // hold, grant the successor source-serving rights (its
        // `CodeSource` handler records the program). Requesters that
        // still ask *us* first fall through to distribution sites.
        for program in site.code.local_source_programs() {
            let _ = site.send_payload(
                successor,
                ManagerId::Code,
                ManagerId::Code,
                site.next_seq(),
                Payload::CodeSource {
                    thread: sdvm_types::MicrothreadId::new(program, 0),
                    source: bytes::Bytes::new(),
                },
            );
        }
        // Id-server duty handoff: a departing central id server gives
        // the successor its counter, or joining becomes impossible once
        // we are gone. Taken before the send so a failed hand-over can
        // restore the role locally; once sent, the duty is the
        // successor's even if the drain aborts later.
        let central_next = {
            let mut st = self.state.lock();
            match st.alloc {
                AllocState::Central { next } => {
                    st.alloc = AllocState::Client;
                    Some(next)
                }
                _ => None,
            }
        };
        if let Some(next) = central_next {
            let sent = site.send_payload(
                successor,
                ManagerId::Cluster,
                ManagerId::Cluster,
                site.next_seq(),
                Payload::IdBlockGrant {
                    start: next,
                    len: u32::MAX - next,
                },
            );
            let mut st = self.state.lock();
            if sent.is_ok() {
                st.id_server = successor;
            } else {
                st.alloc = AllocState::Central { next };
            }
        }
        // Collect everything: queued frames + incomplete frames + objects
        // + our homesite directory.
        let mut frames: Vec<_> = site
            .scheduling
            .drain_all()
            .into_iter()
            .map(|f| f.to_wire())
            .collect();
        let (objects, mem_frames, directory) = site.memory.drain_for_relocation(site);
        frames.extend(mem_frames.into_iter().map(|f| f.to_wire()));
        let restore_on_failure = |err: SdvmError| -> SdvmError {
            // The successor never took ownership: put everything back so
            // the caller can retry or keep running — destroying drained
            // state on a failed hand-over would lose the program's work.
            for f in &frames {
                site.memory
                    .adopt_frame(site, crate::frame::Microframe::from_wire(f.clone()));
            }
            for o in &objects {
                site.memory.adopt_object(site, o.clone());
            }
            // Withdraw the gossiped Draining state: we are staying, and
            // peers must resume granting help / targeting us again.
            let descriptor = self.my_descriptor(site);
            for p in self.known_sites() {
                if p != me {
                    let _ = site.send_payload(
                        p,
                        ManagerId::Cluster,
                        ManagerId::Cluster,
                        site.next_seq(),
                        Payload::SiteAnnounce {
                            descriptor: descriptor.clone(),
                        },
                    );
                }
            }
            err
        };
        let reply = match site.request(
            successor,
            ManagerId::Memory,
            ManagerId::Memory,
            Payload::Relocate {
                objects: objects.clone(),
                frames: frames.clone(),
                directory,
            },
            site.config.request_timeout,
        ) {
            Ok(r) => r,
            Err(e) => return Err(restore_on_failure(e)),
        };
        if !matches!(reply.payload, Payload::RelocateAck {}) {
            return Err(restore_on_failure(SdvmError::InvalidState(
                "relocation not acknowledged".into(),
            )));
        }
        site.metrics
            .drain_objects_relocated
            .add(objects.len() as u64);
        site.metrics.drain_frames_relocated.add(frames.len() as u64);
        // Tell everyone (including the successor) that we are gone and
        // who inherited our directory role.
        let peers = self.known_sites();
        for p in peers {
            if p != me {
                let _ = site.send_payload(
                    p,
                    ManagerId::Cluster,
                    ManagerId::Cluster,
                    site.next_seq(),
                    Payload::SignOff {
                        site: me,
                        successor,
                    },
                );
            }
        }
        // Flush: wait for the outbound queues to empty so the SignOff
        // broadcast and every late result actually left before the
        // caller tears the transport down.
        let flush_deadline = Instant::now() + site.config.request_timeout;
        loop {
            let depth: usize = site
                .transport
                .outbound_depths()
                .iter()
                .map(|(_, d)| d)
                .sum();
            if depth == 0 || Instant::now() > flush_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        site.metrics.drain_completed.inc();
        site.metrics
            .drain_duration_us
            .observe(drain_started.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Learn about a site (sign-on ack, announce, gossip, first help
    /// request). A descriptor from a declared-dead incarnation is fenced
    /// instead of re-admitting the zombie; a *higher* incarnation lifts
    /// the tombstone (the site refuted its death and rejoins).
    pub fn learn(&self, site: &SiteInner, d: SiteDescriptor) {
        if d.site == site.my_id() || !d.site.is_valid() {
            return;
        }
        let mut st = self.state.lock();
        if let Some(entry) = st.dead.get(&d.site) {
            if d.incarnation <= entry.floor {
                drop(st);
                site.emit(TraceEvent::StaleIncarnation {
                    site: site.my_id(),
                    from: d.site,
                    incarnation: d.incarnation,
                });
                return;
            }
            st.dead.remove(&d.site);
            // The directory owner is back: its succession entry would
            // otherwise keep redirecting homesite lookups away from it.
            st.succession.remove(&d.site);
        }
        if d.incarnation < st.incarnations.get(&d.site).copied().unwrap_or(0) {
            return; // stale gossip about an older incarnation of a live site
        }
        st.last_heard.insert(d.site, Instant::now());
        st.incarnations.insert(d.site, d.incarnation);
        // A fresh descriptor withdraws a gossiped drain: either the
        // drain was aborted, or the site left and rejoined (bumped
        // incarnation) — both mean it is a full member again.
        st.draining.remove(&d.site);
        let refuted = st.suspects.remove(&d.site).is_some();
        let is_new = st.sites.insert(d.site, d.clone()).is_none();
        drop(st);
        if refuted {
            site.emit(TraceEvent::SuspicionRefuted {
                site: site.my_id(),
                suspect: d.site,
                incarnation: d.incarnation,
            });
        }
        if is_new {
            site.emit(TraceEvent::SiteJoined {
                site: site.my_id(),
                joined: d.site,
            });
        }
    }

    /// Screen an inbound message (called by the dispatcher for every
    /// message carrying a valid foreign source). Returns `false` when the
    /// sender is a *zombie* — a declared-dead site still talking at a
    /// fenced incarnation — and the message must be dropped; a rate-
    /// limited [`Payload::DeathNotice`] tells the zombie to bump its
    /// incarnation and re-announce. Any other message doubles as a
    /// liveness proof: it refreshes `last_heard` and withdraws an open
    /// suspicion against the sender.
    pub(crate) fn observe_inbound(&self, site: &SiteInner, from: SiteId, incarnation: u64) -> bool {
        let mut st = self.state.lock();
        if let Some(entry) = st.dead.get_mut(&from) {
            if incarnation <= entry.floor {
                let notify = entry
                    .last_notice
                    .map(|t| t.elapsed() >= DEATH_NOTICE_INTERVAL)
                    .unwrap_or(true);
                if notify {
                    entry.last_notice = Some(Instant::now());
                }
                let (addr, floor) = (entry.addr.clone(), entry.floor);
                drop(st);
                site.emit(TraceEvent::StaleIncarnation {
                    site: site.my_id(),
                    from,
                    incarnation,
                });
                if notify {
                    let notice = SdMessage::new(
                        site.my_id(),
                        ManagerId::Cluster,
                        from,
                        ManagerId::Cluster,
                        site.next_seq(),
                        Payload::DeathNotice { incarnation: floor },
                    );
                    let _ = site.send_msg_to_addr(&addr, notice);
                }
                return false;
            }
            // Alive at a newer incarnation: lift the tombstone. Full
            // membership re-entry happens when its descriptor arrives.
            st.dead.remove(&from);
            st.succession.remove(&from);
        }
        st.last_heard.insert(from, Instant::now());
        if incarnation > 0 {
            let known = st.incarnations.entry(from).or_insert(0);
            *known = (*known).max(incarnation);
        }
        let refuted = st.suspects.remove(&from).is_some();
        drop(st);
        if refuted {
            site.emit(TraceEvent::SuspicionRefuted {
                site: site.my_id(),
                suspect: from,
                incarnation,
            });
        }
        true
    }

    /// Reset the liveness clock of every known member and drop open
    /// suspicions. Called when *this* site resumes from a long pause: its
    /// stale `last_heard` map would otherwise read as cluster-wide
    /// silence and mass-declare healthy peers.
    pub fn refresh_liveness(&self) {
        let mut st = self.state.lock();
        let now = Instant::now();
        let ids: Vec<SiteId> = st.sites.keys().copied().collect();
        for s in ids {
            st.last_heard.insert(s, now);
        }
        st.suspects.clear();
    }

    /// Record a load report (heartbeat or help-request gossip).
    pub fn note_load(&self, from: SiteId, load: LoadReport) {
        if !from.is_valid() {
            return;
        }
        let mut st = self.state.lock();
        st.last_heard.insert(from, Instant::now());
        st.loads.entry(from).or_default().merge(&load);
    }

    // ---- Vivaldi network coordinates (wire v9) ----

    /// This site's current coordinate, for piggybacking on heartbeats
    /// and probe traffic.
    pub fn my_coord(&self) -> WireCoord {
        self.state.lock().vivaldi.coord
    }

    /// Record a peer's gossiped coordinate (heartbeat, probe payloads).
    pub fn note_coord(&self, from: SiteId, coord: Option<WireCoord>) {
        let Some(c) = coord else { return };
        if !from.is_valid() {
            return;
        }
        self.state.lock().coords.insert(from, c);
    }

    /// Absorb one measured round trip against `peer` into this site's
    /// coordinate. Does nothing until the peer has gossiped a
    /// coordinate of its own — the spring needs both endpoints.
    pub fn observe_rtt(&self, peer: SiteId, rtt: Duration) {
        let mut st = self.state.lock();
        let Some(pc) = st.coords.get(&peer).copied() else {
            return;
        };
        let rtt_ms = rtt.as_secs_f64() * 1e3;
        st.vivaldi.observe(&pc, rtt_ms);
    }

    /// Coordinate fit statistics for telemetry and `/status`:
    /// `(abs_error_ms, samples, converged)`.
    pub fn coord_stats(&self) -> (f64, u64, bool) {
        let st = self.state.lock();
        (
            st.vivaldi.abs_error_ms,
            st.vivaldi.samples,
            st.vivaldi.converged(),
        )
    }

    /// Rank `candidates` by predicted RTT from this site, nearest first
    /// (ties broken by id for determinism). Returns `false` — leaving
    /// the order untouched — unless this site's coordinate has
    /// converged and at least one candidate has gossiped a coordinate;
    /// callers then fall back to their uniform (pre-v9) selection.
    /// Disabled wholesale by `SiteConfig::proximity_routing = false`
    /// (the A/B ablation knob).
    pub fn rank_by_proximity(&self, candidates: &mut [SiteId]) -> bool {
        if !self.proximity_routing {
            return false;
        }
        let st = self.state.lock();
        Self::rank_by_proximity_locked(&st, candidates)
    }

    fn rank_by_proximity_locked(st: &ClusterState, candidates: &mut [SiteId]) -> bool {
        if !st.vivaldi.converged() {
            return false;
        }
        if !candidates.iter().any(|s| st.coords.contains_key(s)) {
            return false;
        }
        candidates.sort_by(|a, b| {
            let da = st
                .coords
                .get(a)
                .map(|c| st.vivaldi.predict_ms(c))
                .unwrap_or(f64::INFINITY);
            let db = st
                .coords
                .get(b)
                .map(|c| st.vivaldi.predict_ms(c))
                .unwrap_or(f64::INFINITY);
            da.partial_cmp(&db)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        true
    }

    /// Physical address of a logical site.
    pub fn addr_of(&self, id: SiteId) -> Option<PhysicalAddr> {
        self.state.lock().sites.get(&id).map(|d| d.addr.clone())
    }

    /// All currently known member ids (including self once assigned).
    pub fn known_sites(&self) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self.state.lock().sites.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Ops-plane membership view: one consistent snapshot of the live
    /// member table, open suspicions and death tombstones, taken under a
    /// single lock acquisition. Served on `GET /status` and embedded in
    /// flight-recorder postmortems.
    pub fn membership_view(&self) -> MembershipView {
        let st = self.state.lock();
        let now = Instant::now();
        let mut members: Vec<MemberView> = st
            .sites
            .values()
            .map(|d| MemberView {
                site: d.site,
                incarnation: st
                    .incarnations
                    .get(&d.site)
                    .copied()
                    .unwrap_or(d.incarnation),
                suspected: st.suspects.contains_key(&d.site),
                accusers: st
                    .suspects
                    .get(&d.site)
                    .map(|s| s.accusers.len())
                    .unwrap_or(0),
                silent_for: st
                    .last_heard
                    .get(&d.site)
                    .map(|h| now.duration_since(*h))
                    .unwrap_or(Duration::ZERO),
                load: st.loads.get(&d.site).copied().unwrap_or_default(),
                draining: st.draining.contains(&d.site),
            })
            .collect();
        members.sort_by_key(|m| m.site);
        let mut dead: Vec<DeadView> = st
            .dead
            .iter()
            .map(|(s, e)| DeadView {
                site: *s,
                floor: e.floor,
            })
            .collect();
        dead.sort_by_key(|d| d.site);
        let mut succession: Vec<(SiteId, SiteId)> =
            st.succession.iter().map(|(a, b)| (*a, *b)).collect();
        succession.sort_by_key(|(a, _)| *a);
        MembershipView {
            members,
            dead,
            succession,
        }
    }

    /// Known code distribution sites (draining members excluded — a
    /// leaver must not be handed fresh code or checkpoint stores).
    pub fn code_distribution_sites(&self) -> Vec<SiteId> {
        let st = self.state.lock();
        let mut v: Vec<SiteId> = st
            .sites
            .values()
            .filter(|d| d.code_distribution && !st.draining.contains(&d.site))
            .map(|d| d.site)
            .collect();
        v.sort_unstable();
        v
    }

    /// Whether we already sent our descriptor to `target` (the first help
    /// request to a site carries it, doubling as the join announcement).
    pub fn announced(&self, target: SiteId) -> bool {
        !self.state.lock().announced_to.insert(target)
    }

    /// The next alive site after `of` in id order (ring) — used as
    /// relocation target, directory successor and backup buddy. Members
    /// that announced a planned departure are skipped: handing a leaver
    /// fresh objects, directory duty or backup mirrors would only force
    /// a second relocation moments later.
    pub fn successor_of(&self, of: SiteId) -> Option<SiteId> {
        let st = self.state.lock();
        let mut ids: Vec<SiteId> = st.sites.keys().copied().collect();
        ids.sort_unstable();
        ids.retain(|&s| s != of && !st.draining.contains(&s));
        if ids.is_empty() {
            return None;
        }
        ids.iter()
            .copied()
            .find(|&s| s > of)
            .or_else(|| ids.first().copied())
    }

    /// Follow the succession chain of departed sites to a live one.
    pub fn resolve_succession(&self, mut home: SiteId) -> SiteId {
        let st = self.state.lock();
        for _ in 0..16 {
            match st.succession.get(&home) {
                Some(&next) => home = next,
                None => break,
            }
        }
        home
    }

    /// Choose a site to send a help request to: prefer the busiest known
    /// site (it most probably has spare work). With no load signal, rank
    /// the candidates by predicted proximity (wire v9) and round-robin
    /// over the nearest few — a help round trip to a close peer costs a
    /// fraction of a far one, and its reply arrives while a distant
    /// peer's would still be in flight. Until the coordinate converges
    /// this degrades to the original uniform round-robin.
    pub fn pick_help_target(&self, site: &SiteInner) -> Option<SiteId> {
        let me = site.my_id();
        let mut st = self.state.lock();
        let mut candidates: Vec<SiteId> = st
            .sites
            .keys()
            .copied()
            .filter(|&s| s != me && !st.draining.contains(&s))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_unstable();
        let busiest = candidates
            .iter()
            .copied()
            .max_by_key(|s| st.loads.get(s).map(|l| l.busyness()).unwrap_or(0));
        let best = busiest.filter(|s| st.loads.get(s).map(|l| l.busyness()).unwrap_or(0) > 0);
        Some(match best {
            Some(s) => s,
            None => {
                let pool = if self.proximity_routing
                    && Self::rank_by_proximity_locked(&st, &mut candidates)
                {
                    // Rotate within the nearest few instead of pinning
                    // the single nearest peer, so one close neighbor
                    // doesn't absorb every idle site's requests.
                    candidates.len().min(3)
                } else {
                    candidates.len()
                };
                let idx = st.rr % pool;
                st.rr = st.rr.wrapping_add(1);
                candidates[idx]
            }
        })
    }

    // ---- id allocation (the three concepts of §4) ----

    /// Try to allocate a logical id locally. `Ok(None)` means this site
    /// cannot allocate and the request must be forwarded to `forward_to`.
    fn allocate_id(&self) -> AllocOutcome {
        let mut st = self.state.lock();
        let mut existing: Vec<u32> = st.sites.keys().map(|s| s.0).collect();
        existing.extend(st.handed_out.iter().copied());
        match &mut st.alloc {
            AllocState::Central { next } => {
                let id = *next;
                *next += 1;
                AllocOutcome::Allocated(SiteId(id))
            }
            AllocState::Ranges { ranges } => {
                while let Some((lo, hi)) = ranges.last_mut() {
                    if lo <= hi {
                        let id = *lo;
                        *lo += 1;
                        return AllocOutcome::Allocated(SiteId(id));
                    }
                    ranges.pop();
                }
                AllocOutcome::NeedBlock
            }
            AllocState::Modulo {
                slot,
                servers,
                next,
            } => {
                let k = *servers;
                // Bootstrap: the first site fills the server slots 2..=k
                // sequentially so each residue class gets an emitter.
                if *slot == 0 {
                    if let Some(boot) = (2..=k).find(|id| !existing.contains(id)) {
                        st.handed_out.insert(boot);
                        return AllocOutcome::Allocated(SiteId(boot));
                    }
                }
                let id = *next;
                *next += k;
                AllocOutcome::Allocated(SiteId(id))
            }
            AllocState::Client => AllocOutcome::Forward,
        }
    }

    fn id_server_target(&self) -> Option<SiteId> {
        // Central strategy: the first site is the server. Modulo: any of
        // the first `servers` ids. Contingents: any site may have ids.
        let st = self.state.lock();
        match self.strategy {
            // The tracked server (the first site, or whoever inherited
            // the counter through drains). If gossip about the handoff
            // has not reached us, ask the oldest live site — it is
            // either the server or one hop closer to knowing who is.
            IdAllocStrategy::CentralServer => st
                .sites
                .contains_key(&st.id_server)
                .then_some(st.id_server)
                .or_else(|| st.sites.keys().copied().min()),
            IdAllocStrategy::Modulo { servers } => {
                (1..=servers).map(SiteId).find(|s| st.sites.contains_key(s))
            }
            IdAllocStrategy::Contingents { .. } => {
                st.sites.keys().copied().min() // ask the oldest site
            }
        }
    }

    // ---- heartbeats & crash detection ----

    /// One maintenance tick: gossip load, detect crashes.
    pub fn heartbeat_tick(&self, site: &SiteInner) {
        let me = site.my_id();
        if !me.is_valid() {
            return;
        }
        let load = self.my_load(site);
        let targets: Vec<SiteId> = {
            let mut st = self.state.lock();
            let mut ids: Vec<SiteId> = st.sites.keys().copied().filter(|&s| s != me).collect();
            ids.sort_unstable();
            if ids.is_empty() {
                Vec::new()
            } else {
                let start = st.hb_rr;
                st.hb_rr = st.hb_rr.wrapping_add(1);
                (0..ids.len().min(3))
                    .map(|i| ids[(start + i) % ids.len()])
                    .collect()
            }
        };
        // Ops-plane rollup (wire v7): condense the local metrics into a
        // small cumulative digest, remember our own contribution, and
        // piggyback the digest on the same heartbeat fan-out. Receivers
        // store digests latest-wins, so *any* site can serve cluster
        // totals without a central scrape.
        let summary = crate::telemetry::digest_of(&site.metrics.snapshot());
        site.rollup.record(me, summary.clone());
        // Piggyback our Vivaldi coordinate (wire v9) on every heartbeat:
        // receivers learn where we sit without any extra traffic.
        let coord = Some(self.my_coord());
        for t in targets {
            let _ = site.send_payload(
                t,
                ManagerId::Cluster,
                ManagerId::Cluster,
                site.next_seq(),
                Payload::Heartbeat { load, coord },
            );
            let _ = site.send_payload(
                t,
                ManagerId::Cluster,
                ManagerId::Cluster,
                site.next_seq(),
                Payload::MetricsSummary {
                    summary: summary.clone(),
                },
            );
        }
        if self.crash_tolerance {
            self.detect_crashes(site);
        }
    }

    /// The two-phase detector (SWIM-style). Silence past
    /// `suspect_timeout` only *suspects* a site and fans out indirect
    /// probes; the verdict needs silence past `crash_timeout` or a quorum
    /// of independent accusers. With `suspicion` off this degrades to the
    /// original single-timeout kill.
    fn detect_crashes(&self, site: &SiteInner) {
        let me = site.my_id();
        let now = Instant::now();
        let mut to_suspect: Vec<(SiteId, u64)> = Vec::new();
        let mut to_declare: Vec<SiteId> = Vec::new();
        {
            let mut st = self.state.lock();
            let ids: Vec<SiteId> = st.sites.keys().copied().filter(|&s| s != me).collect();
            for s in ids {
                let Some(heard) = st.last_heard.get(&s).copied() else {
                    continue;
                };
                let silent_for = now.duration_since(heard);
                if !self.suspicion {
                    if silent_for > self.crash_timeout {
                        to_declare.push(s);
                    }
                    continue;
                }
                if let Some(susp) = st.suspects.get_mut(&s) {
                    // Join the accusation only on our *own* observation
                    // of silence — a gossiped suspicion alone must not
                    // multiply accusers.
                    if silent_for > self.suspect_timeout {
                        susp.accusers.insert(me);
                    }
                    if silent_for > self.crash_timeout
                        || susp.accusers.len() >= self.suspicion_quorum
                    {
                        to_declare.push(s);
                    }
                } else if silent_for > self.suspect_timeout {
                    let incarnation = st.incarnations.get(&s).copied().unwrap_or(1);
                    let mut accusers = HashSet::new();
                    accusers.insert(me);
                    st.suspects.insert(s, Suspicion { accusers });
                    to_suspect.push((s, incarnation));
                }
            }
        }
        for (s, incarnation) in to_suspect {
            self.start_suspicion(site, s, incarnation);
        }
        for d in to_declare {
            self.declare_crashed(site, d, true);
        }
    }

    /// Announce a fresh suspicion: gossip it, ask up to `probe_fanout`
    /// members to probe the suspect indirectly, and ping it directly.
    /// Any resulting message from the suspect clears the suspicion on
    /// its way through [`ClusterManager::observe_inbound`].
    fn start_suspicion(&self, site: &SiteInner, suspect: SiteId, incarnation: u64) {
        let me = site.my_id();
        site.emit(TraceEvent::SiteSuspected { site: me, suspect });
        let mut peers: Vec<SiteId> = self
            .known_sites()
            .into_iter()
            .filter(|&s| s != me && s != suspect)
            .collect();
        for &p in &peers {
            let _ = site.send_payload(
                p,
                ManagerId::Cluster,
                ManagerId::Cluster,
                site.next_seq(),
                Payload::SuspectSite {
                    site: suspect,
                    incarnation,
                },
            );
        }
        // Probe victims nearest-first (wire v9): a close prober's verdict
        // comes back sooner, shrinking the suspicion window. Uniform
        // (id-order) fanout until the coordinate converges.
        self.rank_by_proximity(&mut peers);
        let my_coord = Some(self.my_coord());
        for &p in peers.iter().take(self.probe_fanout) {
            let _ = site.send_payload(
                p,
                ManagerId::Cluster,
                ManagerId::Cluster,
                site.next_seq(),
                Payload::ProbeRequest {
                    target: suspect,
                    coord: my_coord,
                },
            );
        }
        // Direct probe off-thread: a live-but-slow suspect's Pong refutes
        // through the normal dispatch path. help_timeout keeps a truly
        // dead suspect from pinning the helper until the verdict.
        site.spawn_task(Task::Run(Box::new(move |s: &SiteInner| {
            let asked = Instant::now();
            if s.request(
                suspect,
                ManagerId::Site,
                ManagerId::Cluster,
                Payload::Ping {
                    token: suspect.0 as u64,
                },
                s.config.help_timeout,
            )
            .is_ok()
            {
                // The probe doubles as a coordinate sample — an answered
                // ping is a measured round trip to the suspect.
                s.cluster.observe_rtt(suspect, asked.elapsed());
            }
        })));
    }

    /// A peer gossiped a suspicion. Three cases: the suspect is *us*
    /// (refute with a bumped incarnation), we have fresh evidence the
    /// suspect lives (vouch for it to the accuser), or we join the
    /// accusation — enough independent accusers convict before
    /// `crash_timeout`.
    fn on_suspect_gossip(
        &self,
        site: &SiteInner,
        accuser: SiteId,
        suspect: SiteId,
        incarnation: u64,
    ) {
        let me = site.my_id();
        if suspect == me {
            let bumped = site.bump_incarnation_to(incarnation + 1);
            let descriptor = {
                let mut st = self.state.lock();
                let Some(mine) = st.me.as_mut() else { return };
                mine.incarnation = bumped;
                let d = mine.clone();
                st.sites.insert(d.site, d.clone());
                d
            };
            for p in self.known_sites() {
                if p != me {
                    let _ = site.send_payload(
                        p,
                        ManagerId::Cluster,
                        ManagerId::Cluster,
                        site.next_seq(),
                        Payload::RefuteSuspicion {
                            descriptor: descriptor.clone(),
                        },
                    );
                }
            }
            return;
        }
        // Record the accusation. Deliberately no vouch-from-memory here:
        // only a *live* Pong from the suspect (direct traffic through
        // observe_inbound, or a ProbeAck relayed after a real probe) may
        // refute — answering from a stale `last_heard` would let two
        // accusers endlessly re-vouch each other's cleared suspicions of
        // a genuinely dead site. If the suspect lives, the probes this
        // accuser fanned out will clear the entry within a tick.
        let convicted = {
            let mut st = self.state.lock();
            if !st.sites.contains_key(&suspect) {
                return; // unknown or already removed — nothing to judge
            }
            let entry = st.suspects.entry(suspect).or_insert_with(|| Suspicion {
                accusers: HashSet::new(),
            });
            entry.accusers.insert(accuser);
            entry.accusers.len() >= self.suspicion_quorum
        };
        if convicted {
            self.declare_crashed(site, suspect, true);
        }
    }

    /// Remove a site as crashed, computing the successor locally (the
    /// detector's path); see [`ClusterManager::declare_crashed_with`].
    pub fn declare_crashed(&self, site: &SiteInner, dead: SiteId, originator: bool) {
        self.declare_crashed_with(site, dead, originator, None, 0)
    }

    /// Remove a site as crashed; `originator` broadcasts the verdict.
    /// `announced` carries the successor chosen by whoever detected the
    /// crash first — all sites must install the *same* succession entry,
    /// so a broadcast verdict always wins over a local recomputation
    /// (membership views can diverge transiently). `incarnation_floor`
    /// threads the originator's fencing floor into relayed verdicts; the
    /// tombstone fences every incarnation at or below the highest floor
    /// any site knows, so the dead site can only return by bumping past it.
    pub fn declare_crashed_with(
        &self,
        site: &SiteInner,
        dead: SiteId,
        originator: bool,
        announced: Option<SiteId>,
        incarnation_floor: u64,
    ) {
        let (successor, floor) = {
            let mut st = self.state.lock();
            let Some(removed) = st.sites.remove(&dead) else {
                return; // already handled
            };
            // Detection latency: how long the peer was silent (by our
            // firsthand clock) before the verdict landed. Relayed
            // verdicts measure the same silence as observed here.
            if let Some(heard) = st.last_heard.get(&dead) {
                site.metrics
                    .detection_latency_us
                    .observe(heard.elapsed().as_micros() as u64);
            }
            let floor = incarnation_floor
                .max(st.incarnations.get(&dead).copied().unwrap_or(0))
                .max(removed.incarnation);
            st.dead.insert(
                dead,
                DeadEntry {
                    floor,
                    addr: removed.addr,
                    last_notice: None,
                },
            );
            st.suspects.remove(&dead);
            st.loads.remove(&dead);
            st.last_heard.remove(&dead);
            st.announced_to.remove(&dead);
            st.coords.remove(&dead);
            let successor = announced.unwrap_or_else(|| {
                let mut ids: Vec<SiteId> = st.sites.keys().copied().collect();
                ids.sort_unstable();
                ids.iter()
                    .copied()
                    .find(|&s| s > dead)
                    .or_else(|| ids.first().copied())
                    .unwrap_or(site.my_id())
            });
            st.succession.insert(dead, successor);
            (successor, floor)
        };
        site.emit(TraceEvent::SiteGone {
            site: site.my_id(),
            gone: dead,
            crashed: true,
        });
        site.security.forget(dead);
        // The dead site's metrics digest stops contributing to the
        // cluster rollup once the verdict lands.
        site.rollup.forget(dead);
        // The dead site's homesite directory died with it: re-register
        // our locally owned state homed there with the successor.
        site.memory.reregister_after_crash(site, dead, successor);
        if originator {
            for p in self.known_sites() {
                if p != site.my_id() {
                    let _ = site.send_payload(
                        p,
                        ManagerId::Cluster,
                        ManagerId::Cluster,
                        site.next_seq(),
                        Payload::SiteCrashed {
                            site: dead,
                            successor,
                            incarnation: floor,
                        },
                    );
                }
            }
        }
        // Revive whatever we hold in backup for the dead site.
        site.spawn_task(Task::Recover { dead });
    }

    /// Handle an incoming cluster-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload.clone() {
            Payload::SignOn { descriptor } => {
                // Id allocation may require remote calls — helper thread.
                // A joiner has no id yet and is answered at its physical
                // address; a *forwarded* sign-on (from a contact site that
                // is no id server) is answered like any normal request.
                let reply_addr = if msg.src_site.is_valid() {
                    self.addr_of(msg.src_site)
                        .unwrap_or_else(|| descriptor.addr.clone())
                } else {
                    descriptor.addr.clone()
                };
                site.spawn_task(Task::SignOn { msg, reply_addr });
            }
            Payload::SiteAnnounce { descriptor } => self.learn(site, descriptor),
            Payload::SignOff {
                site: gone,
                successor,
            } => {
                let mut st = self.state.lock();
                st.sites.remove(&gone);
                st.loads.remove(&gone);
                st.last_heard.remove(&gone);
                st.announced_to.remove(&gone);
                st.suspects.remove(&gone);
                st.incarnations.remove(&gone);
                st.draining.remove(&gone);
                st.coords.remove(&gone);
                st.succession.insert(gone, successor);
                if gone == st.id_server {
                    st.id_server = successor;
                }
                drop(st);
                site.security.forget(gone);
                // Its metrics digest stops contributing to the cluster
                // rollup (the crash path already did this; the orderly
                // path used to leak the entry).
                site.rollup.forget(gone);
                site.emit(TraceEvent::SiteGone {
                    site: site.my_id(),
                    gone,
                    crashed: false,
                });
            }
            Payload::SiteDraining {
                site: leaver,
                incarnation,
            } => {
                // Planned departure (wire v8): mark — no suspicion, no
                // tombstone, no detector involvement. The gossip doubles
                // as a liveness proof.
                if leaver.is_valid() && leaver != site.my_id() {
                    let mut st = self.state.lock();
                    st.last_heard.insert(leaver, Instant::now());
                    if incarnation > 0 {
                        let known = st.incarnations.entry(leaver).or_insert(0);
                        *known = (*known).max(incarnation);
                    }
                    st.draining.insert(leaver);
                }
            }
            Payload::Heartbeat { load, coord } => {
                self.note_load(msg.src_site, load);
                self.note_coord(msg.src_site, coord);
            }
            Payload::ClusterListRequest {} => {
                let sites = self.state.lock().sites.values().cloned().collect();
                site.reply_to(&msg, ManagerId::Cluster, Payload::ClusterList { sites });
            }
            Payload::ClusterList { sites } => {
                for d in sites {
                    self.learn(site, d);
                }
            }
            Payload::IdBlockRequest {} => {
                // Contingents: split our youngest range in half.
                let grant = {
                    let mut st = self.state.lock();
                    if let AllocState::Ranges { ranges } = &mut st.alloc {
                        ranges
                            .iter_mut()
                            .rev()
                            .find(|(lo, hi)| hi.saturating_sub(*lo) >= 1)
                            .map(|(lo, hi)| {
                                let mid = *lo + (*hi - *lo) / 2;
                                let grant = (mid + 1, *hi);
                                *hi = mid;
                                grant
                            })
                    } else {
                        None
                    }
                };
                let payload = match grant {
                    Some((start, end)) => Payload::IdBlockGrant {
                        start,
                        len: end - start + 1,
                    },
                    None => Payload::IdBlockGrant { start: 0, len: 0 },
                };
                site.reply_to(&msg, ManagerId::Cluster, payload);
            }
            Payload::IdBlockGrant { start, len } => {
                // Unsolicited grant: the contingent handed to us during
                // our own sign-on (paper: id servers "are given a
                // contingent of free ids during their own sign on").
                if crate::config::debug_enabled() {
                    eprintln!(
                        "[dbg site{}] got IdBlockGrant start={start} len={len}",
                        site.my_id().0
                    );
                }
                if len > 0 && matches!(self.strategy, IdAllocStrategy::Contingents { .. }) {
                    let mut st = self.state.lock();
                    // The grant may race our own sign-on completion;
                    // become a range holder either way.
                    if !matches!(st.alloc, AllocState::Ranges { .. }) {
                        st.alloc = AllocState::Ranges { ranges: vec![] };
                    }
                    if let AllocState::Ranges { ranges } = &mut st.alloc {
                        ranges.push((start, start + len - 1));
                    }
                }
                if len > 0 && matches!(self.strategy, IdAllocStrategy::CentralServer) {
                    // A draining central id server hands its counter to
                    // the successor (us): without this, no site could
                    // ever join again once the first site departs.
                    let mut st = self.state.lock();
                    st.alloc = AllocState::Central { next: start };
                    st.id_server = site.my_id();
                }
            }
            Payload::SiteCrashed {
                site: dead,
                successor,
                incarnation,
            } => {
                {
                    let mut st = self.state.lock();
                    st.succession.insert(dead, successor);
                }
                // Adopt the originator's successor verbatim so the whole
                // cluster agrees on the directory inheritor.
                self.declare_crashed_with(site, dead, false, Some(successor), incarnation);
            }
            Payload::SuspectSite {
                site: suspect,
                incarnation,
            } => self.on_suspect_gossip(site, msg.src_site, suspect, incarnation),
            Payload::RefuteSuspicion { descriptor } => {
                // The refuting descriptor carries the bumped incarnation:
                // learn() withdraws the suspicion and lifts any tombstone.
                self.learn(site, descriptor);
            }
            Payload::ProbeRequest { target, coord } => {
                // Probe the suspect on the requester's behalf — blocking,
                // so off the router thread. A Pong proves liveness at the
                // suspect's current incarnation; relay that as a fresh
                // ProbeAck (not a reply: the requester isn't waiting).
                self.note_coord(msg.src_site, coord);
                let requester = msg.src_site;
                site.spawn_task(Task::Run(Box::new(move |s: &SiteInner| {
                    let asked = Instant::now();
                    let Ok(reply) = s.request(
                        target,
                        ManagerId::Site,
                        ManagerId::Cluster,
                        Payload::Ping {
                            token: target.0 as u64,
                        },
                        s.config.help_timeout,
                    ) else {
                        return;
                    };
                    if matches!(reply.payload, Payload::Pong { .. }) {
                        // The relay ping is a measured round trip to the
                        // target — feed the prober's own coordinate.
                        s.cluster.observe_rtt(target, asked.elapsed());
                        let _ = s.send_payload(
                            requester,
                            ManagerId::Cluster,
                            ManagerId::Cluster,
                            s.next_seq(),
                            Payload::ProbeAck {
                                target,
                                incarnation: reply.src_incarnation,
                                coord: Some(s.cluster.my_coord()),
                            },
                        );
                    }
                })));
            }
            Payload::ProbeAck {
                target,
                incarnation,
                coord,
            } => {
                // The coordinate rides from the *prober* (the sender).
                self.note_coord(msg.src_site, coord);
                let mut st = self.state.lock();
                st.last_heard.insert(target, Instant::now());
                if incarnation > 0 {
                    let known = st.incarnations.entry(target).or_insert(0);
                    *known = (*known).max(incarnation);
                }
                let refuted = st.suspects.remove(&target).is_some();
                drop(st);
                if refuted {
                    site.emit(TraceEvent::SuspicionRefuted {
                        site: site.my_id(),
                        suspect: target,
                        incarnation,
                    });
                }
            }
            Payload::DeathNotice { incarnation } => {
                // Someone declared *us* dead: refute by outliving the
                // verdict — bump past the fenced floor and re-announce so
                // every site re-admits us at the new incarnation.
                let bumped = site.bump_incarnation_to(incarnation + 1);
                let descriptor = {
                    let mut st = self.state.lock();
                    let Some(me) = st.me.as_mut() else { return };
                    me.incarnation = bumped;
                    let d = me.clone();
                    st.sites.insert(d.site, d.clone());
                    d
                };
                for p in self.known_sites() {
                    if p != site.my_id() {
                        let _ = site.send_payload(
                            p,
                            ManagerId::Cluster,
                            ManagerId::Cluster,
                            site.next_seq(),
                            Payload::SiteAnnounce {
                                descriptor: descriptor.clone(),
                            },
                        );
                    }
                }
            }
            Payload::MetricsSummary { summary } => {
                // Piggybacked ops-plane digest (wire v7): latest-wins per
                // sender. No reply — it rides the heartbeat cadence.
                if msg.src_site.is_valid() {
                    site.rollup.record(msg.src_site, summary);
                }
            }
            other => {
                site.reply_to(
                    &msg,
                    ManagerId::Cluster,
                    Payload::Error {
                        message: format!("cluster: unexpected {}", other.name()),
                    },
                );
            }
        }
    }
}

enum AllocOutcome {
    Allocated(SiteId),
    /// Contingents exhausted: must fetch a block first.
    NeedBlock,
    /// Not an id server: forward to one.
    Forward,
}

/// Helper-thread handling of a sign-on request (may block on remote id
/// servers — the router must not).
pub(crate) fn handle_signon_blocking(site: &SiteInner, msg: SdMessage, reply_addr: PhysicalAddr) {
    let Payload::SignOn { descriptor } = msg.payload.clone() else {
        return;
    };
    let outcome = site.cluster.allocate_id();
    let assigned = match outcome {
        AllocOutcome::Allocated(id) => Some(id),
        AllocOutcome::NeedBlock => {
            // Contingents: beg peers for a block, then retry once.
            let mut got = false;
            for peer in site.cluster.known_sites() {
                if peer == site.my_id() {
                    continue;
                }
                if let Ok(reply) = site.request(
                    peer,
                    ManagerId::Cluster,
                    ManagerId::Cluster,
                    Payload::IdBlockRequest {},
                    site.config.request_timeout,
                ) {
                    if let Payload::IdBlockGrant { start, len } = reply.payload {
                        if len > 0 {
                            let mut st = site.cluster.state.lock();
                            if let AllocState::Ranges { ranges } = &mut st.alloc {
                                ranges.push((start, start + len - 1));
                                got = true;
                            }
                        }
                    }
                }
                if got {
                    break;
                }
            }
            match site.cluster.allocate_id() {
                AllocOutcome::Allocated(id) => Some(id),
                _ => None,
            }
        }
        AllocOutcome::Forward => {
            // Ask an id server to run the whole sign-on; relay its answer.
            match site.cluster.id_server_target() {
                Some(server) if server != site.my_id() => {
                    match site.request(
                        server,
                        ManagerId::Cluster,
                        ManagerId::Cluster,
                        Payload::SignOn {
                            descriptor: descriptor.clone(),
                        },
                        site.config.request_timeout,
                    ) {
                        Ok(reply) => match reply.payload {
                            Payload::SignOnAck { assigned, cluster } => {
                                // Learn what the server told the joiner.
                                for d in &cluster {
                                    site.cluster.learn(site, d.clone());
                                }
                                let r = msg.reply(
                                    site.next_seq(),
                                    ManagerId::Cluster,
                                    Payload::SignOnAck { assigned, cluster },
                                );
                                let _ = site.send_msg_to_addr(&reply_addr, r);
                                return;
                            }
                            _ => None,
                        },
                        Err(_) => None,
                    }
                }
                _ => None,
            }
        }
    };
    let Some(assigned) = assigned else {
        let r = msg.reply(
            site.next_seq(),
            ManagerId::Cluster,
            Payload::SignOnRefused {
                reason: "no id server reachable / id space exhausted".into(),
            },
        );
        let _ = site.send_msg_to_addr(&reply_addr, r);
        return;
    };
    // Record the newcomer and answer with the current cluster view.
    let mut d = descriptor;
    d.site = assigned;
    site.cluster.learn(site, d.clone());
    let cluster_list: Vec<SiteDescriptor> =
        site.cluster.state.lock().sites.values().cloned().collect();
    let r = msg.reply(
        site.next_seq(),
        ManagerId::Cluster,
        Payload::SignOnAck {
            assigned,
            cluster: cluster_list,
        },
    );
    let _ = site.send_msg_to_addr(&reply_addr, r);
    // Under the contingents concept, hand the newcomer its own block of
    // free ids (split off ours) so it can serve joins itself.
    let grant = {
        let mut st = site.cluster.state.lock();
        if let AllocState::Ranges { ranges } = &mut st.alloc {
            ranges
                .iter_mut()
                .rev()
                .find(|(lo, hi)| hi.saturating_sub(*lo) >= 1)
                .map(|(lo, hi)| {
                    let mid = *lo + (*hi - *lo) / 2;
                    let g = (mid + 1, *hi);
                    *hi = mid;
                    g
                })
        } else {
            None
        }
    };
    if let Some((start, end)) = grant {
        if crate::config::debug_enabled() {
            eprintln!(
                "[dbg site{}] granting block {start}..={end} to {assigned}",
                site.my_id().0
            );
        }
        let _ = site.send_payload(
            assigned,
            ManagerId::Cluster,
            ManagerId::Cluster,
            site.next_seq(),
            Payload::IdBlockGrant {
                start,
                len: end - start + 1,
            },
        );
    }
    // Propagate the newcomer to everyone else.
    for p in site.cluster.known_sites() {
        if p != site.my_id() && p != assigned {
            let _ = site.send_payload(
                p,
                ManagerId::Cluster,
                ManagerId::Cluster,
                site.next_seq(),
                Payload::SiteAnnounce {
                    descriptor: d.clone(),
                },
            );
        }
    }
}
