//! The replication manager: replicated and hedged microframe execution.
//!
//! Commodity clusters fail in ways the paper's crash model does not
//! cover: a site can compute the *wrong* answer (bit flips, overclocked
//! silicon, broken DIMMs) or compute the right answer *late* (GC pause,
//! thermal throttling). Both are invisible to the failure detector —
//! the site heartbeats happily throughout. This manager defends the
//! dataflow graph against both, per program, under a
//! [`ReplicationPolicy`]:
//!
//! - **Vote mode** (`Replicate { k, .. }`): a frame's home site keeps
//!   the executable frame in *escrow* and dispatches `k` tagged copies
//!   ([`Payload::ReplicaTask`]) to `k` distinct sites. Every replica
//!   executes with its result sends *buffered* into a ballot
//!   ([`Payload::ReplicaDone`]) instead of applied. The coordinator
//!   compares ballots: a majority of identical send-vectors wins and is
//!   applied exactly once; disagreement is surfaced as
//!   [`SdvmError::ResultDivergence`]. A `k = 2` tie re-executes on a
//!   fresh site until a majority forms or the round budget runs out —
//!   then the frame is quarantined in the dead-letter store, where
//!   `redrive()` re-enqueues it (unreplicated) after an operator looks.
//! - **Hedge mode** (`Hedge { delay, .. }`): the frame is dispatched as
//!   a single buffered replica; if no ballot arrives within `delay`,
//!   a duplicate is dispatched to a different site and the first ballot
//!   wins. Because losers' sends were buffered, never applied, no
//!   consumer ever observes two results — hedging is invisible to the
//!   program except in its tail latency.
//!
//! Replicated/hedged microthreads should be pure leaf compute (reads +
//! sends): sends are compared and deduplicated, but any *other* side
//! effect (I/O, global writes, frame creation) happens once per replica.

use crate::frame::{Microframe, ReplicaRun};
use crate::site::{SiteInner, Task};
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use sdvm_types::{GlobalAddress, ManagerId, ProgramId, SdvmError, SiteId};
use sdvm_wire::{Payload, WireFrame, WireSend};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Extra dispatch rounds (tie-break re-executions / hedge duplicates)
/// beyond the initial one before the coordinator gives up and
/// quarantines the frame.
const MAX_EXTRA_ROUNDS: u32 = 2;

/// How an escrow entry decides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// k-way voting: a majority of identical ballots wins.
    Vote,
    /// Tail-latency hedging: the first successful ballot wins; the
    /// deadline fires duplicates.
    Hedge,
}

/// One replica's reported outcome.
struct Ballot {
    generation: u32,
    replica: u8,
    site: SiteId,
    ok: bool,
    sends: Vec<WireSend>,
    error: String,
}

/// One frame held in escrow while its replicas run.
struct Entry {
    /// Pristine copy of the executable frame (for quarantine and
    /// re-dispatch).
    original: Microframe,
    mode: Mode,
    /// Replicas dispatched so far (across all rounds).
    k: u8,
    /// Matching successful ballots required to win.
    need: usize,
    /// Current dispatch round; ballots are deduplicated per
    /// (generation, replica).
    generation: u32,
    /// Per-round delay: vote escrow timeout or hedge delay.
    round_delay: Duration,
    deadline: Instant,
    ballots: Vec<Ballot>,
    /// Sites already given a replica (fresh sites are preferred for
    /// re-dispatch).
    sites_used: Vec<SiteId>,
    /// Extra rounds already spent.
    rounds: u32,
    enqueued_at: Instant,
    /// Divergence is counted once per frame, however many ballots
    /// disagree.
    divergence_noted: bool,
}

/// Action decided under the ledger lock, executed after it is released
/// (dispatching and quarantining send messages / may block).
enum Outcome {
    None,
    Win {
        original: Microframe,
        mode: Mode,
        winner: SiteId,
        winner_generation: u32,
        sends: Vec<WireSend>,
    },
    Redispatch {
        wire: WireFrame,
        target: SiteId,
        generation: u32,
        replica: u8,
        mode: Mode,
        pending_for: Duration,
    },
    Quarantine {
        original: Microframe,
        error: SdvmError,
    },
}

/// The replication manager of one site (coordinator state only;
/// executing replicas carry their identity in [`ReplicaRun`]).
#[derive(Default)]
pub struct ReplicationManager {
    ledger: Mutex<HashMap<GlobalAddress, Entry>>,
}

impl ReplicationManager {
    /// Fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames currently held in escrow (tests / introspection).
    pub fn pending(&self) -> usize {
        self.ledger.lock().len()
    }

    /// Called by the memory manager when a frame becomes executable on
    /// its home site. Returns the frame back for normal enqueueing, or
    /// `None` when replication took over its dispatch.
    pub fn intercept(&self, site: &SiteInner, frame: Microframe) -> Option<Microframe> {
        use sdvm_types::ReplicationPolicy;
        if frame.replica.is_some()
            || frame.hint.sticky
            || frame.thread.index == crate::thread::RESULT_THREAD_INDEX
            || frame.id.home != site.my_id()
        {
            return Some(frame);
        }
        match site.program.replication_of(frame.program()) {
            ReplicationPolicy::Off => Some(frame),
            ReplicationPolicy::Replicate { k, selector } => {
                if k <= 1 || !selector.covers(frame.thread.index) {
                    return Some(frame);
                }
                self.begin(site, frame, Mode::Vote, k, site.config.request_timeout);
                None
            }
            ReplicationPolicy::Hedge { delay, selector } => {
                if !selector.covers(frame.thread.index) {
                    return Some(frame);
                }
                self.begin(site, frame, Mode::Hedge, 1, delay);
                None
            }
        }
    }

    /// Open the escrow entry and dispatch the first round.
    fn begin(&self, site: &SiteInner, frame: Microframe, mode: Mode, k: u8, round_delay: Duration) {
        let wire = frame.to_wire();
        let targets = choose_sites(site, frame.id, k as usize, &[]);
        let k = targets.len().max(1) as u8;
        let need = match mode {
            Mode::Vote => k as usize / 2 + 1,
            Mode::Hedge => 1,
        };
        let now = Instant::now();
        self.ledger.lock().insert(
            frame.id,
            Entry {
                original: frame,
                mode,
                k,
                need,
                generation: 0,
                round_delay,
                deadline: now + round_delay,
                ballots: Vec::new(),
                sites_used: targets.clone(),
                rounds: 0,
                enqueued_at: now,
                divergence_noted: false,
            },
        );
        for (i, t) in targets.iter().enumerate() {
            self.dispatch(site, &wire, *t, 0, i as u8, mode);
        }
    }

    /// Send one replica to `target` (locally enqueued when the target is
    /// this site).
    fn dispatch(
        &self,
        site: &SiteInner,
        wire: &WireFrame,
        target: SiteId,
        generation: u32,
        replica: u8,
        mode: Mode,
    ) {
        let me = site.my_id();
        site.metrics.replicas_dispatched.inc();
        site.emit(TraceEvent::ReplicaDispatched {
            site: me,
            frame: wire.id,
            target,
            generation,
            replica,
            vote: mode == Mode::Vote,
        });
        if target == me {
            let mut f = Microframe::from_wire(wire.clone());
            // Replicas are pinned: they never migrate through the help
            // pool (their ballot must come back to this coordinator).
            f.hint.sticky = true;
            f.replica = Some(ReplicaRun {
                coordinator: me,
                generation,
                replica,
                vote: true,
            });
            site.scheduling.enqueue_executable(site, f);
        } else {
            let _ = site.send_payload(
                target,
                ManagerId::Scheduling,
                ManagerId::Scheduling,
                site.next_seq(),
                Payload::ReplicaTask {
                    frame: wire.clone(),
                    generation,
                    replica,
                    coordinator: me,
                    vote: true,
                },
            );
        }
    }

    /// An executed replica reports its outcome: record the ballot
    /// locally when this site coordinates the frame, otherwise send a
    /// [`Payload::ReplicaDone`] to the coordinator. Called from the
    /// processing manager's worker loop.
    pub fn report(
        &self,
        site: &SiteInner,
        frame: GlobalAddress,
        run: ReplicaRun,
        outcome: Result<Vec<WireSend>, SdvmError>,
    ) {
        let (ok, sends, error) = match outcome {
            Ok(sends) => (true, sends, String::new()),
            Err(e) => (false, Vec::new(), format!("{e}")),
        };
        if run.coordinator == site.my_id() {
            self.on_ballot(
                site,
                frame,
                run.generation,
                run.replica,
                ok,
                sends,
                error,
                site.my_id(),
            );
        } else {
            let _ = site.send_payload(
                run.coordinator,
                ManagerId::Scheduling,
                ManagerId::Scheduling,
                site.next_seq(),
                Payload::ReplicaDone {
                    frame,
                    generation: run.generation,
                    replica: run.replica,
                    ok,
                    sends,
                    error,
                },
            );
        }
    }

    /// A ballot arrived (from the wire or a local replica). Tallies it
    /// and settles the escrow entry when a verdict is reached. Safe to
    /// call from the router thread: winner sends are applied on a
    /// helper task because they may block.
    #[allow(clippy::too_many_arguments)]
    pub fn on_ballot(
        &self,
        site: &SiteInner,
        frame: GlobalAddress,
        generation: u32,
        replica: u8,
        ok: bool,
        sends: Vec<WireSend>,
        error: String,
        from: SiteId,
    ) {
        let outcome = {
            let mut ledger = self.ledger.lock();
            let Some(entry) = ledger.get_mut(&frame) else {
                // Settled (or never escrowed here): a straggler's or
                // duplicate's ballot — fenced.
                return;
            };
            if generation > entry.generation
                || entry
                    .ballots
                    .iter()
                    .any(|b| b.generation == generation && b.replica == replica)
            {
                return;
            }
            entry.ballots.push(Ballot {
                generation,
                replica,
                site: from,
                ok,
                sends,
                error,
            });
            let outcome = tally(site, frame, entry);
            if !matches!(outcome, Outcome::None) {
                match &outcome {
                    Outcome::Redispatch { .. } => {}
                    _ => {
                        ledger.remove(&frame);
                    }
                }
            }
            outcome
        };
        self.settle(site, outcome);
    }

    /// Deadline sweep, driven by the maintenance thread: vote entries
    /// whose round timed out get one extra replica; hedge entries past
    /// their delay fire a duplicate; entries out of rounds are
    /// quarantined.
    pub fn tick(&self, site: &SiteInner) {
        let now = Instant::now();
        let mut outcomes: Vec<Outcome> = Vec::new();
        {
            let mut ledger = self.ledger.lock();
            let mut give_up: Vec<GlobalAddress> = Vec::new();
            for (addr, entry) in ledger.iter_mut() {
                if now < entry.deadline {
                    continue;
                }
                if entry.rounds >= MAX_EXTRA_ROUNDS {
                    give_up.push(*addr);
                    continue;
                }
                if let Some(out) = bump_round(site, entry, now) {
                    outcomes.push(out);
                }
            }
            for addr in give_up {
                if let Some(entry) = ledger.remove(&addr) {
                    outcomes.push(Outcome::Quarantine {
                        error: stall_error(&entry),
                        original: entry.original,
                    });
                }
            }
        }
        for out in outcomes {
            self.settle(site, out);
        }
    }

    /// Drop escrow state of a terminated program.
    pub fn purge_program(&self, program: ProgramId) {
        self.ledger
            .lock()
            .retain(|_, e| e.original.program() != program);
    }

    /// Execute a decided outcome (lock released; may send / may block
    /// via helper tasks).
    fn settle(&self, site: &SiteInner, outcome: Outcome) {
        match outcome {
            Outcome::None => {}
            Outcome::Win {
                original,
                mode,
                winner,
                winner_generation,
                sends,
            } => {
                let id = original.id;
                let thread = original.thread;
                if mode == Mode::Hedge && winner_generation > 0 {
                    site.metrics.hedge_wins.inc();
                    site.emit(TraceEvent::HedgeWon {
                        site: site.my_id(),
                        frame: id,
                        winner,
                    });
                }
                // Applying the winner's sends may block on remote
                // owners — helper task, never the router thread.
                site.spawn_task(Task::Run(Box::new(move |site| {
                    for s in sends {
                        if let Err(e) = site
                            .memory
                            .apply_or_forward(site, s.target, s.slot, s.value, 4)
                        {
                            if crate::config::debug_enabled() {
                                eprintln!(
                                    "[dbg site{}] replication: winner send {} slot {} failed: {e}",
                                    site.my_id().0,
                                    s.target,
                                    s.slot
                                );
                            }
                        }
                    }
                    site.memory.consume_frame(site, id);
                    site.emit(TraceEvent::FrameExecuted {
                        site: site.my_id(),
                        frame: id,
                        thread,
                    });
                })));
            }
            Outcome::Redispatch {
                wire,
                target,
                generation,
                replica,
                mode,
                pending_for,
            } => {
                if mode == Mode::Hedge {
                    site.metrics.hedges_fired.inc();
                    site.metrics.hedge_delay_us.observe_duration(pending_for);
                    site.emit(TraceEvent::HedgeFired {
                        site: site.my_id(),
                        frame: wire.id,
                        target,
                    });
                }
                self.dispatch(site, &wire, target, generation, replica, mode);
            }
            Outcome::Quarantine { original, error } => {
                site.deadletter.quarantine(site, original, error);
            }
        }
    }
}

/// Tally the ballots of one entry after a new arrival. Decides a win,
/// an immediate tie-break re-dispatch, a quarantine, or nothing yet.
/// Mutates round state when re-dispatching.
fn tally(site: &SiteInner, frame: GlobalAddress, entry: &mut Entry) -> Outcome {
    // Group successful ballots by their full send-vector.
    let mut groups: Vec<(usize, usize)> = Vec::new(); // (first ballot idx, count)
    for (i, b) in entry.ballots.iter().enumerate() {
        if !b.ok {
            continue;
        }
        match groups
            .iter_mut()
            .find(|(first, _)| entry.ballots[*first].sends == b.sends)
        {
            Some((_, n)) => *n += 1,
            None => groups.push((i, 1)),
        }
    }
    if groups.len() >= 2 && !entry.divergence_noted {
        entry.divergence_noted = true;
        site.metrics.result_divergence.inc();
        site.emit(TraceEvent::ResultDivergence {
            site: site.my_id(),
            frame,
            thread: entry.original.thread,
        });
    }
    if let Some((first, _)) = groups.iter().find(|(_, n)| *n >= entry.need) {
        let b = &entry.ballots[*first];
        return Outcome::Win {
            original: entry.original.clone(),
            mode: entry.mode,
            winner: b.site,
            winner_generation: b.generation,
            sends: b.sends.clone(),
        };
    }
    if entry.ballots.len() < entry.k as usize {
        return Outcome::None; // ballots still outstanding
    }
    // Every dispatched replica reported, no majority: tie (divergence)
    // or total failure. Re-execute on a fresh site while the round
    // budget lasts.
    if entry.rounds < MAX_EXTRA_ROUNDS {
        if let Some(out) = bump_round(site, entry, Instant::now()) {
            return out;
        }
    }
    Outcome::Quarantine {
        original: entry.original.clone(),
        error: stall_error(entry),
    }
}

/// Start one extra round: bump the generation, pick a fresh site,
/// produce the re-dispatch outcome. `None` only if no site exists.
fn bump_round(site: &SiteInner, entry: &mut Entry, now: Instant) -> Option<Outcome> {
    let target = choose_sites(site, entry.original.id, 1, &entry.sites_used)
        .into_iter()
        .next()
        .or_else(|| {
            // All known sites already used: reuse, rotated by round.
            let all = choose_sites(site, entry.original.id, usize::MAX, &[]);
            let n = all.len();
            (n > 0).then(|| all[(entry.rounds as usize + 1) % n])
        })?;
    entry.rounds += 1;
    entry.generation += 1;
    entry.k += 1;
    if entry.mode == Mode::Vote {
        entry.need = entry.k as usize / 2 + 1;
    }
    entry.deadline = now + entry.round_delay;
    entry.sites_used.push(target);
    Some(Outcome::Redispatch {
        wire: entry.original.to_wire(),
        target,
        generation: entry.generation,
        replica: (entry.k - 1),
        mode: entry.mode,
        pending_for: now.saturating_duration_since(entry.enqueued_at),
    })
}

/// The error a frame is quarantined with when replication gives up.
fn stall_error(entry: &Entry) -> SdvmError {
    let successes = entry.ballots.iter().filter(|b| b.ok).count();
    if successes == 0 {
        // Every replica failed the same way the frame itself would
        // have: surface the application error, not a divergence.
        let detail = entry
            .ballots
            .iter()
            .find(|b| !b.error.is_empty())
            .map(|b| b.error.clone())
            .unwrap_or_else(|| "no replica reported".to_string());
        SdvmError::Application(format!(
            "all {} replicas failed: {detail}",
            entry.ballots.len()
        ))
    } else {
        let detail = format!(
            "{} ballots, {} successful, no {}-majority after {} extra rounds",
            entry.ballots.len(),
            successes,
            entry.need,
            entry.rounds
        );
        SdvmError::ResultDivergence {
            frame: entry.original.id,
            thread: entry.original.thread,
            detail,
        }
    }
}

/// Deterministically pick up to `n` distinct live sites for a frame's
/// replicas: the sorted membership rotated by the frame's local id, so
/// load spreads without coordination and re-runs pick the same sites.
///
/// Proximity-aware (wire v9): once this site's Vivaldi coordinate has
/// converged, the rotation runs over the nearest `2n` members instead
/// of the whole roster — replica round trips stay short without
/// collapsing onto a single neighbor (the rotation by frame id still
/// spreads load inside the pool, and re-runs still pick the same
/// sites for the same frame). Until convergence this is exactly the
/// original whole-roster rotation.
fn choose_sites(
    site: &SiteInner,
    frame: GlobalAddress,
    n: usize,
    exclude: &[SiteId],
) -> Vec<SiteId> {
    let mut all = site.cluster.known_sites();
    if all.is_empty() {
        return vec![site.my_id()];
    }
    if n < all.len() && site.cluster.rank_by_proximity(&mut all) {
        let pool = n.saturating_mul(2).clamp(1, all.len());
        all.truncate(pool);
        all.sort_unstable(); // rotation needs a stable id order
    }
    let start = (frame.local as usize) % all.len();
    let mut picked = Vec::new();
    for i in 0..all.len() {
        if picked.len() >= n {
            break;
        }
        let s = all[(start + i) % all.len()];
        if !exclude.contains(&s) {
            picked.push(s);
        }
    }
    picked
}
