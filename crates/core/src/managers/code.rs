//! The code manager (paper §4): stores and distributes microthread code.
//!
//! Microthreads must be present in the local platform's binary format to
//! execute. If a binary is missing, the code manager requests it from the
//! program's code home site or a *code distribution site*; if the
//! answering site has no binary for the requester's platform it ships the
//! *source*, which is compiled on the fly (simulated by
//! `SiteConfig::compile_latency`) and the fresh binary uploaded back to a
//! distribution site "so that other sites will receive the binary code at
//! first go". Handler functions themselves come from the in-process
//! [`AppRegistry`](crate::thread::AppRegistry) — see DESIGN.md §1.

use crate::config::SiteConfig;
use crate::site::SiteInner;
use crate::thread::{ThreadFn, RESULT_THREAD_INDEX};
use crate::trace::TraceEvent;
use bytes::Bytes;
use parking_lot::Mutex;
use sdvm_types::{ManagerId, MicrothreadId, PlatformId, ProgramId, SdvmError, SdvmResult, SiteId};
use sdvm_wire::{Payload, SdMessage};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

/// Code-manager counters (the code-distribution experiments' numbers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CodeStats {
    /// On-the-fly compiles performed here.
    pub compiles: u64,
    /// Binaries fetched from remote sites.
    pub remote_fetches: u64,
}

/// The code manager of one site.
pub struct CodeManager {
    /// (microthread, platform) binaries present on this site.
    available: Mutex<HashSet<(MicrothreadId, PlatformId)>>,
    /// Programs whose *source code* this site holds (can serve
    /// `CodeSource` and compile locally).
    sources: Mutex<HashSet<ProgramId>>,
    my_platform: PlatformId,
    compile_latency: Duration,
    binary_fetch_latency: Duration,
    /// Counters for the code-distribution experiments.
    compiles: std::sync::atomic::AtomicU64,
    remote_fetches: std::sync::atomic::AtomicU64,
}

impl CodeManager {
    /// Build from the site config.
    pub fn new(config: &SiteConfig) -> Self {
        CodeManager {
            available: Mutex::new(HashSet::new()),
            sources: Mutex::new(HashSet::new()),
            my_platform: config.platform,
            compile_latency: config.compile_latency,
            binary_fetch_latency: config.binary_fetch_latency,
            compiles: std::sync::atomic::AtomicU64::new(0),
            remote_fetches: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Code-manager counters so far.
    pub fn stats(&self) -> CodeStats {
        CodeStats {
            compiles: self.compiles.load(std::sync::atomic::Ordering::Relaxed),
            remote_fetches: self
                .remote_fetches
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// A program was started locally: all its microthreads are available
    /// as binaries for the local platform, and the source is held.
    pub fn mark_program_local(&self, program: ProgramId, thread_count: u32) {
        let mut avail = self.available.lock();
        for i in 0..thread_count {
            avail.insert((MicrothreadId::new(program, i), self.my_platform));
        }
        self.sources.lock().insert(program);
    }

    /// Programs whose source this site holds. Used by the drain flow:
    /// the leaver ships a `CodeSource` per held program to its successor
    /// so source-serving duty survives the departure.
    pub fn local_source_programs(&self) -> Vec<ProgramId> {
        self.sources.lock().iter().copied().collect()
    }

    /// Is a binary for (thread, platform) present here?
    pub fn has_binary(&self, thread: MicrothreadId, platform: PlatformId) -> bool {
        self.available.lock().contains(&(thread, platform))
    }

    /// Ensure `thread` is locally executable and return its handler.
    /// May block on remote code requests and on-the-fly compilation.
    pub fn ensure(&self, site: &SiteInner, thread: MicrothreadId) -> SdvmResult<ThreadFn> {
        if thread.index == RESULT_THREAD_INDEX {
            // The hidden result-delivery microthread is built in.
            return Ok(result_thread());
        }
        if self.has_binary(thread, self.my_platform) {
            return site
                .registry
                .resolve(thread)
                .ok_or(SdvmError::CodeMissing(thread));
        }
        // Local source but no "binary" yet: compile on the fly without
        // any network round trip.
        if self.sources.lock().contains(&thread.program) {
            self.compile(site, thread)?;
            self.upload_binary(site, thread);
            return site
                .registry
                .resolve(thread)
                .ok_or(SdvmError::CodeMissing(thread));
        }
        for target in self.code_sites(site, thread.program) {
            site.emit(TraceEvent::CodeRequested {
                site: site.my_id(),
                thread,
                platform: self.my_platform,
            });
            let reply = match site.request(
                target,
                ManagerId::Code,
                ManagerId::Code,
                Payload::CodeRequest {
                    thread,
                    platform: self.my_platform,
                },
                site.config.request_timeout,
            ) {
                Ok(r) => r,
                Err(_) => continue, // site gone or slow: try the next one
            };
            match reply.payload {
                Payload::CodeBinary { .. } => {
                    self.remote_fetches
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if !self.binary_fetch_latency.is_zero() {
                        std::thread::sleep(self.binary_fetch_latency);
                    }
                    self.available.lock().insert((thread, self.my_platform));
                    return site
                        .registry
                        .resolve(thread)
                        .ok_or(SdvmError::CodeMissing(thread));
                }
                Payload::CodeSource { .. } => {
                    self.sources.lock().insert(thread.program);
                    self.compile(site, thread)?;
                    self.upload_binary(site, thread);
                    return site
                        .registry
                        .resolve(thread)
                        .ok_or(SdvmError::CodeMissing(thread));
                }
                Payload::CodeUnavailable { .. } => continue,
                _ => continue,
            }
        }
        Err(SdvmError::CodeMissing(thread))
    }

    /// Compile-on-the-fly simulation: pay the latency, gain the binary.
    fn compile(&self, site: &SiteInner, thread: MicrothreadId) -> SdvmResult<()> {
        let started = std::time::Instant::now();
        if !self.compile_latency.is_zero() {
            std::thread::sleep(self.compile_latency);
        }
        site.metrics
            .compile_us
            .observe(started.elapsed().as_micros() as u64);
        self.compiles
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        site.emit(TraceEvent::CodeCompiled {
            site: site.my_id(),
            thread,
            platform: self.my_platform,
        });
        self.available.lock().insert((thread, self.my_platform));
        Ok(())
    }

    /// After compiling, upload the binary to a code distribution site so
    /// others of our platform get it at first go.
    fn upload_binary(&self, site: &SiteInner, thread: MicrothreadId) {
        let me = site.my_id();
        if let Some(dist) = site
            .cluster
            .code_distribution_sites()
            .into_iter()
            .find(|&s| s != me)
        {
            let _ = site.send_payload(
                dist,
                ManagerId::Code,
                ManagerId::Code,
                site.next_seq(),
                Payload::CodeUpload {
                    thread,
                    platform: self.my_platform,
                    artifact: artifact_bytes(thread, self.my_platform),
                },
            );
        }
    }

    /// Candidate sites to ask for code: the program's code home first,
    /// then code distribution sites, then everyone else.
    fn code_sites(&self, site: &SiteInner, program: ProgramId) -> Vec<SiteId> {
        let me = site.my_id();
        let mut out = Vec::new();
        if let Some(home) = site.program.code_home(program) {
            if home != me {
                out.push(home);
            }
        }
        for s in site.cluster.code_distribution_sites() {
            if s != me && !out.contains(&s) {
                out.push(s);
            }
        }
        for s in site.cluster.known_sites() {
            if s != me && !out.contains(&s) {
                out.push(s);
            }
        }
        out
    }

    /// Handle an incoming code-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload.clone() {
            Payload::CodeRequest { thread, platform } => {
                let reply = if self.available.lock().contains(&(thread, platform)) {
                    Payload::CodeBinary {
                        thread,
                        platform,
                        artifact: artifact_bytes(thread, platform),
                    }
                } else if self.sources.lock().contains(&thread.program) {
                    Payload::CodeSource {
                        thread,
                        source: Bytes::from(format!("// source of {thread}")),
                    }
                } else {
                    Payload::CodeUnavailable { thread }
                };
                site.reply_to(&msg, ManagerId::Code, reply);
            }
            Payload::CodeUpload {
                thread, platform, ..
            } => {
                self.available.lock().insert((thread, platform));
            }
            // Unclaimed replies after a timeout still improve our cache.
            Payload::CodeBinary {
                thread, platform, ..
            } => {
                if platform == self.my_platform {
                    self.available.lock().insert((thread, platform));
                }
            }
            Payload::CodeSource { thread, .. } => {
                self.sources.lock().insert(thread.program);
            }
            Payload::CodeUnavailable { .. } => {}
            other => {
                site.reply_to(
                    &msg,
                    ManagerId::Code,
                    Payload::Error {
                        message: format!("code: unexpected {}", other.name()),
                    },
                );
            }
        }
    }

    /// Purge a terminated program's code.
    pub fn purge_program(&self, program: ProgramId) {
        self.available.lock().retain(|(t, _)| t.program != program);
        self.sources.lock().remove(&program);
    }
}

/// Synthetic binary artifact standing in for compiled machine code; its
/// contents identify (thread, platform) so tests can check what was
/// shipped.
fn artifact_bytes(thread: MicrothreadId, platform: PlatformId) -> Bytes {
    Bytes::from(format!("BIN:{thread}@{platform}"))
}

/// The built-in result-delivery microthread: takes the single parameter
/// of the program's hidden result frame and completes the program.
fn result_thread() -> ThreadFn {
    Arc::new(|ctx| {
        let value = ctx.param(0)?.clone();
        ctx.deliver_result(value);
        Ok(())
    })
}
