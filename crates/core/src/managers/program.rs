//! The program manager (paper §4): multi-program bookkeeping.
//!
//! "If the SDVM runs more than one program at the same time, the programs
//! must be distinguished." Each site keeps a list of programs it works
//! on: the *code home site* (to request microthread code from), and a
//! terminated flag so a program's microthreads and objects can be purged.

use crate::site::SiteInner;
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use sdvm_types::{
    FailurePolicy, GlobalAddress, ManagerId, MicrothreadId, ProgramId, ReplicationPolicy,
    SdvmError, SdvmResult, SiteId, Value,
};
use sdvm_wire::{Payload, SdMessage};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// What a site knows about one program.
#[derive(Clone, Debug)]
pub struct ProgramInfo {
    /// Site to request microthread code from (usually the starting site).
    pub code_home: SiteId,
    /// Human-readable name.
    pub name: String,
    /// Number of microthreads in the code table.
    pub threads: u32,
    /// Set once the program delivered its result.
    pub terminated: bool,
}

/// The program manager of one site.
#[derive(Default)]
pub struct ProgramManager {
    programs: Mutex<HashMap<ProgramId, ProgramInfo>>,
    waiters: Mutex<HashMap<ProgramId, crossbeam::channel::Sender<SdvmResult<Value>>>>,
    /// Failure policy per locally started program (frontend-only state;
    /// the quarantining site reports here and this map decides).
    policies: Mutex<HashMap<ProgramId, FailurePolicy>>,
    /// Replication policy per program. Unlike `policies` this is
    /// cluster-wide state: every site learns it from `ProgramRegister`
    /// so a frame's home site can replicate or hedge its dispatch.
    replication: Mutex<HashMap<ProgramId, ReplicationPolicy>>,
    /// Watchdog state: when a locally started program was first seen
    /// quiet (no runnable frames, no in-flight requests, result still
    /// undelivered). Cleared on any sign of life.
    quiet_since: Mutex<HashMap<ProgramId, Instant>>,
    /// Checkpoint snapshots stored on this site ("the sites where
    /// checkpoints are stored", §4): program → (epoch, snapshot bytes).
    checkpoints: Mutex<HashMap<ProgramId, (u64, bytes::Bytes)>>,
    next_local: AtomicU32,
}

impl ProgramManager {
    /// Fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a cluster-unique program id: the starting site's id in
    /// the upper bits, a local counter in the lower.
    pub fn alloc_program_id(&self, site: &SiteInner) -> ProgramId {
        let n = self.next_local.fetch_add(1, Ordering::Relaxed);
        ProgramId((site.my_id().0 << 16) | (n & 0xffff))
    }

    /// Register a program (locally started or announced by another site).
    pub fn register(&self, program: ProgramId, info: ProgramInfo) {
        self.programs.lock().entry(program).or_insert(info);
    }

    /// Install the result waiter for a locally started program. The
    /// channel carries a `Result` so quarantine escalation and the stuck
    /// watchdog can fail the waiter instead of leaving it hanging.
    pub fn install_waiter(
        &self,
        program: ProgramId,
    ) -> crossbeam::channel::Receiver<SdvmResult<Value>> {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.waiters.lock().insert(program, tx);
        rx
    }

    /// Set the failure policy for a locally started program (default:
    /// [`FailurePolicy::FailFast`]).
    pub fn set_policy(&self, program: ProgramId, policy: FailurePolicy) {
        self.policies.lock().insert(program, policy);
    }

    /// The failure policy governing a program on this frontend.
    pub fn policy_of(&self, program: ProgramId) -> FailurePolicy {
        self.policies
            .lock()
            .get(&program)
            .copied()
            .unwrap_or_default()
    }

    /// Set the replication policy for a program (default:
    /// [`ReplicationPolicy::Off`]). Learned cluster-wide via
    /// `ProgramRegister`.
    pub fn set_replication(&self, program: ProgramId, policy: ReplicationPolicy) {
        self.replication.lock().insert(program, policy);
    }

    /// The replication policy governing a program's dispatch on this site.
    pub fn replication_of(&self, program: ProgramId) -> ReplicationPolicy {
        self.replication
            .lock()
            .get(&program)
            .copied()
            .unwrap_or_default()
    }

    /// The program's code home site, if known here.
    pub fn code_home(&self, program: ProgramId) -> Option<SiteId> {
        self.programs.lock().get(&program).map(|i| i.code_home)
    }

    /// Name for traces/frontend.
    pub fn name_of(&self, program: ProgramId) -> Option<String> {
        self.programs.lock().get(&program).map(|i| i.name.clone())
    }

    /// Number of non-terminated programs this site knows/works on.
    pub fn active_count(&self) -> u32 {
        self.programs
            .lock()
            .values()
            .filter(|i| !i.terminated)
            .count() as u32
    }

    /// Is the program known and still running?
    pub fn is_active(&self, program: ProgramId) -> bool {
        self.programs
            .lock()
            .get(&program)
            .map(|i| !i.terminated)
            .unwrap_or(false)
    }

    /// Deliver a locally finished program's result: wake the waiting
    /// handle and broadcast termination so all sites can purge.
    pub fn finish_local(&self, site: &SiteInner, program: ProgramId, value: Value) {
        self.settle_local(site, program, Ok(value));
    }

    /// Fail a locally started program: the waiting handle receives the
    /// error and the cluster purges, exactly as on success.
    pub fn fail_local(&self, site: &SiteInner, program: ProgramId, err: SdvmError) {
        self.settle_local(site, program, Err(err));
    }

    fn settle_local(&self, site: &SiteInner, program: ProgramId, outcome: SdvmResult<Value>) {
        let waiter = self.waiters.lock().remove(&program);
        if let Some(tx) = waiter {
            let _ = tx.send(outcome);
        }
        self.quiet_since.lock().remove(&program);
        self.mark_terminated(site, program);
        for p in site.cluster.known_sites() {
            if p != site.my_id() {
                let _ = site.send_payload(
                    p,
                    ManagerId::Program,
                    ManagerId::Program,
                    site.next_seq(),
                    Payload::ProgramTerminated { program },
                );
            }
        }
    }

    /// A frame of `program` was quarantined somewhere in the cluster and
    /// this site is the code home: apply the frontend's failure policy.
    /// `FailFast` terminates the program with a descriptive error;
    /// `SkipFrame` reports through the I/O manager and lets the rest of
    /// the program continue.
    pub fn on_frame_quarantined(
        &self,
        site: &SiteInner,
        program: ProgramId,
        frame: GlobalAddress,
        thread: MicrothreadId,
        cause: String,
    ) {
        match self.policy_of(program) {
            FailurePolicy::FailFast => {
                self.fail_local(
                    site,
                    program,
                    SdvmError::ProgramFailed {
                        program,
                        frame,
                        thread,
                        cause,
                    },
                );
            }
            FailurePolicy::SkipFrame => {
                site.io.output(
                    site,
                    program,
                    format!("microthread {thread} frame {frame} quarantined: {cause}"),
                );
            }
        }
    }

    /// Stuck-program watchdog (called from the maintenance tick). A
    /// locally started program whose result is still undelivered, with
    /// zero runnable or running frames on this site and zero in-flight
    /// requests, is quiet; quiet past `SiteConfig::stuck_timeout` is
    /// declared stuck and the waiter gets [`SdvmError::ProgramStuck`].
    ///
    /// The heuristic is frontend-local and conservative: any local
    /// activity resets the clock, and the generous default timeout keeps
    /// remote-only execution phases from tripping it.
    pub fn watchdog_tick(&self, site: &SiteInner) {
        let waiting: Vec<ProgramId> = self.waiters.lock().keys().copied().collect();
        let now = Instant::now();
        let mut stuck: Vec<ProgramId> = Vec::new();
        {
            let mut quiet = self.quiet_since.lock();
            quiet.retain(|p, _| waiting.contains(p));
            for program in waiting {
                let active =
                    site.scheduling.program_activity(program) > 0 || site.pending.outstanding() > 0;
                if active {
                    quiet.remove(&program);
                } else {
                    let since = *quiet.entry(program).or_insert(now);
                    if now.duration_since(since) >= site.config.stuck_timeout {
                        quiet.remove(&program);
                        stuck.push(program);
                    }
                }
            }
        }
        for program in stuck {
            site.emit(TraceEvent::ProgramStuck {
                site: site.my_id(),
                program,
            });
            self.fail_local(site, program, SdvmError::ProgramStuck { program });
        }
    }

    fn mark_terminated(&self, site: &SiteInner, program: ProgramId) {
        if let Some(info) = self.programs.lock().get_mut(&program) {
            info.terminated = true;
        }
        site.memory.purge_program(program);
        site.code.purge_program(program);
        site.scheduling.purge_program(program);
        site.backup.purge_program(program);
        site.deadletter.purge_program(program);
        site.replication.purge_program(program);
        self.replication.lock().remove(&program);
    }

    /// Latest checkpoint stored here for `program`, if any.
    pub fn stored_checkpoint(&self, program: ProgramId) -> Option<(u64, bytes::Bytes)> {
        self.checkpoints.lock().get(&program).cloned()
    }

    /// Handle an incoming program-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload.clone() {
            Payload::ProgramRegister {
                program,
                code_home,
                name,
                threads,
                replication,
            } => {
                // A draining site refuses new program announcements: it
                // is giving its work away and will be gone before the
                // program runs, so adopting bookkeeping for it would
                // only create state that must immediately relocate.
                if site.is_draining() {
                    return;
                }
                self.register(
                    program,
                    ProgramInfo {
                        code_home,
                        name,
                        threads,
                        terminated: false,
                    },
                );
                self.set_replication(program, replication);
                // A (re-)registration may be a checkpoint restore
                // rewinding the program's objects: cached replicas from
                // the pre-restore timeline must not survive it. Fresh
                // programs trivially have none.
                site.memory.purge_replicas(program);
            }
            Payload::ProgramTerminated { program } => {
                self.mark_terminated(site, program);
            }
            Payload::FrameQuarantined {
                program,
                frame,
                thread,
                cause,
            } => {
                self.on_frame_quarantined(site, program, frame, thread, cause);
            }
            Payload::ProgramPause { program, paused } => {
                if paused {
                    site.scheduling.pause_program(program);
                } else {
                    site.scheduling.resume_program(program);
                }
            }
            Payload::SnapshotCollect { program } => {
                // Quiesce locally (running frames of the program drain —
                // the program is paused, so nothing new starts), then
                // contribute this site's share. Blocking → helper thread.
                site.spawn_task(crate::site::Task::Run(Box::new(move |site| {
                    let quiesced = site
                        .scheduling
                        .wait_quiesced(program, site.config.request_timeout / 2);
                    if !quiesced {
                        // An empty part would masquerade as "this site
                        // holds nothing" and the coordinator would store a
                        // silently incomplete snapshot — fail loudly.
                        site.reply_to(
                            &msg,
                            ManagerId::Program,
                            Payload::Error {
                                message: format!("{program} did not quiesce on this site"),
                            },
                        );
                        return;
                    }
                    // Settle window: let in-flight results from the other
                    // sites' draining executions land before we cut.
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    let (objects, mem_frames) = site.memory.snapshot_program(program);
                    let queued = site.scheduling.snapshot_program(program);
                    let mut frames: Vec<sdvm_wire::WireFrame> =
                        mem_frames.into_iter().map(|f| f.to_wire()).collect();
                    frames.extend(queued.into_iter().map(|f| f.to_wire()));
                    frames.sort_by_key(|f| f.id);
                    site.reply_to(
                        &msg,
                        ManagerId::Program,
                        Payload::SnapshotPart {
                            program,
                            objects,
                            frames,
                        },
                    );
                })));
            }
            Payload::DeadLetterSweep { letters } => {
                // A draining peer hands over its quarantined frames so
                // they stay inspectable/re-drivable after it departs.
                // The typed cause did not survive the wire; it arrives
                // as the stringified error and is re-wrapped.
                for (wf, cause) in letters {
                    site.deadletter.adopt(
                        crate::frame::Microframe::from_wire(wf),
                        SdvmError::Application(cause),
                    );
                }
            }
            Payload::SnapshotCollectIncremental { program } => {
                // Pause-free variant of `SnapshotCollect`: no program
                // pause, no quiesce wait, no settle window. The cut is
                // only per-shard consistent; restore semantics are
                // at-least-once (re-executed frames re-deliver results,
                // which the receiving frame's slot-fill check rejects
                // as duplicates). Blocking (shard locks) → helper
                // thread, like the quiesced path.
                site.spawn_task(crate::site::Task::Run(Box::new(move |site| {
                    let cut = site.memory.snapshot_program_incremental(program);
                    site.metrics.checkpoint_incremental_cuts.inc();
                    site.metrics
                        .checkpoint_incremental_shards_captured
                        .add(cut.shards_captured as u64);
                    site.metrics
                        .checkpoint_incremental_shards_reused
                        .add(cut.shards_reused as u64);
                    site.metrics
                        .checkpoint_incremental_block_us
                        .observe_duration(cut.max_block);
                    let queued = site.scheduling.snapshot_program(program);
                    let mut frames = cut.frames;
                    frames.extend(queued.into_iter().map(|f| f.to_wire()));
                    frames.sort_by_key(|f| f.id);
                    frames.dedup_by_key(|f| f.id);
                    site.reply_to(
                        &msg,
                        ManagerId::Program,
                        Payload::SnapshotPart {
                            program,
                            objects: cut.objects,
                            frames,
                        },
                    );
                })));
            }
            Payload::CheckpointStore {
                program,
                epoch,
                snapshot,
            } => {
                let mut cps = self.checkpoints.lock();
                let newer = cps.get(&program).map(|(e, _)| *e < epoch).unwrap_or(true);
                if newer {
                    cps.insert(program, (epoch, snapshot));
                }
                drop(cps);
                site.reply_to(
                    &msg,
                    ManagerId::Program,
                    Payload::CheckpointAck { program, epoch },
                );
            }
            Payload::CheckpointFetch { program } => {
                let reply = match self.stored_checkpoint(program) {
                    Some((epoch, snapshot)) => Payload::CheckpointData {
                        program,
                        epoch,
                        snapshot,
                    },
                    None => Payload::CheckpointNone { program },
                };
                site.reply_to(&msg, ManagerId::Program, reply);
            }
            other => {
                site.reply_to(
                    &msg,
                    ManagerId::Program,
                    Payload::Error {
                        message: format!("program: unexpected {}", other.name()),
                    },
                );
            }
        }
    }
}
