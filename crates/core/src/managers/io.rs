//! The input/output manager (paper §4): disk files and user interaction.
//!
//! Output and input requests are routed to the program's *frontend*
//! (attached on the starting site by default). Disk files get a unique
//! [`FileHandle`] embedding the site the file resides on; accesses from
//! other sites are rerouted there automatically.

use crate::site::{SiteInner, Task};
use bytes::Bytes;
use parking_lot::Mutex;
use sdvm_types::{FileHandle, ManagerId, ProgramId, SdvmError, SdvmResult, SiteId};
use sdvm_wire::{Payload, SdMessage};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frontend attachment of one program on this site.
struct FrontendState {
    output_tx: crossbeam::channel::Sender<String>,
    input_queue: Arc<Mutex<VecDeque<String>>>,
}

/// The I/O manager of one site.
#[derive(Default)]
pub struct IoManager {
    frontends: Mutex<HashMap<ProgramId, FrontendState>>,
    files: Mutex<HashMap<u32, std::fs::File>>,
    next_file: AtomicU32,
}

impl IoManager {
    /// Fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a frontend for `program` on this site. Returns the output
    /// stream and the queue user input can be pushed into.
    pub fn attach_frontend(
        &self,
        program: ProgramId,
    ) -> (
        crossbeam::channel::Receiver<String>,
        Arc<Mutex<VecDeque<String>>>,
    ) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let q: Arc<Mutex<VecDeque<String>>> = Arc::default();
        self.frontends.lock().insert(
            program,
            FrontendState {
                output_tx: tx,
                input_queue: q.clone(),
            },
        );
        (rx, q)
    }

    /// Program output: to the local frontend if attached, else routed to
    /// the program's frontend site (its code home), else stdout.
    pub fn output(&self, site: &SiteInner, program: ProgramId, text: String) {
        if let Some(f) = self.frontends.lock().get(&program) {
            let _ = f.output_tx.send(text);
            return;
        }
        match site.program.code_home(program) {
            Some(home) if home != site.my_id() => {
                let _ = site.send_payload(
                    home,
                    ManagerId::Io,
                    ManagerId::Io,
                    site.next_seq(),
                    Payload::IoOutput { program, text },
                );
            }
            _ => println!("[{program}] {text}"),
        }
    }

    /// Blocking user-input request (routed to the frontend site).
    pub fn input(&self, site: &SiteInner, program: ProgramId, prompt: &str) -> SdvmResult<String> {
        // Local frontend: poll its input queue.
        if let Some(q) = self
            .frontends
            .lock()
            .get(&program)
            .map(|f| f.input_queue.clone())
        {
            return poll_queue(site, &q);
        }
        let home = site
            .program
            .code_home(program)
            .ok_or(SdvmError::UnknownProgram(program))?;
        let reply = site.request(
            home,
            ManagerId::Io,
            ManagerId::Io,
            Payload::IoInputRequest {
                program,
                prompt: prompt.to_string(),
            },
            site.config.request_timeout,
        )?;
        match reply.payload {
            Payload::IoInputReply { line, .. } => Ok(line),
            other => Err(SdvmError::Io(format!(
                "unexpected input reply {}",
                other.name()
            ))),
        }
    }

    /// Open (or create) a file on *this* site; the returned handle works
    /// cluster-wide.
    pub fn file_open(&self, site: &SiteInner, path: &str, create: bool) -> SdvmResult<FileHandle> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(create)
            .create(create)
            .open(path)
            .map_err(|e| SdvmError::Io(format!("open {path}: {e}")))?;
        let local = self.next_file.fetch_add(1, Ordering::Relaxed);
        self.files.lock().insert(local, file);
        Ok(FileHandle {
            site: site.my_id(),
            local,
        })
    }

    /// Read from a (possibly remote) file.
    pub fn file_read(
        &self,
        site: &SiteInner,
        handle: FileHandle,
        offset: u64,
        len: u32,
    ) -> SdvmResult<Bytes> {
        if handle.site == site.my_id() {
            return self.local_read(handle, offset, len);
        }
        let reply = site.request(
            handle.site,
            ManagerId::Io,
            ManagerId::Io,
            Payload::FileRead {
                handle,
                offset,
                len,
            },
            site.config.request_timeout,
        )?;
        match reply.payload {
            Payload::FileData { data, .. } => Ok(data),
            Payload::FileError { message } => Err(SdvmError::Io(message)),
            other => Err(SdvmError::Io(format!(
                "unexpected file reply {}",
                other.name()
            ))),
        }
    }

    /// Write to a (possibly remote) file.
    pub fn file_write(
        &self,
        site: &SiteInner,
        handle: FileHandle,
        offset: u64,
        data: Bytes,
    ) -> SdvmResult<()> {
        if handle.site == site.my_id() {
            return self.local_write(handle, offset, &data);
        }
        let reply = site.request(
            handle.site,
            ManagerId::Io,
            ManagerId::Io,
            Payload::FileWrite {
                handle,
                offset,
                data,
            },
            site.config.request_timeout,
        )?;
        match reply.payload {
            Payload::FileAck { .. } => Ok(()),
            Payload::FileError { message } => Err(SdvmError::Io(message)),
            other => Err(SdvmError::Io(format!(
                "unexpected file reply {}",
                other.name()
            ))),
        }
    }

    /// Close a (possibly remote) file.
    pub fn file_close(&self, site: &SiteInner, handle: FileHandle) -> SdvmResult<()> {
        if handle.site == site.my_id() {
            self.files.lock().remove(&handle.local);
            return Ok(());
        }
        let _ = site.send_payload(
            handle.site,
            ManagerId::Io,
            ManagerId::Io,
            site.next_seq(),
            Payload::FileClose { handle },
        );
        Ok(())
    }

    fn local_read(&self, handle: FileHandle, offset: u64, len: u32) -> SdvmResult<Bytes> {
        let mut files = self.files.lock();
        let f = files
            .get_mut(&handle.local)
            .ok_or_else(|| SdvmError::Io(format!("bad file handle {handle}")))?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| SdvmError::Io(e.to_string()))?;
        let mut buf = vec![0u8; len as usize];
        let mut read = 0;
        while read < buf.len() {
            match f.read(&mut buf[read..]) {
                Ok(0) => break,
                Ok(n) => read += n,
                Err(e) => return Err(SdvmError::Io(e.to_string())),
            }
        }
        buf.truncate(read);
        Ok(Bytes::from(buf))
    }

    fn local_write(&self, handle: FileHandle, offset: u64, data: &[u8]) -> SdvmResult<()> {
        let mut files = self.files.lock();
        let f = files
            .get_mut(&handle.local)
            .ok_or_else(|| SdvmError::Io(format!("bad file handle {handle}")))?;
        f.seek(SeekFrom::Start(offset))
            .map_err(|e| SdvmError::Io(e.to_string()))?;
        f.write_all(data)
            .map_err(|e| SdvmError::Io(e.to_string()))?;
        f.flush().map_err(|e| SdvmError::Io(e.to_string()))?;
        Ok(())
    }

    /// Handle an incoming I/O-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload.clone() {
            Payload::IoOutput { program, text } => {
                // We are (or host) the frontend site.
                if let Some(f) = self.frontends.lock().get(&program) {
                    let _ = f.output_tx.send(text);
                } else {
                    println!("[{program}] {text}");
                }
            }
            Payload::IoInputRequest { program, .. } => {
                // Poll the frontend's queue off the router thread and
                // reply when a line arrives.
                let queue = self
                    .frontends
                    .lock()
                    .get(&program)
                    .map(|f| f.input_queue.clone());
                match queue {
                    Some(q) => {
                        site.spawn_task(Task::Run(Box::new(move |site| {
                            let line = poll_queue(site, &q).unwrap_or_default();
                            site.reply_to(
                                &msg,
                                ManagerId::Io,
                                Payload::IoInputReply { program, line },
                            );
                        })));
                    }
                    None => {
                        site.reply_to(
                            &msg,
                            ManagerId::Io,
                            Payload::IoInputReply {
                                program,
                                line: String::new(),
                            },
                        );
                    }
                }
            }
            Payload::FileOpen { path, create } => {
                let reply = match self.file_open(site, &path, create) {
                    Ok(handle) => Payload::FileOpened { handle },
                    Err(e) => Payload::FileError {
                        message: e.to_string(),
                    },
                };
                site.reply_to(&msg, ManagerId::Io, reply);
            }
            Payload::FileRead {
                handle,
                offset,
                len,
            } => {
                let reply = match self.local_read(handle, offset, len) {
                    Ok(data) => Payload::FileData { handle, data },
                    Err(e) => Payload::FileError {
                        message: e.to_string(),
                    },
                };
                site.reply_to(&msg, ManagerId::Io, reply);
            }
            Payload::FileWrite {
                handle,
                offset,
                data,
            } => {
                let reply = match self.local_write(handle, offset, &data) {
                    Ok(()) => Payload::FileAck { handle },
                    Err(e) => Payload::FileError {
                        message: e.to_string(),
                    },
                };
                site.reply_to(&msg, ManagerId::Io, reply);
            }
            Payload::FileClose { handle } => {
                self.files.lock().remove(&handle.local);
            }
            other => {
                site.reply_to(
                    &msg,
                    ManagerId::Io,
                    Payload::Error {
                        message: format!("io: unexpected {}", other.name()),
                    },
                );
            }
        }
    }
}

/// Poll an input queue until a line arrives or the request times out.
fn poll_queue(site: &SiteInner, q: &Mutex<VecDeque<String>>) -> SdvmResult<String> {
    let deadline = Instant::now() + site.config.request_timeout;
    loop {
        if let Some(line) = q.lock().pop_front() {
            return Ok(line);
        }
        if Instant::now() > deadline || !site.is_running() {
            return Err(SdvmError::Timeout("no user input".into()));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Mark unused-type warning silence for SiteId import used in docs.
const _: Option<SiteId> = None;
