//! The security manager (paper §4): the encryption layer between the
//! message manager and the network manager.
//!
//! Outgoing serialized SDMessages are sealed per peer; incoming traffic
//! is verified and decrypted. Keys derive from the cluster's *start
//! password*. On trusted ("insular") clusters the manager is disabled and
//! traffic flows in plaintext — the performance difference is experiment
//! E5.
//!
//! Wire envelope (outside the SDMessage encoding):
//!
//! ```text
//! [0x00 | plaintext SDMessage]                      — security disabled
//! [0x01 | src_site u32 LE | sealed SDMessage]       — peer channel
//! [0x02 | salt 16 bytes   | sealed SDMessage]       — join channel
//! [0x03 | src_site u32 LE | sealed batch]           — batch-sealed (wire v5)
//! ```
//!
//! The *join channel* covers sign-on traffic, exchanged before the peer
//! relationship (and possibly the local site id) exists: a fresh key is
//! derived per message from the master key and a random salt. Join
//! messages are authenticated by password but (unlike peer channels)
//! carry no replay protection; they are idempotent membership requests.
//!
//! The *batch-sealed* record amortizes sealing across a coalesced writer
//! batch: the TCP transport queues plaintext records and hands whole
//! runs for one destination back to [`WriterSealer`] at drain time, so a
//! burst of N messages pays one nonce, one keystream setup and one MAC
//! instead of N. The sealed plaintext is `count varint | (len varint |
//! SDMessage bytes)*`; the batch shares the peer channel's key, counter
//! space and replay window (one counter per batch), so RFC 2401-style
//! anti-replay semantics carry over unchanged.

use crate::config::SiteConfig;
use crate::site::SiteInner;
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use rand::RngExt;
use sdvm_crypto::channel::SecureChannel;
use sdvm_crypto::KeyStore;
use sdvm_crypto::{kdf, NONCE_PREFIX_LEN};
use sdvm_types::{SdvmError, SdvmResult, SiteId};
use sdvm_wire::{begin_frame, finish_frame, SdMessage, WireReader, WireWriter};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

const TAG_PLAIN: u8 = 0;
const TAG_PEER: u8 = 1;
const TAG_JOIN: u8 = 2;
/// Batch-sealed record (wire v5): a whole coalesced writer batch under
/// one nonce + MAC. Same header shape as [`TAG_PEER`].
const TAG_BATCH: u8 = 3;
const JOIN_SALT_LEN: usize = 16;
/// Envelope header length for peer/batch records: tag + src u32 LE.
const PEER_HDR_LEN: usize = 5;

/// The security manager of one site.
pub struct SecurityManager {
    inner: Option<Mutex<Keys>>,
    /// Capacity hint for the next outgoing frame, learned from the last
    /// one: right-sizing the single send buffer up front avoids growth
    /// reallocations mid-encode (message sizes are strongly clustered).
    frame_cap: AtomicUsize,
}

struct Keys {
    master: [u8; 32],
    store: KeyStore,
}

impl SecurityManager {
    /// Build from the site config; `None` password disables encryption.
    pub fn new(config: &SiteConfig) -> Self {
        let inner = config.password.as_ref().map(|pw| {
            let master = kdf::master_key(pw);
            Mutex::new(Keys {
                master,
                store: KeyStore::from_master(0, master),
            })
        });
        SecurityManager {
            inner,
            frame_cap: AtomicUsize::new(128),
        }
    }

    /// Whether encryption is active.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Re-key after the site's logical id was assigned.
    pub fn rekey(&self, id: SiteId) {
        if let Some(m) = &self.inner {
            let mut k = m.lock();
            let master = k.master;
            k.store = KeyStore::from_master(id.0, master);
        }
    }

    /// Drop channel state for a departed peer.
    pub fn forget(&self, peer: SiteId) {
        if let Some(m) = &self.inner {
            m.lock().store.forget(peer.0);
        }
    }

    /// Serialize `msg` alone — no envelope, no frame prefix: the
    /// plaintext record a drain-time sealer wraps later. This is all the
    /// send path pays up front when the transport seals at drain time.
    pub fn encode_plain(&self, msg: &SdMessage) -> Bytes {
        let cap = self.frame_cap.load(Ordering::Relaxed);
        let mut w = WireWriter::from_buf(BytesMut::with_capacity(cap));
        msg.encode_into(&mut w);
        let buf = w.into_buf();
        self.frame_cap.store(buf.len() + 32, Ordering::Relaxed);
        buf.freeze()
    }

    /// Seal one plaintext record into a complete per-frame wire frame
    /// (the drain-time equivalent of [`SecurityManager::seal_frame`] for
    /// an already-serialized body). Runs on the transport's writer
    /// thread via [`WriterSealer`].
    pub fn seal_plain_record(&self, site: &SiteInner, dst: u32, body: &[u8]) -> SdvmResult<Bytes> {
        let t0 = std::time::Instant::now();
        let Some(m) = &self.inner else {
            let mut buf = begin_frame(body.len() + 8);
            buf.put_u8(TAG_PLAIN);
            buf.extend_from_slice(body);
            return finish_frame(buf);
        };
        let mut buf = begin_frame(body.len() + 64);
        buf.put_u8(TAG_PEER);
        buf.extend_from_slice(&site.my_id().0.to_le_bytes());
        let seal_start = buf.len();
        buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
        buf.extend_from_slice(body);
        m.lock().store.seal_for_in_place(dst, &mut buf, seal_start);
        let frame = finish_frame(buf)?;
        site.metrics.seal_us.observe_duration(t0.elapsed());
        Ok(frame)
    }

    /// Seal a coalesced run of plaintext records for one destination as
    /// a single batch record: one nonce, one keystream, one MAC for the
    /// whole run. Runs on the transport's writer thread via
    /// [`WriterSealer`]; the writer bounds runs (≤256 records, ~1 MiB)
    /// through its drain caps.
    pub fn seal_batch_record(
        &self,
        site: &SiteInner,
        dst: u32,
        bodies: &[Bytes],
    ) -> SdvmResult<Bytes> {
        let Some(m) = &self.inner else {
            return Err(SdvmError::Crypto(
                "batch sealing requires an active security manager".into(),
            ));
        };
        let my = site.my_id();
        if !my.is_valid() {
            return Err(SdvmError::Crypto("batch sealing before sign-on".into()));
        }
        let t0 = std::time::Instant::now();
        let total: usize = bodies.iter().map(|b| b.len() + 5).sum();
        let mut buf = begin_frame(total + 64);
        buf.put_u8(TAG_BATCH);
        buf.extend_from_slice(&my.0.to_le_bytes());
        let seal_start = buf.len();
        buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
        let mut w = WireWriter::from_buf(buf);
        w.put_varint(bodies.len() as u64);
        for body in bodies {
            w.put_bytes(body);
        }
        let mut buf = w.into_buf();
        m.lock().store.seal_for_in_place(dst, &mut buf, seal_start);
        let frame = finish_frame(buf)?;
        site.metrics.seal_us.observe_duration(t0.elapsed());
        Ok(frame)
    }

    /// Encode, seal and frame an outgoing message for `dst` in one
    /// buffer: `[len u32 BE | envelope tag (+src/salt) | nonce | body |
    /// tag]`, with encryption applied in place. This is the transport's
    /// zero-copy send path; [`SecurityManager::seal`] remains for
    /// callers holding pre-serialized bytes.
    pub fn seal_frame(&self, site: &SiteInner, dst: SiteId, msg: &SdMessage) -> SdvmResult<Bytes> {
        let mut buf = begin_frame(self.frame_cap.load(Ordering::Relaxed));
        let Some(m) = &self.inner else {
            buf.put_u8(TAG_PLAIN);
            let mut w = WireWriter::from_buf(buf);
            msg.encode_into(&mut w);
            return self.finish_learning(w.into_buf());
        };
        let mut k = m.lock();
        if !dst.is_valid() || !site.my_id().is_valid() {
            // Join channel: fresh salted key per message.
            let mut salt = [0u8; JOIN_SALT_LEN];
            rand::rng().fill(&mut salt[..]);
            buf.put_u8(TAG_JOIN);
            buf.extend_from_slice(&salt);
            let seal_start = buf.len();
            buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
            let mut w = WireWriter::from_buf(buf);
            msg.encode_into(&mut w);
            let mut buf = w.into_buf();
            let key = join_key(&k.master, &salt);
            SecureChannel::new(&key).seal_in_place(&mut buf, seal_start);
            return self.finish_learning(buf);
        }
        buf.put_u8(TAG_PEER);
        buf.extend_from_slice(&site.my_id().0.to_le_bytes());
        let seal_start = buf.len();
        buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
        let mut w = WireWriter::from_buf(buf);
        msg.encode_into(&mut w);
        let mut buf = w.into_buf();
        k.store.seal_for_in_place(dst.0, &mut buf, seal_start);
        self.finish_learning(buf)
    }

    /// Finish a frame and remember its size as the next capacity hint.
    fn finish_learning(&self, buf: bytes::BytesMut) -> SdvmResult<Bytes> {
        let frame = finish_frame(buf)?;
        self.frame_cap.store(frame.len() + 32, Ordering::Relaxed);
        Ok(frame)
    }

    /// Open an incoming envelope *in place*: verify + decrypt within the
    /// transport's own receive buffer and return a view over the
    /// plaintext record(s). Taking `raw` by value lets the buffer be
    /// reclaimed without a copy when the transport handed over its only
    /// reference (the common case — the TCP reader allocates per frame).
    pub fn open_traffic(&self, raw: Bytes) -> SdvmResult<OpenedTraffic> {
        let mut buf = match raw.try_into_mut() {
            Ok(b) => b,
            Err(raw) => BytesMut::from(&raw[..]),
        };
        if buf.is_empty() {
            return Err(SdvmError::Crypto("empty envelope".into()));
        }
        let tag = buf[0];
        match (tag, &self.inner) {
            (TAG_PLAIN, None) => Ok(OpenedTraffic {
                body: 1..buf.len(),
                buf,
                batch: false,
            }),
            (TAG_PLAIN, Some(_)) => Err(SdvmError::Crypto(
                "plaintext rejected: security manager active".into(),
            )),
            (_, None) => Err(SdvmError::Crypto(
                "sealed traffic but security disabled".into(),
            )),
            (TAG_PEER | TAG_BATCH, Some(m)) => {
                if buf.len() < PEER_HDR_LEN {
                    return Err(SdvmError::Crypto("short peer envelope".into()));
                }
                let mut src_bytes = [0u8; PEER_HDR_LEN - 1];
                src_bytes.copy_from_slice(&buf[1..PEER_HDR_LEN]);
                let src = u32::from_le_bytes(src_bytes);
                let body = m
                    .lock()
                    .store
                    .open_from_in_place(src, &mut buf, PEER_HDR_LEN)
                    .map_err(|e| SdvmError::Crypto(e.to_string()))?;
                Ok(OpenedTraffic {
                    buf,
                    body,
                    batch: tag == TAG_BATCH,
                })
            }
            (TAG_JOIN, Some(m)) => {
                if buf.len() < 1 + JOIN_SALT_LEN {
                    return Err(SdvmError::Crypto("short join envelope".into()));
                }
                let key = join_key(&m.lock().master, &buf[1..1 + JOIN_SALT_LEN]);
                let body = SecureChannel::new(&key)
                    .open_in_place(&mut buf, 1 + JOIN_SALT_LEN)
                    .map_err(|e| SdvmError::Crypto(e.to_string()))?;
                Ok(OpenedTraffic {
                    buf,
                    body,
                    batch: false,
                })
            }
            _ => Err(SdvmError::Crypto(format!("unknown envelope tag {tag}"))),
        }
    }
}

/// A verified, decrypted incoming envelope: plaintext decrypted in place
/// inside the transport's receive buffer, viewed through
/// [`OpenedTraffic::records`] without further copying.
pub struct OpenedTraffic {
    buf: BytesMut,
    body: Range<usize>,
    batch: bool,
}

impl OpenedTraffic {
    /// Whether this envelope was a batch-sealed record.
    pub fn is_batch(&self) -> bool {
        self.batch
    }

    /// Iterate the serialized SDMessage record(s) inside: exactly one
    /// for per-frame envelopes, the declared count for batch records
    /// (parsed lazily; a malformed interior surfaces as an `Err` item
    /// and ends iteration).
    pub fn records(&self) -> Records<'_> {
        let body = &self.buf[self.body.clone()];
        if self.batch {
            Records {
                single: None,
                batch: Some((WireReader::new(body), None)),
            }
        } else {
            Records {
                single: Some(body),
                batch: None,
            }
        }
    }
}

/// Iterator over the records of an [`OpenedTraffic`].
pub struct Records<'a> {
    single: Option<&'a [u8]>,
    /// Batch cursor: the reader plus how many records remain (`None`
    /// until the leading count varint has been parsed).
    batch: Option<(WireReader<'a>, Option<usize>)>,
}

impl<'a> Iterator for Records<'a> {
    type Item = SdvmResult<&'a [u8]>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(rec) = self.single.take() {
            return Some(Ok(rec));
        }
        // Take the cursor out; it is only put back after a successful
        // record, so any `Err` item terminates the iteration.
        let (mut reader, remaining) = self.batch.take()?;
        let n = match remaining {
            Some(n) => n,
            None => match reader.get_len() {
                Ok(n) => n,
                Err(e) => return Some(Err(e)),
            },
        };
        if n == 0 {
            if reader.remaining() != 0 {
                return Some(Err(SdvmError::Decode(
                    "trailing bytes after batch records".into(),
                )));
            }
            return None;
        }
        match reader.get_bytes() {
            Ok(rec) => {
                self.batch = Some((reader, Some(n - 1)));
                Some(Ok(rec))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

/// Bridges the transport's writer threads back to the security manager:
/// the [`sdvm_net::DrainSealer`] installed on transports that seal at
/// drain time. Holds the site weakly — the transport outlives site
/// shutdown in some tests, and a strong reference would cycle
/// (`SiteInner` owns the transport).
pub struct WriterSealer {
    site: Weak<SiteInner>,
}

impl WriterSealer {
    /// Hook the given site's security manager up for drain-time sealing.
    pub fn new(site: &Arc<SiteInner>) -> Arc<Self> {
        Arc::new(WriterSealer {
            site: Arc::downgrade(site),
        })
    }

    fn site(&self) -> SdvmResult<Arc<SiteInner>> {
        self.site
            .upgrade()
            .ok_or_else(|| SdvmError::Transport("site shut down".into()))
    }
}

impl sdvm_net::DrainSealer for WriterSealer {
    fn seal_one(&self, dst: u32, body: &[u8]) -> SdvmResult<Bytes> {
        let site = self.site()?;
        site.security.seal_plain_record(&site, dst, body)
    }

    fn seal_batch(&self, dst: u32, bodies: &[Bytes]) -> SdvmResult<Bytes> {
        let site = self.site()?;
        site.security.seal_batch_record(&site, dst, bodies)
    }
}

fn join_key(master: &[u8; 32], salt: &[u8]) -> [u8; 32] {
    let mut info = Vec::with_capacity(5 + salt.len());
    info.extend_from_slice(b"join:");
    info.extend_from_slice(salt);
    let mut key = [0u8; 32];
    kdf::expand(master, &info, &mut key);
    key
}
