//! The security manager (paper §4): the encryption layer between the
//! message manager and the network manager.
//!
//! Outgoing serialized SDMessages are sealed per peer; incoming traffic
//! is verified and decrypted. Keys derive from the cluster's *start
//! password*. On trusted ("insular") clusters the manager is disabled and
//! traffic flows in plaintext — the performance difference is experiment
//! E5.
//!
//! Wire envelope (outside the SDMessage encoding):
//!
//! ```text
//! [0x00 | plaintext SDMessage]                      — security disabled
//! [0x01 | src_site u32 LE | sealed SDMessage]       — peer channel
//! [0x02 | salt 16 bytes   | sealed SDMessage]       — join channel
//! ```
//!
//! The *join channel* covers sign-on traffic, exchanged before the peer
//! relationship (and possibly the local site id) exists: a fresh key is
//! derived per message from the master key and a random salt. Join
//! messages are authenticated by password but (unlike peer channels)
//! carry no replay protection; they are idempotent membership requests.

use crate::config::SiteConfig;
use crate::site::SiteInner;
use bytes::Bytes;
use parking_lot::Mutex;
use rand::RngExt;
use sdvm_crypto::channel::SecureChannel;
use sdvm_crypto::KeyStore;
use sdvm_crypto::{kdf, NONCE_PREFIX_LEN};
use sdvm_types::{SdvmError, SdvmResult, SiteId};
use sdvm_wire::{begin_frame, finish_frame, SdMessage, WireWriter};
use std::sync::atomic::{AtomicUsize, Ordering};

const TAG_PLAIN: u8 = 0;
const TAG_PEER: u8 = 1;
const TAG_JOIN: u8 = 2;
const JOIN_SALT_LEN: usize = 16;

/// The security manager of one site.
pub struct SecurityManager {
    inner: Option<Mutex<Keys>>,
    /// Capacity hint for the next outgoing frame, learned from the last
    /// one: right-sizing the single send buffer up front avoids growth
    /// reallocations mid-encode (message sizes are strongly clustered).
    frame_cap: AtomicUsize,
}

struct Keys {
    master: [u8; 32],
    store: KeyStore,
}

impl SecurityManager {
    /// Build from the site config; `None` password disables encryption.
    pub fn new(config: &SiteConfig) -> Self {
        let inner = config.password.as_ref().map(|pw| {
            let master = kdf::master_key(pw);
            Mutex::new(Keys {
                master,
                store: KeyStore::from_master(0, master),
            })
        });
        SecurityManager {
            inner,
            frame_cap: AtomicUsize::new(128),
        }
    }

    /// Whether encryption is active.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Re-key after the site's logical id was assigned.
    pub fn rekey(&self, id: SiteId) {
        if let Some(m) = &self.inner {
            let mut k = m.lock();
            let master = k.master;
            k.store = KeyStore::from_master(id.0, master);
        }
    }

    /// Drop channel state for a departed peer.
    pub fn forget(&self, peer: SiteId) {
        if let Some(m) = &self.inner {
            m.lock().store.forget(peer.0);
        }
    }

    /// Seal an outgoing serialized SDMessage for `dst`.
    pub fn seal(&self, site: &SiteInner, dst: SiteId, plain: Vec<u8>) -> Vec<u8> {
        let Some(m) = &self.inner else {
            let mut out = Vec::with_capacity(plain.len() + 1);
            out.push(TAG_PLAIN);
            out.extend_from_slice(&plain);
            return out;
        };
        let mut k = m.lock();
        if !dst.is_valid() || !site.my_id().is_valid() {
            // Join channel: fresh salted key per message.
            let mut salt = [0u8; JOIN_SALT_LEN];
            rand::rng().fill(&mut salt[..]);
            let key = join_key(&k.master, &salt);
            let mut ch = SecureChannel::new(&key);
            let sealed = ch.seal(&plain);
            let mut out = Vec::with_capacity(1 + JOIN_SALT_LEN + sealed.len());
            out.push(TAG_JOIN);
            out.extend_from_slice(&salt);
            out.extend_from_slice(&sealed);
            return out;
        }
        let sealed = k.store.seal_for(dst.0, &plain);
        let mut out = Vec::with_capacity(5 + sealed.len());
        out.push(TAG_PEER);
        out.extend_from_slice(&site.my_id().0.to_le_bytes());
        out.extend_from_slice(&sealed);
        out
    }

    /// Encode, seal and frame an outgoing message for `dst` in one
    /// buffer: `[len u32 BE | envelope tag (+src/salt) | nonce | body |
    /// tag]`, with encryption applied in place. This is the transport's
    /// zero-copy send path; [`SecurityManager::seal`] remains for
    /// callers holding pre-serialized bytes.
    pub fn seal_frame(&self, site: &SiteInner, dst: SiteId, msg: &SdMessage) -> SdvmResult<Bytes> {
        let mut buf = begin_frame(self.frame_cap.load(Ordering::Relaxed));
        let Some(m) = &self.inner else {
            buf.put_u8(TAG_PLAIN);
            let mut w = WireWriter::from_buf(buf);
            msg.encode_into(&mut w);
            return self.finish_learning(w.into_buf());
        };
        let mut k = m.lock();
        if !dst.is_valid() || !site.my_id().is_valid() {
            // Join channel: fresh salted key per message.
            let mut salt = [0u8; JOIN_SALT_LEN];
            rand::rng().fill(&mut salt[..]);
            buf.put_u8(TAG_JOIN);
            buf.extend_from_slice(&salt);
            let seal_start = buf.len();
            buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
            let mut w = WireWriter::from_buf(buf);
            msg.encode_into(&mut w);
            let mut buf = w.into_buf();
            let key = join_key(&k.master, &salt);
            SecureChannel::new(&key).seal_in_place(&mut buf, seal_start);
            return self.finish_learning(buf);
        }
        buf.put_u8(TAG_PEER);
        buf.extend_from_slice(&site.my_id().0.to_le_bytes());
        let seal_start = buf.len();
        buf.resize(seal_start + NONCE_PREFIX_LEN, 0);
        let mut w = WireWriter::from_buf(buf);
        msg.encode_into(&mut w);
        let mut buf = w.into_buf();
        k.store.seal_for_in_place(dst.0, &mut buf, seal_start);
        self.finish_learning(buf)
    }

    /// Finish a frame and remember its size as the next capacity hint.
    fn finish_learning(&self, buf: bytes::BytesMut) -> SdvmResult<Bytes> {
        let frame = finish_frame(buf)?;
        self.frame_cap.store(frame.len() + 32, Ordering::Relaxed);
        Ok(frame)
    }

    /// Open an incoming envelope.
    pub fn open(&self, _site: &SiteInner, raw: &[u8]) -> SdvmResult<Vec<u8>> {
        let (&tag, body) = raw
            .split_first()
            .ok_or_else(|| SdvmError::Crypto("empty envelope".into()))?;
        match (tag, &self.inner) {
            (TAG_PLAIN, None) => Ok(body.to_vec()),
            (TAG_PLAIN, Some(_)) => Err(SdvmError::Crypto(
                "plaintext rejected: security manager active".into(),
            )),
            (_, None) => Err(SdvmError::Crypto(
                "sealed traffic but security disabled".into(),
            )),
            (TAG_PEER, Some(m)) => {
                if body.len() < 4 {
                    return Err(SdvmError::Crypto("short peer envelope".into()));
                }
                let Ok(src_bytes) = <[u8; 4]>::try_from(&body[..4]) else {
                    return Err(SdvmError::Crypto("short peer envelope".into()));
                };
                let src = u32::from_le_bytes(src_bytes);
                m.lock()
                    .store
                    .open_from(src, &body[4..])
                    .map_err(|e| SdvmError::Crypto(e.to_string()))
            }
            (TAG_JOIN, Some(m)) => {
                if body.len() < JOIN_SALT_LEN {
                    return Err(SdvmError::Crypto("short join envelope".into()));
                }
                let (salt, sealed) = body.split_at(JOIN_SALT_LEN);
                let key = join_key(&m.lock().master, salt);
                let mut ch = SecureChannel::new(&key);
                ch.open(sealed)
                    .map_err(|e| SdvmError::Crypto(e.to_string()))
            }
            _ => Err(SdvmError::Crypto(format!("unknown envelope tag {tag}"))),
        }
    }
}

fn join_key(master: &[u8; 32], salt: &[u8]) -> [u8; 32] {
    let mut info = Vec::with_capacity(5 + salt.len());
    info.extend_from_slice(b"join:");
    info.extend_from_slice(salt);
    let mut key = [0u8; 32];
    kdf::expand(master, &info, &mut key);
    key
}
