//! The SDVM's managers (paper §4, Fig. 3).
//!
//! Execution layer: [`processing`], [`scheduling`], [`code`], [`memory`]
//! (attraction memory), [`io`]. Maintenance layer: [`cluster`],
//! [`program`], [`site_mgr`], [`security`]. Communication layer: the
//! message manager lives on [`crate::site::SiteInner`] (send/dispatch),
//! the network manager is the `sdvm-net` transport. [`backup`] implements
//! the crash-management store (\[4\] in the paper).

pub mod backup;
pub mod cluster;
pub mod code;
pub mod deadletter;
pub mod io;
pub mod memory;
pub mod processing;
pub mod program;
pub mod replication;
pub mod scheduling;
pub mod security;
pub mod site_mgr;

use crate::site::{SiteInner, Task};

/// Execute one helper-thread task (see [`Task`]).
pub(crate) fn run_task(site: &SiteInner, task: Task) {
    match task {
        Task::ForwardApply {
            target,
            slot,
            value,
            ttl,
        } => {
            memory::forward_apply(site, target, slot, value, ttl);
        }
        Task::SignOn { msg, reply_addr } => {
            cluster::handle_signon_blocking(site, msg, reply_addr);
        }
        Task::Recover { dead } => {
            backup::recover(site, dead);
        }
        Task::Run(f) => f(site),
    }
}
