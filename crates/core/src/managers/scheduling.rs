//! The scheduling manager (paper §3.3, §4, Fig. 5).
//!
//! Maintains the queue of *executable* microframes (all parameters
//! present) and the queue of *ready* microframes (code pointer obtained
//! from the code manager). Local scheduling defaults to FIFO (avoids
//! starvation); answers to help requests default to LIFO (latency
//! hiding); both are configurable, and the `priority` policy consumes the
//! CDAG scheduling hints. When both queues are empty the site is idle and
//! sends *help requests* to sites chosen by the cluster manager — this is
//! the SDVM's fully decentralized scheduling.

use crate::frame::{Microframe, ReplicaRun};
use crate::managers::backup;
use crate::site::SiteInner;
use crate::telemetry::trace_id_of;
use crate::thread::ThreadFn;
use crate::trace::TraceEvent;
use parking_lot::{Condvar, Mutex};
use sdvm_types::{ManagerId, Priority, QueuePolicy, SdvmResult};
use sdvm_wire::{Payload, SdMessage, TraceContext};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

#[derive(Default)]
struct SchedState {
    executable: VecDeque<Microframe>,
    ready: VecDeque<(Microframe, ThreadFn)>,
    /// Programs currently paused (quiesced for checkpointing).
    paused: std::collections::HashSet<sdvm_types::ProgramId>,
    /// Frames of paused programs, parked until resume.
    parked: Vec<Microframe>,
    /// Frames re-enqueued with a retry backoff, promoted back into
    /// `executable` once their due time passes (polled by the workers'
    /// existing 20 ms idle wakeup — no extra timer thread).
    delayed: Vec<(Instant, Microframe)>,
    /// Frames of each program currently executing on this site.
    running: std::collections::HashMap<sdvm_types::ProgramId, u32>,
    /// Pre-execution images of the frames currently running in worker
    /// slots. A fired frame is already out of the memory manager and out
    /// of every queue while a worker executes it, so a non-quiescing
    /// (incremental) snapshot would silently lose it — and with it the
    /// whole subtree it was about to spawn. Registered by the worker's
    /// slot guard on entry, cleared on exit (all paths, RAII). Replica
    /// runs are not registered: they report to a coordinator that a
    /// restored cluster would not have.
    in_flight: std::collections::HashMap<sdvm_types::GlobalAddress, Microframe>,
}

impl SchedState {
    /// Move every delayed frame whose backoff has elapsed back into the
    /// executable queue. Returns how many were promoted.
    fn promote_due(&mut self, now: Instant) -> usize {
        if self.delayed.is_empty() {
            return 0;
        }
        let mut promoted = 0;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, frame) = self.delayed.swap_remove(i);
                if self.paused.contains(&frame.program()) {
                    self.parked.push(frame);
                } else {
                    self.executable.push_back(frame);
                }
                promoted += 1;
            } else {
                i += 1;
            }
        }
        promoted
    }
}

/// The scheduling manager of one site.
pub struct SchedulingManager {
    state: Mutex<SchedState>,
    work_cond: Condvar,
    local_policy: QueuePolicy,
    help_policy: QueuePolicy,
    busy: AtomicU32,
    /// Rising epoch for load gossip.
    epoch: std::sync::atomic::AtomicU64,
}

fn pop_frame(q: &mut VecDeque<Microframe>, policy: QueuePolicy) -> Option<Microframe> {
    match policy {
        QueuePolicy::Fifo => q.pop_front(),
        QueuePolicy::Lifo => q.pop_back(),
        QueuePolicy::Priority => {
            let best = q
                .iter()
                .enumerate()
                .max_by_key(|(i, f)| (f.hint.priority, std::cmp::Reverse(*i)))?
                .0;
            q.remove(best)
        }
    }
}

fn pop_ready(
    q: &mut VecDeque<(Microframe, ThreadFn)>,
    policy: QueuePolicy,
) -> Option<(Microframe, ThreadFn)> {
    match policy {
        QueuePolicy::Fifo => q.pop_front(),
        QueuePolicy::Lifo => q.pop_back(),
        QueuePolicy::Priority => {
            let best = q
                .iter()
                .enumerate()
                .max_by_key(|(i, (f, _))| (f.hint.priority, std::cmp::Reverse(*i)))?
                .0;
            q.remove(best)
        }
    }
}

/// Pop a frame to give away on a help request: prefer the executable
/// queue, fall back to ready frames (dropping the local code pointer).
/// Sticky frames (e.g. the hidden result frame) never leave their site.
///
/// Candidates are ranked by `score` (locality of their argument objects
/// relative to the requester — see `MemoryManager::help_score`); the
/// queue policy only breaks ties, so a frame whose inputs live at the
/// requester beats the LIFO-top frame whose inputs live here. The
/// winning score is returned for tracing.
fn pop_for_help(
    st: &mut SchedState,
    policy: QueuePolicy,
    score: impl Fn(&Microframe) -> i32,
) -> Option<(Microframe, i32)> {
    // Tiebreak key mirroring the plain pop order: FIFO prefers the
    // oldest (smallest index), LIFO the newest, Priority the highest
    // priority then the oldest.
    fn tiebreak(policy: QueuePolicy, idx: usize, f: &Microframe) -> (Priority, i64) {
        match policy {
            QueuePolicy::Fifo => (Priority(0), -(idx as i64)),
            QueuePolicy::Lifo => (Priority(0), idx as i64),
            QueuePolicy::Priority => (f.hint.priority, -(idx as i64)),
        }
    }
    let best_exec = st
        .executable
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.hint.sticky)
        .max_by_key(|(i, f)| (score(f), tiebreak(policy, *i, f)))
        .map(|(i, f)| (i, score(f)));
    if let Some((idx, s)) = best_exec {
        return st.executable.remove(idx).map(|f| (f, s));
    }
    let best_ready = st
        .ready
        .iter()
        .enumerate()
        .filter(|(_, (f, _))| !f.hint.sticky)
        .max_by_key(|(i, (f, _))| (score(f), tiebreak(policy, *i, f)))
        .map(|(i, (f, _))| (i, score(f)));
    if let Some((idx, s)) = best_ready {
        return st.ready.remove(idx).map(|(f, _)| (f, s));
    }
    None
}

impl SchedulingManager {
    /// Build from the site config.
    pub fn new(config: &crate::config::SiteConfig) -> Self {
        SchedulingManager {
            state: Mutex::new(SchedState::default()),
            work_cond: Condvar::new(),
            local_policy: config.local_policy,
            help_policy: config.help_policy,
            busy: AtomicU32::new(0),
            epoch: std::sync::atomic::AtomicU64::new(1),
        }
    }

    /// Queue a frame that just became executable.
    pub fn enqueue_executable(&self, _site: &SiteInner, frame: Microframe) {
        let mut st = self.state.lock();
        if st.paused.contains(&frame.program()) {
            st.parked.push(frame);
        } else {
            st.executable.push_back(frame);
        }
        drop(st);
        self.work_cond.notify_one();
    }

    /// Queue a frame whose execution failed on an infrastructure error:
    /// it re-enters the executable queue only after `delay` has passed
    /// (capped exponential backoff, budgeted by the caller).
    pub fn enqueue_delayed(&self, _site: &SiteInner, frame: Microframe, delay: Duration) {
        let due = Instant::now() + delay;
        self.state.lock().delayed.push((due, frame));
        // No notify: the due time is in the future; idle workers re-check
        // every 20 ms anyway.
    }

    /// Frames currently sitting out a retry backoff (observability).
    pub fn delayed_count(&self) -> usize {
        self.state.lock().delayed.len()
    }

    /// Local activity of a program: frames queued (executable, ready,
    /// parked or sitting out a backoff) plus frames currently executing.
    /// Zero means this site has nothing left to do for the program —
    /// the stuck-program watchdog's main input.
    pub fn program_activity(&self, program: sdvm_types::ProgramId) -> usize {
        let st = self.state.lock();
        st.executable
            .iter()
            .filter(|f| f.program() == program)
            .count()
            + st.ready
                .iter()
                .filter(|(f, _)| f.program() == program)
                .count()
            + st.parked.iter().filter(|f| f.program() == program).count()
            + st.delayed
                .iter()
                .filter(|(_, f)| f.program() == program)
                .count()
            + st.running.get(&program).copied().unwrap_or(0) as usize
    }

    /// Pause a program: park its queued frames; workers stop picking its
    /// frames up. Running frames drain (see [`Self::wait_quiesced`]).
    pub fn pause_program(&self, program: sdvm_types::ProgramId) {
        let mut st = self.state.lock();
        st.paused.insert(program);
        let mut parked = Vec::new();
        st.executable.retain(|f| {
            if f.program() == program {
                parked.push(f.clone());
                false
            } else {
                true
            }
        });
        // Ready frames lose their resolved code pointer; it is re-fetched
        // (from the local cache) after resume.
        st.ready.retain(|(f, _)| {
            if f.program() == program {
                parked.push(f.clone());
                false
            } else {
                true
            }
        });
        st.parked.extend(parked);
    }

    /// Resume a paused program: its parked frames re-enter the queue.
    pub fn resume_program(&self, program: sdvm_types::ProgramId) {
        let mut st = self.state.lock();
        st.paused.remove(&program);
        let parked = std::mem::take(&mut st.parked);
        for f in parked {
            if f.program() == program {
                st.executable.push_back(f);
            } else {
                st.parked.push(f);
            }
        }
        drop(st);
        self.work_cond.notify_all();
    }

    pub(crate) fn note_running(&self, program: sdvm_types::ProgramId, delta: i32) {
        let mut st = self.state.lock();
        let e = st.running.entry(program).or_insert(0);
        if delta > 0 {
            *e += delta as u32;
        } else {
            *e = e.saturating_sub((-delta) as u32);
        }
    }

    /// Block until no frame of `program` is executing locally (or the
    /// deadline passes). Used to quiesce before snapshotting.
    pub fn wait_quiesced(&self, program: sdvm_types::ProgramId, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let running = self
                .state
                .lock()
                .running
                .get(&program)
                .copied()
                .unwrap_or(0);
            if running == 0 {
                return true;
            }
            if std::time::Instant::now() > deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Clone (do not drain) all queued/parked frames of a program — the
    /// scheduling manager's contribution to a checkpoint snapshot.
    /// Includes the pre-execution image of every frame currently running
    /// in a worker slot: a non-quiescing cut must capture those too, or
    /// restoring it would lose the running frames' subtrees (their
    /// re-execution re-sends results; duplicates of sends that already
    /// landed are rejected by the target frame's slot-fill check).
    pub fn snapshot_program(&self, program: sdvm_types::ProgramId) -> Vec<Microframe> {
        let st = self.state.lock();
        st.executable
            .iter()
            .chain(st.ready.iter().map(|(f, _)| f))
            .chain(st.parked.iter())
            .chain(st.delayed.iter().map(|(_, f)| f))
            .chain(st.in_flight.values())
            .filter(|f| f.program() == program)
            .cloned()
            .collect()
    }

    /// Register the pre-execution image of a frame entering a worker
    /// slot (see `SchedState::in_flight`).
    pub(crate) fn note_in_flight(&self, frame: Microframe) {
        self.state.lock().in_flight.insert(frame.id, frame);
    }

    /// Drop the in-flight image of a frame leaving its worker slot.
    pub(crate) fn clear_in_flight(&self, id: sdvm_types::GlobalAddress) {
        self.state.lock().in_flight.remove(&id);
    }

    /// Wake all idle workers (shutdown).
    pub fn wake_all(&self) {
        self.work_cond.notify_all();
    }

    /// (queued executable+ready, busy slots) for load reports.
    pub fn load_numbers(&self) -> (u32, u32) {
        let st = self.state.lock();
        (
            (st.executable.len() + st.ready.len()) as u32,
            self.busy.load(Ordering::Relaxed),
        )
    }

    /// Total frames the scheduler still holds in *any* queue (executable,
    /// ready, parked, delayed) plus the busy worker slots. This is the
    /// drain-progress number: a draining site reports it live on
    /// `/healthz` and it must reach zero before the site departs.
    pub fn queued_total(&self) -> usize {
        let st = self.state.lock();
        st.executable.len()
            + st.ready.len()
            + st.parked.len()
            + st.delayed.len()
            + self.busy.load(Ordering::Relaxed) as usize
    }

    /// Next load-gossip epoch.
    pub fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::Relaxed)
    }

    pub(crate) fn set_busy(&self, delta: i32) {
        if delta > 0 {
            self.busy.fetch_add(delta as u32, Ordering::Relaxed);
        } else {
            self.busy.fetch_sub((-delta) as u32, Ordering::Relaxed);
        }
    }

    /// Blocking: produce the next (frame, code) pair for a processing
    /// slot, following Fig. 4's execution cycle: take a ready frame, or
    /// make an executable one ready by obtaining its code, or — idle —
    /// send a help request to another site. Returns `None` at shutdown.
    pub fn next_work(&self, site: &SiteInner) -> Option<(Microframe, ThreadFn)> {
        loop {
            if !site.is_running() {
                return None;
            }
            // A supervision drill asked one worker to exit: this slot
            // dies here and the supervisor respawns it.
            if site.take_worker_exit() {
                return None;
            }
            // 0. Promote frames whose retry backoff elapsed.
            // 1. Ready frame?
            {
                let mut st = self.state.lock();
                st.promote_due(Instant::now());
                if let Some(pair) = pop_ready(&mut st.ready, self.local_policy) {
                    if st.paused.contains(&pair.0.program()) {
                        st.parked.push(pair.0);
                        continue;
                    }
                    return Some(pair);
                }
                // 2. Executable frame → obtain code (may block remotely).
                if let Some(frame) = pop_frame(&mut st.executable, self.local_policy) {
                    if st.paused.contains(&frame.program()) {
                        st.parked.push(frame);
                        continue;
                    }
                    // While the code fetch blocks, the frame is in no
                    // queue — count it as running so checkpoint quiescing
                    // does not cut a snapshot that misses it.
                    let program = frame.program();
                    *st.running.entry(program).or_insert(0) += 1;
                    drop(st);
                    let ensured = site.code.ensure(site, frame.thread);
                    let mut st = self.state.lock();
                    let e = st.running.entry(program).or_insert(1);
                    *e = e.saturating_sub(1);
                    match ensured {
                        Ok(func) => {
                            site.emit(TraceEvent::FrameReady {
                                site: site.my_id(),
                                frame: frame.id,
                            });
                            st.ready.push_back((frame, func));
                            continue;
                        }
                        Err(_) => {
                            // Code currently unavailable: requeue and back
                            // off so we don't spin.
                            st.executable.push_back(frame);
                            drop(st);
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        }
                    }
                }
            }
            // 3. Idle: ask another site for work (unless draining).
            if !site.is_draining() {
                if let Err(_e) = self.try_help_request(site) {
                    // No peers or no luck — fall through to waiting.
                }
            }
            // 4. Wait for local work to appear.
            let mut st = self.state.lock();
            if st.ready.is_empty() && st.executable.is_empty() {
                self.work_cond.wait_for(&mut st, Duration::from_millis(20));
            }
        }
    }

    /// One help-request round: ask the most promising peer. On a granted
    /// frame, adopt it locally.
    fn try_help_request(&self, site: &SiteInner) -> SdvmResult<()> {
        if !site.my_id().is_valid() {
            return Ok(()); // sign-on not finished: nobody could answer us
        }
        let Some(target) = site.cluster.pick_help_target(site) else {
            return Ok(()); // alone in the cluster
        };
        site.emit(TraceEvent::HelpRequested {
            site: site.my_id(),
            target,
        });
        let load = site.cluster.my_load(site);
        let descriptor = if site.cluster.announced(target) {
            None
        } else {
            Some(site.cluster.my_descriptor(site))
        };
        let asked = std::time::Instant::now();
        let reply = site.request(
            target,
            ManagerId::Scheduling,
            ManagerId::Scheduling,
            Payload::HelpRequest { load, descriptor },
            site.config.help_timeout,
        )?;
        site.metrics
            .help_rtt_us
            .observe(asked.elapsed().as_micros() as u64);
        // The help round trip doubles as a Vivaldi coordinate sample
        // (wire v9) — no extra probe traffic is ever sent.
        site.cluster.observe_rtt(target, asked.elapsed());
        if let Payload::HelpReply { frame } = reply.payload {
            let granter = reply.src_site;
            let frame = Microframe::from_wire(frame);
            let id = frame.id;
            // adopt_frame mirrors the frame to OUR buddy first; only then
            // is the granter's (now stale) backup entry released.
            site.memory.adopt_frame(site, frame);
            backup::mirror_released(site, granter, id);
        }
        Ok(())
    }

    /// Drop all queued frames of a terminated program.
    pub fn purge_program(&self, program: sdvm_types::ProgramId) {
        let mut st = self.state.lock();
        st.executable.retain(|f| f.program() != program);
        st.ready.retain(|(f, _)| f.program() != program);
        st.parked.retain(|f| f.program() != program);
        st.delayed.retain(|(_, f)| f.program() != program);
        st.paused.remove(&program);
    }

    /// Everything queued here, for relocation at sign-off.
    pub fn drain_all(&self) -> Vec<Microframe> {
        let mut st = self.state.lock();
        let mut out: Vec<Microframe> = st.executable.drain(..).collect();
        out.extend(st.ready.drain(..).map(|(f, _)| f));
        out.append(&mut st.parked);
        out.extend(st.delayed.drain(..).map(|(_, f)| f));
        out
    }

    /// Handle an incoming scheduling-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload.clone() {
            Payload::HelpRequest { load, descriptor } => {
                // The help request doubles as join announcement (§3.4).
                if let Some(d) = descriptor {
                    site.cluster.learn(site, d);
                }
                site.cluster.note_load(msg.src_site, load);
                let requester = msg.src_site;
                // Never give work away while draining (we are busy
                // relocating it ourselves), never to ourselves, and never
                // to a requester we cannot address a reply to — the frame
                // inside the reply would be lost.
                let frame = if site.is_draining()
                    || requester == site.my_id()
                    || !requester.is_valid()
                    || site.cluster.addr_of(requester).is_none()
                {
                    None
                } else {
                    pop_for_help(&mut self.state.lock(), self.help_policy, |f| {
                        site.memory.help_score(requester, f)
                    })
                };
                match frame {
                    Some((frame, score)) => {
                        site.emit(TraceEvent::HelpGranted {
                            site: site.my_id(),
                            requester,
                            frame: frame.id,
                            score,
                        });
                        // Ownership moves to the requester: fix up the
                        // homesite directory and release our backup.
                        let me = site.my_id();
                        let home = site.memory.resolve_home(site, frame.id.home);
                        if home == me {
                            // We are the directory: note new owner once
                            // the requester adopts (it will send
                            // OwnerUpdate; set it eagerly too, for reads
                            // racing the adoption).
                            let _ = site.send_payload(
                                me,
                                ManagerId::Memory,
                                ManagerId::Memory,
                                site.next_seq(),
                                Payload::OwnerUpdate {
                                    addr: frame.id,
                                    owner: requester,
                                },
                            );
                        }
                        let mut reply = msg.reply(
                            site.next_seq(),
                            ManagerId::Scheduling,
                            Payload::HelpReply {
                                frame: frame.to_wire(),
                            },
                        );
                        // The migration rides the wire under the frame's
                        // own trace context, so the requester's hops are
                        // stitchable to this career.
                        reply.trace = TraceContext {
                            origin: frame.id.home,
                            id: trace_id_of(frame.id),
                        };
                        if site.send_msg(reply).is_err() {
                            // The requester became unreachable between
                            // request and grant: the frame must not be
                            // lost — take it back.
                            site.memory.adopt_frame(site, frame);
                        }
                    }
                    None => {
                        site.emit(TraceEvent::HelpDenied {
                            site: site.my_id(),
                            requester,
                        });
                        site.reply_to(&msg, ManagerId::Scheduling, Payload::CantHelp {});
                    }
                }
            }
            // A help reply whose waiter timed out: adopt the frame anyway
            // so no work is ever lost.
            Payload::HelpReply { frame } => {
                let granter = msg.src_site;
                let frame = Microframe::from_wire(frame);
                let id = frame.id;
                site.memory.adopt_frame(site, frame);
                backup::mirror_released(site, granter, id);
            }
            Payload::CantHelp {} => {}
            // A replica of a frame coordinated elsewhere: execute it
            // here, ballot-buffered. Pinned (sticky) so the help pool
            // never migrates it away from the site it was dispatched to.
            Payload::ReplicaTask {
                frame,
                generation,
                replica,
                coordinator,
                vote,
            } => {
                let mut f = Microframe::from_wire(frame);
                f.hint.sticky = true;
                f.replica = Some(ReplicaRun {
                    coordinator,
                    generation,
                    replica,
                    vote,
                });
                self.enqueue_executable(site, f);
            }
            // A replica's ballot coming home to this coordinator.
            Payload::ReplicaDone {
                frame,
                generation,
                replica,
                ok,
                sends,
                error,
            } => {
                site.replication.on_ballot(
                    site,
                    frame,
                    generation,
                    replica,
                    ok,
                    sends,
                    error,
                    msg.src_site,
                );
            }
            other => {
                site.reply_to(
                    &msg,
                    ManagerId::Scheduling,
                    Payload::Error {
                        message: format!("scheduling: unexpected {}", other.name()),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use sdvm_types::{GlobalAddress, MicrothreadId, Priority, ProgramId, SchedulingHint, SiteId};

    fn mk(local: u64, prio: i32, sticky: bool) -> Microframe {
        Microframe::new(
            GlobalAddress::new(SiteId(1), local),
            MicrothreadId::new(ProgramId(1), 0),
            0,
            vec![],
            SchedulingHint {
                priority: Priority(prio),
                sticky,
            },
        )
    }

    fn queue(frames: Vec<Microframe>) -> VecDeque<Microframe> {
        frames.into_iter().collect()
    }

    #[test]
    fn fifo_pops_oldest() {
        let mut q = queue(vec![mk(1, 0, false), mk(2, 0, false), mk(3, 0, false)]);
        assert_eq!(pop_frame(&mut q, QueuePolicy::Fifo).unwrap().id.local, 1);
        assert_eq!(pop_frame(&mut q, QueuePolicy::Fifo).unwrap().id.local, 2);
    }

    #[test]
    fn lifo_pops_newest() {
        let mut q = queue(vec![mk(1, 0, false), mk(2, 0, false), mk(3, 0, false)]);
        assert_eq!(pop_frame(&mut q, QueuePolicy::Lifo).unwrap().id.local, 3);
        assert_eq!(pop_frame(&mut q, QueuePolicy::Lifo).unwrap().id.local, 2);
    }

    #[test]
    fn priority_pops_highest_then_fifo_among_equals() {
        let mut q = queue(vec![
            mk(1, 5, false),
            mk(2, 9, false),
            mk(3, 9, false),
            mk(4, 1, false),
        ]);
        assert_eq!(
            pop_frame(&mut q, QueuePolicy::Priority).unwrap().id.local,
            2
        );
        assert_eq!(
            pop_frame(&mut q, QueuePolicy::Priority).unwrap().id.local,
            3
        );
        assert_eq!(
            pop_frame(&mut q, QueuePolicy::Priority).unwrap().id.local,
            1
        );
        assert_eq!(
            pop_frame(&mut q, QueuePolicy::Priority).unwrap().id.local,
            4
        );
        assert!(pop_frame(&mut q, QueuePolicy::Priority).is_none());
    }

    #[test]
    fn help_never_gives_sticky_frames() {
        // Only the sticky result frame queued: nothing to give.
        let mut st = SchedState {
            executable: queue(vec![mk(1, 0, true)]),
            ..Default::default()
        };
        assert!(pop_for_help(&mut st, QueuePolicy::Lifo, |_| 0).is_none());
        assert_eq!(st.executable.len(), 1, "sticky frame must stay queued");
        // With a normal frame present, that one is given instead.
        st.executable.push_back(mk(2, 0, false));
        let (given, _) = pop_for_help(&mut st, QueuePolicy::Lifo, |_| 0).unwrap();
        assert_eq!(given.id.local, 2);
        assert_eq!(st.executable.len(), 1);
    }

    #[test]
    fn help_lifo_gives_most_recent_nonsticky() {
        let mut st = SchedState {
            executable: queue(vec![mk(1, 0, false), mk(2, 0, false), mk(3, 0, true)]),
            ..Default::default()
        };
        let (given, _) = pop_for_help(&mut st, QueuePolicy::Lifo, |_| 0).unwrap();
        assert_eq!(given.id.local, 2, "newest non-sticky frame leaves first");
        let (given, _) = pop_for_help(&mut st, QueuePolicy::Fifo, |_| 0).unwrap();
        assert_eq!(given.id.local, 1);
    }

    #[test]
    fn help_scoring_beats_queue_order() {
        // LIFO would give frame 3; a higher locality score on frame 1
        // overrides the queue order, and the winning score is returned.
        let mut st = SchedState {
            executable: queue(vec![mk(1, 0, false), mk(2, 0, false), mk(3, 0, false)]),
            ..Default::default()
        };
        let (given, score) = pop_for_help(&mut st, QueuePolicy::Lifo, |f| {
            if f.id.local == 1 {
                2
            } else {
                0
            }
        })
        .unwrap();
        assert_eq!(given.id.local, 1, "locality score overrides LIFO");
        assert_eq!(score, 2);
        // Ties fall back to the queue policy (LIFO: newest first).
        let (given, score) = pop_for_help(&mut st, QueuePolicy::Lifo, |_| 0).unwrap();
        assert_eq!(given.id.local, 3);
        assert_eq!(score, 0);
    }

    #[test]
    fn delayed_frames_promote_only_when_due() {
        let mut st = SchedState::default();
        let now = Instant::now();
        st.delayed
            .push((now + Duration::from_millis(50), mk(1, 0, false)));
        st.delayed.push((now, mk(2, 0, false)));
        assert_eq!(st.promote_due(now), 1, "only the due frame promotes");
        assert_eq!(st.executable.len(), 1);
        assert_eq!(st.executable[0].id.local, 2);
        assert_eq!(st.delayed.len(), 1);
        assert_eq!(st.promote_due(now + Duration::from_millis(60)), 1);
        assert!(st.delayed.is_empty());
    }

    #[test]
    fn delayed_frames_of_paused_programs_park_instead() {
        let mut st = SchedState::default();
        st.paused.insert(ProgramId(1));
        let now = Instant::now();
        st.delayed.push((now, mk(1, 0, false)));
        assert_eq!(st.promote_due(now), 1);
        assert!(st.executable.is_empty());
        assert_eq!(st.parked.len(), 1, "paused program's frame parks");
    }

    #[test]
    fn help_falls_back_to_ready_queue() {
        let noop: ThreadFn = std::sync::Arc::new(|_| Ok(()));
        let mut st = SchedState::default();
        st.ready.push_back((mk(7, 0, false), noop.clone()));
        st.ready.push_back((mk(8, 3, false), noop));
        let (given, _) = pop_for_help(&mut st, QueuePolicy::Priority, |_| 0).unwrap();
        assert_eq!(given.id.local, 8, "highest-priority ready frame given");
        assert_eq!(st.ready.len(), 1);
    }
}
