//! The site manager (paper §4): the local site's lifecycle and
//! performance data.
//!
//! "In contrast to the cluster manager, the site manager focuses on the
//! local site. [...] it provides the functionality to query the status of
//! the local site, i.e. all local managers."

use crate::managers::code::CodeStats;
use crate::site::SiteInner;
use crate::telemetry::SiteMetrics;
use parking_lot::Mutex;
use sdvm_types::{ManagerId, ProgramId, SiteId};
use sdvm_wire::{Payload, SdMessage};
use std::collections::HashMap;
use std::time::Duration;

/// A point-in-time status snapshot of one site.
#[derive(Clone, Debug, PartialEq)]
pub struct SiteStatus {
    /// Logical id.
    pub id: SiteId,
    /// Executable + ready microframes queued.
    pub queued_frames: u32,
    /// Processing slots currently executing.
    pub busy_slots: u32,
    /// Global memory objects owned here.
    pub objects: usize,
    /// Incomplete microframes owned here.
    pub incomplete_frames: usize,
    /// Bytes in the local part of the attraction memory.
    pub memory_bytes: u64,
    /// Programs this site knows and that still run.
    pub programs: u32,
    /// Outstanding remote requests.
    pub outstanding_requests: usize,
    /// Sites currently known (cluster view size).
    pub known_sites: usize,
    /// Code-manager counters (compiles on the fly, remote code fetches).
    pub code_stats: CodeStats,
    /// Frames waiting in the transport's per-peer outbound queues —
    /// non-zero means peers are applying backpressure.
    pub outbound_queued: usize,
    /// Cumulative transport reconnect attempts across all peers —
    /// climbing numbers mean flapping links.
    pub outbound_retries: u64,
    /// Poison frames quarantined in this site's dead-letter store.
    pub dead_letters: usize,
    /// Frames currently sitting out a retry backoff.
    pub delayed_frames: usize,
    /// Full telemetry snapshot: counters, gauges and latency histograms.
    pub metrics: SiteMetrics,
}

/// Resource usage of one program on this site — the accounting data the
/// paper's service-provider scenario needs (goal 14, §2.2: "The
/// accounting functionality needed for this can be integrated into the
/// SDVM").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgramUsage {
    /// Microthreads this site executed for the program.
    pub frames_executed: u64,
    /// Wall time this site's processing slots spent on them.
    pub cpu: Duration,
}

/// The site manager of one site.
#[derive(Default)]
pub struct SiteManager {
    usage: Mutex<HashMap<ProgramId, ProgramUsage>>,
}

impl SiteManager {
    /// Fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed microthread (called by the processing
    /// manager after each execution).
    pub fn account(&self, program: ProgramId, cpu: Duration) {
        let mut usage = self.usage.lock();
        let u = usage.entry(program).or_default();
        u.frames_executed += 1;
        u.cpu += cpu;
    }

    /// The accounting ledger: per-program resource usage on this site.
    /// (Terminated programs stay in the ledger — bills outlive jobs.)
    pub fn accounting(&self) -> Vec<(ProgramId, ProgramUsage)> {
        let mut v: Vec<_> = self.usage.lock().iter().map(|(p, u)| (*p, *u)).collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// Usage of one program on this site.
    pub fn usage_of(&self, program: ProgramId) -> ProgramUsage {
        self.usage.lock().get(&program).copied().unwrap_or_default()
    }

    /// Collect the local status (queries all local managers).
    pub fn status(&self, site: &SiteInner) -> SiteStatus {
        let (queued_frames, busy_slots) = site.scheduling.load_numbers();
        let mem = site.memory.stats();
        let outbound_queued: usize = site
            .transport
            .outbound_depths()
            .iter()
            .map(|(_, depth)| depth)
            .sum();
        // Sample the queue-depth gauge and fold transport-level stall
        // counts and per-shard memory contention into the metrics
        // snapshot.
        site.metrics
            .outbound_queue_depth
            .set(outbound_queued as u64);
        site.metrics
            .net_peers_connected
            .set(site.transport.peers_connected() as u64);
        site.metrics
            .net_driver_threads
            .set(site.transport.driver_threads() as u64);
        let (coord_err_ms, _, _) = site.cluster.coord_stats();
        site.metrics
            .coord_error_ms
            .set(coord_err_ms.round().max(0.0) as u64);
        let mut metrics = site.metrics.snapshot();
        metrics.backpressure_stalls = site.transport.outbound_stalls();
        metrics.mem_shard_contention = mem.shard_contention.clone();
        if let Some(t) = &site.trace {
            metrics.bus_dropped = t.dropped();
            metrics.bus_tap_dropped = t.tap_dropped();
        }
        SiteStatus {
            id: site.my_id(),
            queued_frames,
            busy_slots,
            objects: mem.objects,
            incomplete_frames: mem.frames,
            memory_bytes: mem.memory_bytes,
            programs: site.program.active_count(),
            outstanding_requests: site.pending.outstanding(),
            known_sites: site.cluster.known_sites().len(),
            code_stats: site.code.stats(),
            outbound_queued,
            outbound_retries: site
                .transport
                .outbound_retries()
                .iter()
                .map(|(_, retries)| retries)
                .sum(),
            dead_letters: site.deadletter.count(),
            delayed_frames: site.scheduling.delayed_count(),
            metrics,
        }
    }

    /// Handle an incoming site-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload {
            Payload::Ping { token } => {
                site.reply_to(&msg, ManagerId::Site, Payload::Pong { token });
            }
            ref other => {
                site.reply_to(
                    &msg,
                    ManagerId::Site,
                    Payload::Error {
                        message: format!("site: unexpected {}", other.name()),
                    },
                );
            }
        }
    }
}
