//! The processing manager (paper §4): executes microthreads.
//!
//! "If it is idle, it requests a pair of an executable microframe and its
//! corresponding microthread from the scheduling manager. [...] Then the
//! microthread is executed using these parameters." Latency hiding is
//! achieved by running `SiteConfig::slots` of these loops in (virtual)
//! parallel — the paper found about 5 to work well; while one microthread
//! blocks on a remote memory access, the other slots keep executing.
//!
//! The engine is panic-safe: every handler runs under `catch_unwind`, so
//! an application bug cannot kill a worker slot, and the busy/running
//! accounting is held by an RAII guard so no exit path — return, retry,
//! or unwind — can leak a counter. Infrastructure failures are retried
//! with a budgeted, capped exponential backoff; panics, application
//! errors and exhausted budgets quarantine the frame in the dead-letter
//! store instead of looping forever.

use crate::api::ExecCtx;
use crate::config::debug_enabled;
use crate::site::SiteInner;
use crate::trace::TraceEvent;
use sdvm_types::{ProgramId, SdvmError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Is this failure the cluster's fault (peer crashed, request timed out)
/// rather than the application's? Infrastructure failures re-execute.
fn is_infrastructure(e: &SdvmError) -> bool {
    matches!(
        e,
        SdvmError::Transport(_)
            | SdvmError::Timeout(_)
            | SdvmError::UnknownSite(_)
            | SdvmError::SiteLost(_)
            | SdvmError::ObjectMissing(_)
    )
}

/// Human-readable message out of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// RAII guard for one slot execution: busy/running counters and program
/// billing are released on drop, so every exit path — including an
/// unwind caught further up — restores the accounting.
struct SlotGuard<'a> {
    site: &'a SiteInner,
    program: ProgramId,
    in_flight: Option<sdvm_types::GlobalAddress>,
    started: std::time::Instant,
}

impl<'a> SlotGuard<'a> {
    fn enter(site: &'a SiteInner, frame: &crate::frame::Microframe) -> Self {
        let program = frame.program();
        site.scheduling.set_busy(1);
        site.scheduling.note_running(program, 1);
        // Keep the pre-execution image visible to non-quiescing
        // (incremental) snapshots; replica runs stay invisible — they
        // settle through their coordinator, not through a checkpoint.
        let in_flight = if frame.replica.is_none() {
            site.scheduling.note_in_flight(frame.clone());
            Some(frame.id)
        } else {
            None
        };
        SlotGuard {
            site,
            program,
            in_flight,
            started: std::time::Instant::now(),
        }
    }
}

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.in_flight {
            self.site.scheduling.clear_in_flight(id);
        }
        self.site.scheduling.set_busy(-1);
        self.site.scheduling.note_running(self.program, -1);
        // Accounting (paper goal 14): charge the program for the slot
        // time, successful or not — failed work still burnt resources.
        self.site
            .site_mgr
            .account(self.program, self.started.elapsed());
    }
}

/// Body of one processing slot; runs until site shutdown (or until the
/// supervisor asks this slot to exit — see `SiteInner::take_worker_exit`).
pub fn worker_loop(site: &Arc<SiteInner>) {
    while site.is_running() {
        site.pause_gate();
        let Some((mut frame, func)) = site.scheduling.next_work(site) else {
            break;
        };
        let id = frame.id;
        let thread = frame.thread;
        // A replica dispatched by the replication manager buffers its
        // result sends into a ballot instead of applying them.
        let ballot = frame
            .replica
            .map(|_| Arc::new(parking_lot::Mutex::new(Vec::new())));
        let result = {
            let guard = SlotGuard::enter(site, &frame);
            // The guard sits OUTSIDE the catch so its Drop runs on the
            // normal path after a caught unwind — counters cannot leak.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = match &ballot {
                    Some(buf) => ExecCtx::for_replica(site, &frame, buf.clone()),
                    None => ExecCtx::for_frame(site, &frame),
                };
                func(&mut ctx)
            }));
            drop(guard);
            match caught {
                Ok(r) => r,
                Err(payload) => {
                    site.metrics.handler_panics.inc();
                    Err(SdvmError::HandlerPanicked {
                        thread,
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        };
        if let (Some(run), Some(buf)) = (frame.replica, ballot) {
            // Replicas report to their coordinator — no local retry or
            // quarantine (the escrow entry re-dispatches on failure),
            // and no consume/FrameExecuted (the coordinator settles the
            // logical frame exactly once).
            let outcome = result.map(|()| std::mem::take(&mut *buf.lock()));
            site.replication.report(site, id, run, outcome);
            continue;
        }
        if let Err(ref e) = result {
            if debug_enabled() {
                eprintln!(
                    "[dbg site{}] microthread {thread} frame {id} failed: {e}",
                    site.my_id().0
                );
            }
            if is_infrastructure(e) && site.is_running() && !site.is_draining() {
                // A peer died under us mid-execution. Re-execution
                // re-sends every result; duplicates of sends that
                // already landed are dropped idempotently
                // (at-least-once semantics, as after crash recovery).
                frame.retries += 1;
                if frame.retries <= site.config.max_frame_retries {
                    let delay = site.config.retry_backoff(frame.retries);
                    site.metrics.retry_delay_us.observe_duration(delay);
                    site.emit(TraceEvent::FrameRetried {
                        site: site.my_id(),
                        frame: id,
                        thread,
                        attempt: frame.retries,
                    });
                    site.scheduling.enqueue_delayed(site, frame, delay);
                    continue;
                }
                // Budget exhausted: the failure is persistent — the
                // frame is poison, not merely unlucky.
            }
            // Panic, application error, or exhausted retry budget:
            // quarantine. This consumes the frame cluster-wide
            // (tombstoning the backup) and reports to the program's
            // code home, where the failure policy decides.
            site.deadletter.quarantine(site, frame, e.clone());
            continue;
        }
        // The microframe is consumed by execution and vanishes (§3.2).
        site.memory.consume_frame(site, id);
        site.emit(TraceEvent::FrameExecuted {
            site: site.my_id(),
            frame: id,
            thread,
        });
    }
}
