//! The processing manager (paper §4): executes microthreads.
//!
//! "If it is idle, it requests a pair of an executable microframe and its
//! corresponding microthread from the scheduling manager. [...] Then the
//! microthread is executed using these parameters." Latency hiding is
//! achieved by running `SiteConfig::slots` of these loops in (virtual)
//! parallel — the paper found about 5 to work well; while one microthread
//! blocks on a remote memory access, the other slots keep executing.

use crate::api::ExecCtx;
use crate::site::SiteInner;
use crate::trace::TraceEvent;
use sdvm_types::SdvmError;
use std::sync::Arc;

/// Is this failure the cluster's fault (peer crashed, request timed out)
/// rather than the application's? Infrastructure failures re-execute.
fn is_infrastructure(e: &SdvmError) -> bool {
    matches!(
        e,
        SdvmError::Transport(_)
            | SdvmError::Timeout(_)
            | SdvmError::UnknownSite(_)
            | SdvmError::SiteLost(_)
            | SdvmError::ObjectMissing(_)
    )
}

/// Body of one processing slot; runs until site shutdown.
pub fn worker_loop(site: &Arc<SiteInner>) {
    while site.is_running() {
        site.pause_gate();
        let Some((frame, func)) = site.scheduling.next_work(site) else {
            break;
        };
        let id = frame.id;
        let thread = frame.thread;
        site.scheduling.set_busy(1);
        site.scheduling.note_running(frame.program(), 1);
        let started = std::time::Instant::now();
        let result = {
            let mut ctx = ExecCtx::for_frame(site, &frame);
            func(&mut ctx)
        };
        site.scheduling.set_busy(-1);
        site.scheduling.note_running(frame.program(), -1);
        // Accounting (paper goal 14): charge the program for the slot
        // time, successful or not — failed work still burnt resources.
        site.site_mgr.account(frame.program(), started.elapsed());
        if let Err(ref e) = result {
            if std::env::var_os("SDVM_DEBUG").is_some() {
                eprintln!(
                    "[dbg site{}] microthread {thread} frame {id} failed: {e}",
                    site.my_id().0
                );
            }
            if is_infrastructure(e) && site.is_running() && !site.is_draining() {
                // A peer died under us mid-execution. Re-enqueue the
                // frame: re-execution re-sends every result, and
                // duplicates of the sends that already succeeded are
                // dropped idempotently (at-least-once semantics, as
                // after a crash recovery).
                site.scheduling.enqueue_executable(site, frame.clone());
                continue;
            }
        }
        // The microframe is consumed by execution and vanishes (§3.2).
        site.memory.consume_frame(site, id);
        site.emit(TraceEvent::FrameExecuted {
            site: site.my_id(),
            frame: id,
            thread,
        });
        if let Err(e) = result {
            // An application error must not kill the daemon; surface it
            // through the I/O manager to the program's frontend.
            site.io.output(
                site,
                frame.program(),
                format!("microthread {thread} failed: {e}"),
            );
        }
    }
}
