//! The dead-letter store: per-site quarantine for poison microframes.
//!
//! A frame lands here when its handler panicked, returned an application
//! error, or exhausted its infrastructure-retry budget. Quarantining
//! *consumes* the frame through the memory manager — the directory entry
//! is removed and the backup buddy is tombstoned — so a crash recovery
//! can never revive a poison frame. The frame body is kept locally for
//! inspection and can be re-driven (budget reset) once the operator
//! fixed the cause.

use crate::frame::Microframe;
use crate::site::SiteInner;
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use sdvm_types::{GlobalAddress, ManagerId, ProgramId, SdvmError};
use sdvm_wire::Payload;

/// One quarantined frame and why it was pulled from circulation.
#[derive(Clone, Debug)]
pub struct DeadLetter {
    /// The poison frame, kept whole for inspection and re-drive.
    pub frame: Microframe,
    /// The error that condemned it.
    pub cause: SdvmError,
}

/// The dead-letter manager of one site.
#[derive(Default)]
pub struct DeadLetterManager {
    letters: Mutex<Vec<DeadLetter>>,
}

impl DeadLetterManager {
    /// Fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quarantine a poison frame: store it, consume it cluster-wide
    /// (directory removal + backup tombstone, so buddies don't revive
    /// it), and notify the program's code-home site so the failure
    /// policy can be applied at the frontend.
    pub fn quarantine(&self, site: &SiteInner, frame: Microframe, cause: SdvmError) {
        let id = frame.id;
        let thread = frame.thread;
        let program = frame.program();
        let cause_text = cause.to_string();
        site.memory.consume_frame(site, id);
        site.emit(TraceEvent::FrameQuarantined {
            site: site.my_id(),
            frame: id,
            thread,
            cause: std::sync::Arc::new(cause_text.clone()),
        });
        self.letters.lock().push(DeadLetter { frame, cause });
        match site.program.code_home(program) {
            Some(home) if home != site.my_id() => {
                let _ = site.send_payload(
                    home,
                    ManagerId::Program,
                    ManagerId::Program,
                    site.next_seq(),
                    Payload::FrameQuarantined {
                        program,
                        frame: id,
                        thread,
                        cause: cause_text,
                    },
                );
            }
            _ => {
                // Code home unknown (already purged) or it is us: apply
                // the policy locally.
                site.program
                    .on_frame_quarantined(site, program, id, thread, cause_text);
            }
        }
    }

    /// Number of frames currently quarantined on this site.
    pub fn count(&self) -> usize {
        self.letters.lock().len()
    }

    /// Snapshot of the quarantined frames (for inspection/tests).
    pub fn letters(&self) -> Vec<DeadLetter> {
        self.letters.lock().clone()
    }

    /// Re-drive a quarantined frame: pull it out of the store, reset its
    /// retry budget and hand it back to the scheduler. Returns `false`
    /// if no such frame is quarantined here.
    pub fn redrive(&self, site: &SiteInner, frame_id: GlobalAddress) -> bool {
        let letter = {
            let mut letters = self.letters.lock();
            match letters.iter().position(|d| d.frame.id == frame_id) {
                Some(pos) => letters.swap_remove(pos),
                None => return false,
            }
        };
        let mut frame = letter.frame;
        frame.retries = 0;
        site.scheduling.enqueue_executable(site, frame);
        true
    }

    /// Drain the whole store for the drain-time handoff to the
    /// successor: without the transfer the letters would vanish with
    /// the departing site and `redrive()` would be impossible forever.
    pub fn take_all(&self) -> Vec<DeadLetter> {
        std::mem::take(&mut *self.letters.lock())
    }

    /// Adopt a letter handed over by a draining site (`DeadLetterSweep`).
    /// The frame was already consumed cluster-wide when it was first
    /// quarantined, so this only stores it — no directory removal, no
    /// tombstone, no code-home notification (the failure policy already
    /// ran on the original quarantine).
    pub fn adopt(&self, frame: Microframe, cause: SdvmError) {
        self.letters.lock().push(DeadLetter { frame, cause });
    }

    /// Drop all letters of a terminated program.
    pub fn purge_program(&self, program: ProgramId) {
        self.letters.lock().retain(|d| d.frame.program() != program);
    }
}
