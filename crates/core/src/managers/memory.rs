//! The attraction memory (paper §4): the local part of the global
//! memory, a COMA-style owner/directory protocol.
//!
//! Every global object (and every microframe, which is a special kind of
//! global object) has a *homesite* encoded in its address. The homesite
//! keeps the directory entry tracking the object's current owner; the
//! object itself migrates ("is attracted") to the sites that use it.
//! Results applied to waiting microframes go through
//! [`MemoryManager::apply_or_forward`]; when the last missing parameter arrives the
//! frame becomes executable and is handed to the scheduling manager —
//! exactly Fig. 4's execution cycle.
//!
//! v2 of the store (this file) splits the state into N address-hashed
//! *shards* so concurrent workers touching unrelated objects stop
//! serializing on one mutex; all state for one address (object, frame,
//! directory entry, replica, copyset, forwarding hint) lives in the same
//! shard, and no operation ever holds two shard locks at once. On top of
//! the shards sit three protocol upgrades (wire v4):
//!
//! - **Versioned read replicas**: objects carry a monotonic version
//!   bumped on every write. A non-migrating read enters the reader into
//!   the owner's per-object *copyset* and caches the value locally;
//!   repeat reads are served from the replica without crossing the wire
//!   until the owner writes (it then sends `ReplicaInvalidate` to the
//!   copyset) or the replica's TTL lease expires — the lease bounds
//!   staleness when an invalidation is lost, e.g. during a partition.
//! - **Forwarding hints**: when an object migrates away, the old owner
//!   remembers where it went; `MemMissing` replies carry that hint so
//!   chasers jump straight to the new owner instead of re-querying the
//!   homesite after a blind backoff.
//! - **Locality scoring** for help granting lives in
//!   [`MemoryManager::help_score`].

use crate::frame::Microframe;
use crate::managers::backup;
use crate::site::{SiteInner, Task};
use crate::telemetry::trace_id_of;
use crate::trace::TraceEvent;
use parking_lot::{Mutex, MutexGuard};
use sdvm_types::{GlobalAddress, ManagerId, ProgramId, SdvmError, SdvmResult, SiteId, Value};
use sdvm_wire::{Payload, SdMessage, TraceContext, WireFrame, WireMemObject};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Forwarding hints kept per shard; cleared wholesale on overflow (same
/// bounded-map discipline as the telemetry career map).
const HINT_CAP: usize = 1024;

/// Upper bound on owner hops a read/write chase follows before giving up.
const CHASE_HOPS: u32 = 8;

/// A plain global memory object.
#[derive(Clone, Debug, PartialEq)]
pub struct MemObject {
    /// Owning program (objects are purged with their program).
    pub program: ProgramId,
    /// Contents.
    pub data: Value,
    /// Monotonic write version (bumped by the owner on every write).
    pub version: u64,
}

/// A cached copy of a remote object (replica read mode).
struct Replica {
    program: ProgramId,
    data: Value,
    version: u64,
    /// When the copy was cut; replicas older than the configured TTL
    /// lease are ignored (bounds staleness under lost invalidations).
    fetched: Instant,
}

/// Named counts for load reports / status (replaces the old bare tuple).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MemStats {
    /// Objects currently owned by this site.
    pub objects: usize,
    /// Incomplete microframes owned by this site.
    pub frames: usize,
    /// Total payload bytes of the owned objects.
    pub memory_bytes: u64,
    /// Cached read replicas of remote objects.
    pub replicas: usize,
    /// Per-shard lock-contention counts (a `try_lock` that had to block).
    pub shard_contention: Vec<u64>,
}

#[derive(Default)]
struct Shard {
    /// Objects currently owned by this site (homed here or migrated in).
    objects: HashMap<GlobalAddress, MemObject>,
    /// Incomplete microframes owned by this site.
    frames: HashMap<GlobalAddress, Microframe>,
    /// Homesite directory: current owner of every *live* object/frame
    /// homed here (or whose directory this site inherited). An absent
    /// entry for a locally-homed address means consumed/freed.
    directory: HashMap<GlobalAddress, SiteId>,
    /// Cached copies of remote objects (never mirrored, never owned).
    replicas: HashMap<GlobalAddress, Replica>,
    /// Owner-side copysets: which sites cached a replica of an object
    /// owned here, to be invalidated on write/migration.
    copysets: HashMap<GlobalAddress, Vec<SiteId>>,
    /// Where an object that migrated away went (last known owner);
    /// served as the `MemMissing` forwarding hint.
    hints: HashMap<GlobalAddress, SiteId>,
    /// Programs whose objects/frames in this shard changed since their
    /// last incremental checkpoint cut (wire v8). Set under the shard
    /// lock the mutation already holds, so marking is free of extra
    /// synchronization; cleared per program when a cut re-captures the
    /// shard.
    dirty: HashSet<ProgramId>,
}

struct ShardSlot {
    state: Mutex<Shard>,
    /// Times a locker found the shard held and had to block.
    contention: AtomicU64,
}

impl ShardSlot {
    fn lock(&self) -> MutexGuard<'_, Shard> {
        if let Some(g) = self.state.try_lock() {
            return g;
        }
        self.contention.fetch_add(1, Ordering::Relaxed);
        self.state.lock()
    }
}

/// One shard's contribution to a program's incremental checkpoint cut,
/// cached between cuts so clean shards are answered without touching
/// (or locking) the live shard again.
#[derive(Clone, Default)]
struct ShardCut {
    objects: Vec<WireMemObject>,
    frames: Vec<WireFrame>,
}

/// Result of one incremental (copy-on-write style) checkpoint cut.
pub struct IncrementalCut {
    /// This site's owned objects of the program, per-shard consistent.
    pub objects: Vec<WireMemObject>,
    /// This site's incomplete frames of the program, per-shard consistent.
    pub frames: Vec<WireFrame>,
    /// Shards that were dirty (or never cut) and had to be re-captured.
    pub shards_captured: usize,
    /// Clean shards answered from the previous cut without locking work.
    pub shards_reused: usize,
    /// Longest time any single shard lock was held during the cut — the
    /// worst case a concurrent worker could have been blocked.
    pub max_block: std::time::Duration,
}

/// The attraction memory of one site.
pub struct MemoryManager {
    shards: Vec<ShardSlot>,
    counter: AtomicU64,
    /// Previous incremental cut per program: one optional entry per
    /// shard (`None` = that shard was never captured). Only the
    /// checkpoint path locks this — workers never touch it.
    cuts: Mutex<HashMap<ProgramId, Vec<Option<ShardCut>>>>,
}

impl Default for MemoryManager {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryManager {
    /// Fresh, empty memory with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(crate::config::SiteConfig::default().mem_shards)
    }

    /// Fresh, empty memory split into `n` address-hashed shards (1
    /// reproduces the old single-mutex store).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        MemoryManager {
            shards: (0..n)
                .map(|_| ShardSlot {
                    state: Mutex::new(Shard::default()),
                    contention: AtomicU64::new(0),
                })
                .collect(),
            counter: AtomicU64::new(1),
            cuts: Mutex::new(HashMap::new()),
        }
    }

    /// Number of shards (diagnostics/benches).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_index(&self, addr: GlobalAddress) -> usize {
        // Fibonacci-hash the address; home in the high bits so objects
        // homed on different sites spread even with clashing locals.
        let h = (addr.local ^ ((addr.home.0 as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len()
    }

    /// Lock the shard holding all state for `addr`.
    fn shard(&self, addr: GlobalAddress) -> MutexGuard<'_, Shard> {
        self.shards[self.shard_index(addr)].lock()
    }

    /// Allocate a fresh global address homed on this site.
    pub fn fresh_address(&self, site: &SiteInner) -> GlobalAddress {
        GlobalAddress::new(site.my_id(), self.counter.fetch_add(1, Ordering::Relaxed))
    }

    /// An address homed on this site arrived from outside (checkpoint
    /// restore, relocation): make sure we never hand its local id out
    /// again.
    fn note_foreign_address(&self, site: &SiteInner, addr: GlobalAddress) {
        if addr.home == site.my_id() {
            self.counter.fetch_max(addr.local + 1, Ordering::Relaxed);
        }
    }

    /// Clone (do not drain) this site's share of a program's state: the
    /// owned objects and incomplete frames. Queued executable frames are
    /// contributed by the scheduling manager. Replicas are cache, not
    /// state — they are never snapshotted.
    pub fn snapshot_program(&self, program: ProgramId) -> (Vec<WireMemObject>, Vec<Microframe>) {
        let mut objects = Vec::new();
        let mut frames = Vec::new();
        for slot in &self.shards {
            let st = slot.lock();
            objects.extend(st.objects.iter().filter(|(_, o)| o.program == program).map(
                |(addr, o)| WireMemObject {
                    addr: *addr,
                    program: o.program,
                    data: o.data.clone(),
                    version: o.version,
                },
            ));
            frames.extend(
                st.frames
                    .values()
                    .filter(|f| f.program() == program)
                    .cloned(),
            );
        }
        (objects, frames)
    }

    /// Incremental, non-blocking checkpoint cut (wire v8): capture this
    /// site's share of a program's state as per-shard consistent cuts.
    /// Dirty shards (mutated since the last cut, or never cut) are
    /// re-captured under their own shard lock — held only for the copy
    /// of that one shard's entries, never globally — and clean shards
    /// are answered from the previous cut without blocking anyone. The
    /// first cut of a program captures every shard (full cut).
    ///
    /// Consistency: each shard's contribution is internally consistent
    /// (cut under its lock), but different shards are cut at slightly
    /// different instants and the execution engine keeps running — a
    /// restore from an incremental cut may re-execute frames that were
    /// in flight at cut time (at-least-once from the cut; duplicate
    /// results are rejected by the slot-fill check). The stop-the-world
    /// `SnapshotCollect` path remains for fully quiesced cuts.
    pub fn snapshot_program_incremental(&self, program: ProgramId) -> IncrementalCut {
        let mut cuts = self.cuts.lock();
        let cache = cuts
            .entry(program)
            .or_insert_with(|| vec![None; self.shards.len()]);
        let mut out = IncrementalCut {
            objects: Vec::new(),
            frames: Vec::new(),
            shards_captured: 0,
            shards_reused: 0,
            max_block: std::time::Duration::ZERO,
        };
        for (i, slot) in self.shards.iter().enumerate() {
            let held = Instant::now();
            let mut st = slot.lock();
            let dirty = st.dirty.remove(&program);
            if dirty || cache[i].is_none() {
                let cut = ShardCut {
                    objects: st
                        .objects
                        .iter()
                        .filter(|(_, o)| o.program == program)
                        .map(|(addr, o)| WireMemObject {
                            addr: *addr,
                            program: o.program,
                            data: o.data.clone(),
                            version: o.version,
                        })
                        .collect(),
                    frames: st
                        .frames
                        .values()
                        .filter(|f| f.program() == program)
                        .map(|f| f.to_wire())
                        .collect(),
                };
                drop(st);
                out.max_block = out.max_block.max(held.elapsed());
                cache[i] = Some(cut);
                out.shards_captured += 1;
            } else {
                drop(st);
                out.max_block = out.max_block.max(held.elapsed());
                out.shards_reused += 1;
            }
        }
        for cut in cache.iter().flatten() {
            out.objects.extend(cut.objects.iter().cloned());
            out.frames.extend(cut.frames.iter().cloned());
        }
        out
    }

    /// Allocate a global object with initial contents.
    pub fn alloc(&self, site: &SiteInner, program: ProgramId, data: Value) -> GlobalAddress {
        let addr = self.fresh_address(site);
        {
            let mut st = self.shard(addr);
            st.objects.insert(
                addr,
                MemObject {
                    program,
                    data: data.clone(),
                    version: 1,
                },
            );
            st.dirty.insert(program);
            st.directory.insert(addr, site.my_id());
        }
        backup::mirror_object(site, addr, program, data, 1);
        addr
    }

    /// Register a freshly created microframe (allocation, paper §3.2:
    /// "every microframe should be allocated as soon as possible, because
    /// its global address is known not before its allocation").
    pub fn create_frame(&self, site: &SiteInner, frame: Microframe) {
        site.emit(TraceEvent::FrameCreated {
            site: site.my_id(),
            frame: frame.id,
            thread: frame.thread,
            slots: frame.slots.len(),
        });
        backup::mirror_frame(site, &frame);
        let executable = frame.is_executable();
        {
            let mut st = self.shard(frame.id);
            st.directory.insert(frame.id, site.my_id());
            if !executable {
                st.dirty.insert(frame.program());
                st.frames.insert(frame.id, frame.clone());
            }
        }
        if executable {
            self.promote(site, frame);
        }
    }

    /// Adopt a frame that migrated here (help reply, relocation,
    /// recovery). Updates the homesite directory.
    pub fn adopt_frame(&self, site: &SiteInner, frame: Microframe) {
        self.note_foreign_address(site, frame.id);
        backup::mirror_frame(site, &frame);
        let me = site.my_id();
        let home = self.resolve_home(site, frame.id.home);
        let executable = frame.is_executable();
        {
            let mut st = self.shard(frame.id);
            st.hints.remove(&frame.id);
            if home == me {
                st.directory.insert(frame.id, me);
            }
            if !executable {
                st.dirty.insert(frame.program());
                st.frames.insert(frame.id, frame.clone());
            }
        }
        if home != me {
            let _ = site.send_payload(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                site.next_seq(),
                Payload::OwnerUpdate {
                    addr: frame.id,
                    owner: me,
                },
            );
        }
        if executable {
            self.promote(site, frame);
        }
    }

    /// Remove an owned frame (it is about to migrate away via a help
    /// reply). Caller is responsible for the directory update.
    pub fn take_frame(&self, id: GlobalAddress) -> Option<Microframe> {
        let mut st = self.shard(id);
        let taken = st.frames.remove(&id);
        if let Some(f) = &taken {
            st.dirty.insert(f.program());
        }
        taken
    }

    /// Adopt a memory object that migrated here by relocation or crash
    /// recovery; updates the (possibly inherited) directory. The object
    /// supersedes any cached replica of itself; a newer local version
    /// (e.g. a stale backup revival racing a live migration) survives.
    pub fn adopt_object(&self, site: &SiteInner, obj: sdvm_wire::WireMemObject) {
        self.note_foreign_address(site, obj.addr);
        let me = site.my_id();
        let home = self.resolve_home(site, obj.addr.home);
        let version = {
            let mut st = self.shard(obj.addr);
            let newer_here = st
                .objects
                .get(&obj.addr)
                .is_some_and(|e| e.version > obj.version);
            let version = if newer_here {
                st.objects.get(&obj.addr).map(|e| e.version).unwrap_or(1)
            } else {
                st.objects.insert(
                    obj.addr,
                    MemObject {
                        program: obj.program,
                        data: obj.data.clone(),
                        version: obj.version,
                    },
                );
                st.dirty.insert(obj.program);
                obj.version
            };
            st.replicas.remove(&obj.addr);
            st.hints.remove(&obj.addr);
            if home == me {
                st.directory.insert(obj.addr, me);
            }
            version
        };
        if home != me {
            let _ = site.send_payload(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                site.next_seq(),
                Payload::OwnerUpdate {
                    addr: obj.addr,
                    owner: me,
                },
            );
        }
        backup::mirror_object(site, obj.addr, obj.program, obj.data, version);
    }

    /// Called after a frame was executed: free its directory entry and
    /// its backup ("the microframe is consumed and thus vanishes").
    pub fn consume_frame(&self, site: &SiteInner, id: GlobalAddress) {
        let me = site.my_id();
        let home = self.resolve_home(site, id.home);
        if home == me {
            self.shard(id).directory.remove(&id);
        } else {
            let _ = site.send_payload(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                site.next_seq(),
                Payload::OwnerUpdate {
                    addr: id,
                    owner: SiteId::NONE,
                },
            );
        }
        backup::mirror_consumed(site, id);
    }

    fn promote(&self, site: &SiteInner, frame: Microframe) {
        site.emit(TraceEvent::FrameExecutable {
            site: site.my_id(),
            frame: frame.id,
        });
        // Under a replication policy, the frame's home site dispatches
        // tagged replicas instead of enqueueing — `intercept` keeps the
        // frame in escrow and returns `None`.
        let Some(frame) = site.replication.intercept(site, frame) else {
            return;
        };
        site.scheduling.enqueue_executable(site, frame);
    }

    /// Resolve the (possibly inherited) homesite of an address: follows
    /// the succession chain past signed-off/crashed sites.
    pub fn resolve_home(&self, site: &SiteInner, home: SiteId) -> SiteId {
        site.cluster.resolve_succession(home)
    }

    /// A site crashed: its homesite directory died with it. Re-register
    /// everything *we* own that was homed on the dead site with the
    /// directory successor, so late results and reads keep resolving.
    /// (State owned by the dead site itself is rebuilt by backup
    /// revival; orderly sign-off hands the directory over explicitly.)
    ///
    /// Replica hygiene: every cached replica is dropped — its owner may
    /// have died with our copyset entry, so invalidations can no longer
    /// be trusted to arrive — and the dead site is scrubbed from local
    /// copysets and forwarding hints.
    pub fn reregister_after_crash(&self, site: &SiteInner, dead: SiteId, successor: SiteId) {
        let me = site.my_id();
        let mut owned: Vec<GlobalAddress> = Vec::new();
        for slot in &self.shards {
            let mut st = slot.lock();
            owned.extend(
                st.frames
                    .keys()
                    .chain(st.objects.keys())
                    .copied()
                    .filter(|a| a.home == dead),
            );
            st.replicas.clear();
            for members in st.copysets.values_mut() {
                members.retain(|m| *m != dead);
            }
            st.hints.retain(|_, owner| *owner != dead);
        }
        for addr in owned {
            if successor == me {
                self.shard(addr).directory.insert(addr, me);
            } else {
                let _ = site.send_payload(
                    successor,
                    ManagerId::Memory,
                    ManagerId::Memory,
                    site.next_seq(),
                    Payload::OwnerUpdate { addr, owner: me },
                );
            }
        }
    }

    /// Apply a result to a frame owned here. `Ok(true)` if applied,
    /// `Ok(false)` if the frame is not local.
    pub fn apply_local(
        &self,
        site: &SiteInner,
        target: GlobalAddress,
        slot: u32,
        value: Value,
    ) -> SdvmResult<bool> {
        let mut st = self.shard(target);
        let Some(frame) = st.frames.get_mut(&target) else {
            return Ok(false);
        };
        let fired = frame.apply(slot, value)?;
        let missing = frame.missing();
        let program = frame.program();
        let fired_frame = if fired {
            st.frames.remove(&target)
        } else {
            None
        };
        st.dirty.insert(program);
        drop(st);
        site.emit(TraceEvent::ParamApplied {
            site: site.my_id(),
            frame: target,
            slot,
            missing,
        });
        if let Some(f) = fired_frame {
            self.promote(site, f);
        }
        Ok(true)
    }

    /// Apply a result wherever the frame currently lives: locally, or by
    /// forwarding an `ApplyResult` to the current owner (with directory
    /// resolution and migration chasing, bounded by `ttl`). May block on
    /// remote lookups — call from worker/helper threads only.
    ///
    /// Retries around site failures: if the homesite times out (it may
    /// have just crashed) or reports the frame unknown (its directory may
    /// still be rebuilding after a crash), the resolution is retried; by
    /// then crash detection has rerouted the succession and the
    /// re-registered directory answers. A frame that is genuinely
    /// consumed stays unknown through every retry and the (duplicate)
    /// result is dropped idempotently.
    pub fn apply_or_forward(
        &self,
        site: &SiteInner,
        target: GlobalAddress,
        slot: u32,
        value: Value,
        ttl: u8,
    ) -> SdvmResult<()> {
        let attempts = if site.config.crash_tolerance { 5 } else { 1 };
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                // Growing backoff: long enough for crash detection to
                // reroute succession and for backup revival to finish.
                std::thread::sleep(std::time::Duration::from_millis(100 << attempt.min(4)));
            }
            match self.try_apply_or_forward(site, target, slot, value.clone(), ttl) {
                Ok(true) => return Ok(()),
                Ok(false) => {
                    // Unknown at the directory: consumed, or mid-crash
                    // rebuild. Retry before concluding "consumed".
                    last_err = None;
                    continue;
                }
                Err(
                    e @ (SdvmError::Timeout(_)
                    | SdvmError::UnknownSite(_)
                    | SdvmError::Transport(_)),
                ) => {
                    // The peer may have just crashed: retry after the
                    // cluster has had time to detect and recover.
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        if crate::config::debug_enabled() {
            eprintln!(
                "[dbg site{}] apply_or_forward gave up: target={target} slot={slot} err={last_err:?}",
                site.my_id().0
            );
        }
        match last_err {
            Some(e) => Err(e),
            None => Ok(()), // consistently unknown: consumed duplicate
        }
    }

    /// One resolution attempt. `Ok(true)` = applied/forwarded,
    /// `Ok(false)` = frame unknown at its directory.
    fn try_apply_or_forward(
        &self,
        site: &SiteInner,
        target: GlobalAddress,
        slot: u32,
        value: Value,
        ttl: u8,
    ) -> SdvmResult<bool> {
        if self.apply_local(site, target, slot, value.clone())? {
            backup::mirror_apply(site, site.my_id(), target, slot, value);
            return Ok(true);
        }
        if ttl == 0 {
            return Err(SdvmError::ObjectMissing(target));
        }
        let me = site.my_id();
        let home = self.resolve_home(site, target.home);
        let owner = if home == me {
            match self.shard(target).directory.get(&target) {
                Some(&o) => o,
                None => return Ok(false),
            }
        } else {
            let reply = site.request(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                Payload::OwnerQuery { addr: target },
                site.config.request_timeout,
            )?;
            match reply.payload {
                Payload::OwnerReply { owner: Some(o), .. } => o,
                Payload::OwnerReply { owner: None, .. } => return Ok(false),
                other => {
                    return Err(SdvmError::InvalidState(format!(
                        "unexpected owner reply {}",
                        other.name()
                    )))
                }
            }
        };
        if owner == me {
            // Directory says we own it but it is not in `frames`: it sits
            // in the scheduling queue already executable, or was consumed
            // concurrently. Either way this result is stale — drop.
            if crate::config::debug_enabled() {
                eprintln!(
                    "[dbg site{}] drop owner==me target={target} slot={slot}",
                    site.my_id().0
                );
            }
            return Ok(true);
        }
        if !owner.is_valid() {
            if crate::config::debug_enabled() {
                eprintln!(
                    "[dbg site{}] drop tombstone target={target} slot={slot}",
                    site.my_id().0
                );
            }
            return Ok(true); // consumed tombstone
        }
        backup::mirror_apply(site, owner, target, slot, value.clone());
        // The forwarded result belongs to the target frame's career:
        // stamp its trace context so the owner's inbound hop stitches to
        // the same trace.
        site.send_payload_traced(
            owner,
            ManagerId::Memory,
            ManagerId::Memory,
            site.next_seq(),
            Payload::ApplyResult {
                target,
                slot,
                value,
            },
            TraceContext {
                origin: target.home,
                id: trace_id_of(target),
            },
        )?;
        Ok(true)
    }

    /// Read a global object. With `migrate`, ownership moves here
    /// (attraction); otherwise a snapshot copy is returned — served from
    /// a cached replica when one is fresh, else fetched (and cached, with
    /// this site entered into the owner's copyset). Blocks on remote
    /// objects.
    pub fn read(&self, site: &SiteInner, addr: GlobalAddress, migrate: bool) -> SdvmResult<Value> {
        let replica_mode = !migrate && site.config.replica_reads;
        {
            let st = self.shard(addr);
            if let Some(obj) = st.objects.get(&addr) {
                return Ok(obj.data.clone());
            }
            if replica_mode {
                if let Some(r) = st.replicas.get(&addr) {
                    if r.fetched.elapsed() <= site.config.replica_ttl {
                        site.metrics.mem_replica_hits.inc();
                        return Ok(r.data.clone());
                    }
                }
            }
        }
        if replica_mode {
            site.metrics.mem_replica_misses.inc();
        }
        let me = site.my_id();
        let mut next_owner: Option<SiteId> = None;
        let mut hops: u64 = 0;
        for attempt in 0..CHASE_HOPS {
            let owner = match next_owner.take() {
                Some(o) => o,
                None => {
                    if attempt > 0 {
                        // No forwarding hint: the directory update of an
                        // in-flight migration races us — back off briefly
                        // before asking the directory again.
                        std::thread::sleep(std::time::Duration::from_millis(2 << attempt.min(5)));
                    }
                    self.lookup_owner(site, addr)?
                }
            };
            if owner == me {
                // Migrated here concurrently, or the directory update of
                // an outbound migration is still in flight.
                if let Some(obj) = self.shard(addr).objects.get(&addr) {
                    return Ok(obj.data.clone());
                }
                continue;
            }
            hops += 1;
            let reply = site.request(
                owner,
                ManagerId::Memory,
                ManagerId::Memory,
                Payload::MemRead {
                    addr,
                    migrate,
                    replica: replica_mode,
                },
                site.config.request_timeout,
            )?;
            match reply.payload {
                Payload::MemValue {
                    obj,
                    migrated,
                    replica,
                } => {
                    site.metrics.mem_chase_hops.observe(hops);
                    if migrated {
                        let program = obj.program;
                        let data = obj.data.clone();
                        let version = obj.version;
                        let home = self.resolve_home(site, addr.home);
                        {
                            // One critical section: the object and (when
                            // we are its directory) its owner entry land
                            // together, so no lookup can observe
                            // owner==me with the object still absent.
                            let mut st = self.shard(addr);
                            st.objects.insert(
                                addr,
                                MemObject {
                                    program,
                                    data: data.clone(),
                                    version,
                                },
                            );
                            st.dirty.insert(program);
                            st.replicas.remove(&addr);
                            st.hints.remove(&addr);
                            if home == me {
                                st.directory.insert(addr, me);
                            }
                        }
                        if home != me {
                            let _ = site.send_payload(
                                home,
                                ManagerId::Memory,
                                ManagerId::Memory,
                                site.next_seq(),
                                Payload::OwnerUpdate { addr, owner: me },
                            );
                        }
                        backup::mirror_object(site, addr, program, data.clone(), version);
                        return Ok(data);
                    }
                    if replica {
                        let mut st = self.shard(addr);
                        // The owner entered us into its copyset; cache
                        // the copy unless we became the owner meanwhile.
                        if !st.objects.contains_key(&addr) {
                            st.replicas.insert(
                                addr,
                                Replica {
                                    program: obj.program,
                                    data: obj.data.clone(),
                                    version: obj.version,
                                    fetched: Instant::now(),
                                },
                            );
                        }
                    }
                    return Ok(obj.data);
                }
                Payload::MemMissing { hint, .. } => {
                    // Jump straight to the hinted owner (no backoff);
                    // without a hint, fall back to the directory.
                    next_owner = hint.filter(|h| h.is_valid() && *h != owner);
                    continue;
                }
                other => {
                    return Err(SdvmError::InvalidState(format!(
                        "unexpected read reply {}",
                        other.name()
                    )))
                }
            }
        }
        Err(SdvmError::ObjectMissing(addr))
    }

    /// Write a global object in place at its current owner. Blocks on
    /// remote objects.
    pub fn write(&self, site: &SiteInner, addr: GlobalAddress, value: Value) -> SdvmResult<()> {
        if let Some((program, version, copyset)) = self.write_local(addr, &value) {
            self.send_invalidations(site, addr, version, copyset);
            backup::mirror_object(site, addr, program, value, version);
            return Ok(());
        }
        let me = site.my_id();
        let mut next_owner: Option<SiteId> = None;
        let mut hops: u64 = 0;
        for attempt in 0..CHASE_HOPS {
            let owner = match next_owner.take() {
                Some(o) => o,
                None => {
                    if attempt > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(2 << attempt.min(5)));
                    }
                    self.lookup_owner(site, addr)?
                }
            };
            if owner == me {
                // The directory says it's ours but it wasn't in `objects`
                // above: an inbound migration or its directory update is
                // still settling — re-check locally.
                if let Some((program, version, copyset)) = self.write_local(addr, &value) {
                    self.send_invalidations(site, addr, version, copyset);
                    backup::mirror_object(site, addr, program, value, version);
                    return Ok(());
                }
                continue;
            }
            hops += 1;
            let reply = site.request(
                owner,
                ManagerId::Memory,
                ManagerId::Memory,
                Payload::MemWrite {
                    addr,
                    value: value.clone(),
                },
                site.config.request_timeout,
            )?;
            match reply.payload {
                Payload::MemWriteAck { .. } => {
                    site.metrics.mem_chase_hops.observe(hops);
                    // Our own cached replica (if any) is stale now; the
                    // owner's invalidation also races this, so drop
                    // eagerly for read-your-writes freshness.
                    self.shard(addr).replicas.remove(&addr);
                    return Ok(());
                }
                Payload::MemMissing { hint, .. } => {
                    next_owner = hint.filter(|h| h.is_valid() && *h != owner);
                    continue;
                }
                other => {
                    return Err(SdvmError::InvalidState(format!(
                        "unexpected write reply {}",
                        other.name()
                    )))
                }
            }
        }
        Err(SdvmError::ObjectMissing(addr))
    }

    /// Write an object owned here: store, bump the version, take the
    /// copyset for invalidation. `None` when the object is not local.
    fn write_local(
        &self,
        addr: GlobalAddress,
        value: &Value,
    ) -> Option<(ProgramId, u64, Vec<SiteId>)> {
        let mut st = self.shard(addr);
        let obj = st.objects.get_mut(&addr)?;
        obj.data = value.clone();
        obj.version += 1;
        let program = obj.program;
        let version = obj.version;
        st.dirty.insert(program);
        let copyset = st.copysets.remove(&addr).unwrap_or_default();
        Some((program, version, copyset))
    }

    /// Notify copyset members their replica is stale. Fire-and-forget:
    /// a lost notice is bounded by the replica TTL lease.
    fn send_invalidations(
        &self,
        site: &SiteInner,
        addr: GlobalAddress,
        version: u64,
        members: Vec<SiteId>,
    ) {
        let me = site.my_id();
        for m in members {
            if m == me || !m.is_valid() {
                continue;
            }
            let _ = site.send_payload(
                m,
                ManagerId::Memory,
                ManagerId::Memory,
                site.next_seq(),
                Payload::ReplicaInvalidate { addr, version },
            );
        }
    }

    fn lookup_owner(&self, site: &SiteInner, addr: GlobalAddress) -> SdvmResult<SiteId> {
        let me = site.my_id();
        let home = self.resolve_home(site, addr.home);
        if home == me {
            return self
                .shard(addr)
                .directory
                .get(&addr)
                .copied()
                .ok_or(SdvmError::ObjectMissing(addr));
        }
        let reply = site.request(
            home,
            ManagerId::Memory,
            ManagerId::Memory,
            Payload::OwnerQuery { addr },
            site.config.request_timeout,
        )?;
        match reply.payload {
            Payload::OwnerReply { owner: Some(o), .. } => Ok(o),
            Payload::OwnerReply { owner: None, .. } => Err(SdvmError::ObjectMissing(addr)),
            other => Err(SdvmError::InvalidState(format!(
                "unexpected owner reply {}",
                other.name()
            ))),
        }
    }

    /// Locality score of granting `frame` to `requester`, used by the
    /// scheduling manager's help-grant policy. Per argument object: an
    /// input owned *here* scores −1 (executing locally avoids a remote
    /// read), an input remote to this site scores +1 (we would fetch it
    /// anyway), plus +1 more when the requester is its homesite or our
    /// directory knows the requester owns it (the frame follows its
    /// data). Ties fall back to the queue policy.
    pub fn help_score(&self, requester: SiteId, frame: &Microframe) -> i32 {
        let mut score = 0i32;
        for value in frame.slots.iter().flatten() {
            let Ok(addr) = value.as_address() else {
                continue;
            };
            let st = self.shard(addr);
            if st.objects.contains_key(&addr) {
                score -= 1;
            } else {
                score += 1;
                let requester_has = addr.home == requester
                    || st.directory.get(&addr) == Some(&requester)
                    || st.hints.get(&addr) == Some(&requester);
                if requester_has {
                    score += 1;
                }
            }
        }
        score
    }

    /// Everything this site owns for relocation at sign-off: objects,
    /// incomplete frames, and the homesite directory entries. Cached
    /// replicas are dropped (not relocated — they are re-fetchable
    /// cache), and outstanding copysets are invalidated so no site keeps
    /// serving a replica whose owner is about to change.
    pub fn drain_for_relocation(
        &self,
        site: &SiteInner,
    ) -> (
        Vec<WireMemObject>,
        Vec<Microframe>,
        Vec<(GlobalAddress, SiteId)>,
    ) {
        let mut objects = Vec::new();
        let mut frames: Vec<Microframe> = Vec::new();
        let mut directory = Vec::new();
        let mut invals: Vec<(GlobalAddress, u64, Vec<SiteId>)> = Vec::new();
        for slot in &self.shards {
            let mut st = slot.lock();
            let copysets: Vec<(GlobalAddress, Vec<SiteId>)> = st.copysets.drain().collect();
            for (addr, members) in copysets {
                let version = st.objects.get(&addr).map(|o| o.version).unwrap_or(0);
                invals.push((addr, version, members));
            }
            objects.extend(st.objects.drain().map(|(addr, o)| WireMemObject {
                addr,
                program: o.program,
                data: o.data,
                version: o.version,
            }));
            frames.extend(st.frames.drain().map(|(_, f)| f));
            directory.extend(st.directory.drain());
            st.replicas.clear();
            st.hints.clear();
        }
        for (addr, version, members) in invals {
            self.send_invalidations(site, addr, version, members);
        }
        (objects, frames, directory)
    }

    /// Snapshot of incomplete frames: (address, microthread, missing,
    /// filled-slot indices). Diagnostic aid for stalled dataflow.
    pub fn incomplete_frames(
        &self,
    ) -> Vec<(GlobalAddress, sdvm_types::MicrothreadId, usize, Vec<u32>)> {
        let mut out = Vec::new();
        for slot in &self.shards {
            out.extend(slot.lock().frames.values().map(|f| {
                let filled = f
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(i, _)| i as u32)
                    .collect();
                (f.id, f.thread, f.missing(), filled)
            }));
        }
        out
    }

    /// Counts for load reports / status.
    pub fn stats(&self) -> MemStats {
        let mut s = MemStats::default();
        for slot in &self.shards {
            let st = slot.lock();
            s.objects += st.objects.len();
            s.frames += st.frames.len();
            s.memory_bytes += st
                .objects
                .values()
                .map(|o| o.data.len() as u64)
                .sum::<u64>();
            s.replicas += st.replicas.len();
            s.shard_contention
                .push(slot.contention.load(Ordering::Relaxed));
        }
        s
    }

    /// Purge everything belonging to a terminated program.
    pub fn purge_program(&self, program: ProgramId) {
        for slot in &self.shards {
            let mut st = slot.lock();
            let dead_objects: Vec<GlobalAddress> = st
                .objects
                .iter()
                .filter(|(_, o)| o.program == program)
                .map(|(a, _)| *a)
                .collect();
            for a in dead_objects {
                st.objects.remove(&a);
                st.copysets.remove(&a);
                st.hints.remove(&a);
            }
            let dead_frames: Vec<GlobalAddress> = st
                .frames
                .iter()
                .filter(|(_, f)| f.program() == program)
                .map(|(a, _)| *a)
                .collect();
            for a in dead_frames {
                st.frames.remove(&a);
                st.directory.remove(&a);
            }
            st.replicas.retain(|_, r| r.program != program);
            st.dirty.remove(&program);
        }
        self.cuts.lock().remove(&program);
    }

    /// Version of the locally cached replica of `addr`, if any
    /// (diagnostics; stale-read assertions in tests).
    pub fn replica_version(&self, addr: GlobalAddress) -> Option<u64> {
        self.shard(addr).replicas.get(&addr).map(|r| r.version)
    }

    /// Version of the locally *owned* copy of `addr`, if any.
    pub fn object_version(&self, addr: GlobalAddress) -> Option<u64> {
        self.shard(addr).objects.get(&addr).map(|o| o.version)
    }

    /// The forwarding hint recorded for `addr`, if any (diagnostics;
    /// restore-purge assertions in tests).
    pub fn recorded_hint(&self, addr: GlobalAddress) -> Option<SiteId> {
        self.shard(addr).hints.get(&addr).copied()
    }

    /// Drop every cached replica of a program's objects, and every
    /// forwarding hint. Called on program (re-)registration — a
    /// checkpoint restore rewinds object state, so copies cut from the
    /// pre-restore timeline must not survive it (a fresh program
    /// trivially has no replicas), and pre-restore migration hints
    /// would steer chasers at owners that no longer hold the restored
    /// objects. Hints carry no program id, so they are cleared
    /// wholesale — they are an optimization, losing them only costs a
    /// directory lookup.
    pub fn purge_replicas(&self, program: ProgramId) {
        for slot in &self.shards {
            let mut st = slot.lock();
            st.replicas.retain(|_, r| r.program != program);
            st.hints.clear();
        }
    }

    /// Record where an object that left this site went, for `MemMissing`
    /// forwarding hints. Bounded: the map is cleared wholesale at
    /// `HINT_CAP` (hints are an optimization, losing them only costs a
    /// directory lookup).
    fn record_hint(st: &mut Shard, addr: GlobalAddress, new_owner: SiteId) {
        if st.hints.len() >= HINT_CAP {
            st.hints.clear();
        }
        st.hints.insert(addr, new_owner);
    }

    /// Handle an incoming memory-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload.clone() {
            Payload::ApplyResult {
                target,
                slot,
                value,
            } => {
                match self.apply_local(site, target, slot, value.clone()) {
                    Ok(true) => {
                        backup::mirror_apply(site, site.my_id(), target, slot, value);
                    }
                    Ok(false) => {
                        // Not here (frame migrated on, or consumed):
                        // resolve and forward off the router thread.
                        site.spawn_task(Task::ForwardApply {
                            target,
                            slot,
                            value,
                            ttl: 4,
                        });
                    }
                    Err(_) => { /* duplicate/stale result: drop */ }
                }
            }
            Payload::MemRead {
                addr,
                migrate,
                replica,
            } => {
                self.on_mem_read(site, &msg, addr, migrate, replica);
            }
            Payload::MemWrite { addr, value } => {
                match self.write_local(addr, &value) {
                    Some((program, version, copyset)) => {
                        site.reply_to(&msg, ManagerId::Memory, Payload::MemWriteAck { addr });
                        self.send_invalidations(site, addr, version, copyset);
                        backup::mirror_object(site, addr, program, value, version);
                    }
                    None => {
                        let hint = self.hint_for(site, addr, msg.src_site);
                        site.reply_to(&msg, ManagerId::Memory, Payload::MemMissing { addr, hint });
                    }
                };
            }
            Payload::ReplicaInvalidate { addr, version } => {
                let dropped = self.shard(addr).replicas.remove(&addr).is_some();
                if dropped {
                    site.metrics.mem_invalidations.inc();
                    site.emit(TraceEvent::ReplicaInvalidated {
                        site: site.my_id(),
                        object: addr,
                        version,
                    });
                }
            }
            Payload::OwnerQuery { addr } => {
                // Any traffic about an address homed here proves that
                // local id is in use (e.g. after a checkpoint restore
                // elsewhere): never allocate it again.
                self.note_foreign_address(site, addr);
                let owner = self.shard(addr).directory.get(&addr).copied();
                site.reply_to(&msg, ManagerId::Memory, Payload::OwnerReply { addr, owner });
            }
            Payload::OwnerUpdate { addr, owner } => {
                self.note_foreign_address(site, addr);
                let mut st = self.shard(addr);
                if owner.is_valid() {
                    st.directory.insert(addr, owner);
                } else {
                    st.directory.remove(&addr);
                }
            }
            Payload::Relocate {
                objects,
                frames,
                directory,
            } => {
                for o in &objects {
                    let mut st = self.shard(o.addr);
                    st.objects.insert(
                        o.addr,
                        MemObject {
                            program: o.program,
                            data: o.data.clone(),
                            version: o.version,
                        },
                    );
                    st.dirty.insert(o.program);
                    st.replicas.remove(&o.addr);
                    st.hints.remove(&o.addr);
                    // Ownership moved here; record it if we will act
                    // as the address's directory too.
                    st.directory.insert(o.addr, site.my_id());
                }
                for (addr, owner) in directory {
                    // Inherited directory entries keep their owner,
                    // except entries pointing at the leaver itself —
                    // those objects are in this very relocation.
                    let mut st = self.shard(addr);
                    if owner == msg.src_site {
                        st.directory.insert(addr, site.my_id());
                    } else {
                        st.directory.insert(addr, owner);
                    }
                }
                // Incomplete frames first: executable ones start running
                // on adoption and their results must find every waiting
                // frame already registered.
                let (incomplete, executable): (Vec<_>, Vec<_>) =
                    frames.into_iter().partition(|f| !f.is_executable());
                for f in incomplete.into_iter().chain(executable) {
                    self.adopt_frame(site, Microframe::from_wire(f));
                }
                site.reply_to(&msg, ManagerId::Memory, Payload::RelocateAck {});
            }
            // A migrated object whose requesting waiter timed out: the
            // old owner already removed it — adopt it here or it is lost.
            Payload::MemValue {
                obj,
                migrated: true,
                ..
            } => {
                self.adopt_object(site, obj);
            }
            Payload::MemValue {
                migrated: false, ..
            } => {}
            Payload::BackupFrame { frame } => {
                site.backup.on_frame(msg.src_site, frame);
            }
            Payload::BackupRelease { frame, owner } => {
                site.backup.on_release(owner, frame);
            }
            Payload::BackupApply {
                target,
                slot,
                value,
            } => {
                // If the frame lives *here* (it was already revived from
                // backup, or migrated to us while the sender still
                // believed the old owner), deliver the result for real —
                // recording it into the (drained) backup bucket would
                // strand it. Duplicate deliveries are rejected by the
                // slot-fill check, so this is idempotent.
                match self.apply_local(site, target, slot, value.clone()) {
                    Ok(true) => {}
                    _ => site.backup.on_apply(msg.src_site, target, slot, value),
                }
            }
            Payload::BackupConsumed { frame } => {
                site.backup.on_consumed(frame);
            }
            Payload::BackupObject { obj } => {
                site.backup.on_object(msg.src_site, obj);
            }
            Payload::RecoverSite { dead } => {
                site.spawn_task(Task::Recover { dead });
            }
            other => {
                site.reply_to(
                    &msg,
                    ManagerId::Memory,
                    Payload::Error {
                        message: format!("memory: unexpected {}", other.name()),
                    },
                );
            }
        }
    }

    /// Serve a `MemRead` request (migrate / replica / plain copy).
    fn on_mem_read(
        &self,
        site: &SiteInner,
        msg: &SdMessage,
        addr: GlobalAddress,
        migrate: bool,
        replica: bool,
    ) {
        let requester = msg.src_site;
        if migrate {
            let (reply, removed, invals) = {
                let mut st = self.shard(addr);
                match st.objects.remove(&addr) {
                    Some(o) => {
                        st.dirty.insert(o.program);
                        // The object is leaving: remember where it went
                        // (forwarding hint) and schedule invalidation of
                        // every outstanding replica — the new owner's
                        // future writes won't know this copyset.
                        Self::record_hint(&mut st, addr, requester);
                        let copyset = st.copysets.remove(&addr).unwrap_or_default();
                        let version = o.version;
                        (
                            Payload::MemValue {
                                obj: WireMemObject {
                                    addr,
                                    program: o.program,
                                    data: o.data.clone(),
                                    version,
                                },
                                migrated: true,
                                replica: false,
                            },
                            Some(o),
                            Some((version, copyset)),
                        )
                    }
                    None => {
                        let hint = st.hints.get(&addr).copied().filter(|h| *h != requester);
                        (Payload::MemMissing { addr, hint }, None, None)
                    }
                }
            };
            if let Some((version, copyset)) = invals {
                self.send_invalidations(site, addr, version, copyset);
            }
            let sent = {
                let r = msg.reply(site.next_seq(), ManagerId::Memory, reply);
                site.send_msg(r)
            };
            if sent.is_err() {
                if let Some(o) = removed {
                    // The requester became unreachable between request
                    // and reply: the migrating object must not vanish
                    // from the cluster — take it back.
                    let mut st = self.shard(addr);
                    st.dirty.insert(o.program);
                    st.objects.insert(addr, o);
                    st.hints.remove(&addr);
                }
            }
            return;
        }
        let reply = {
            let mut st = self.shard(addr);
            match st.objects.get(&addr) {
                Some(o) => {
                    let obj = WireMemObject {
                        addr,
                        program: o.program,
                        data: o.data.clone(),
                        version: o.version,
                    };
                    let grant_replica = replica && requester != site.my_id();
                    if grant_replica {
                        let members = st.copysets.entry(addr).or_default();
                        if !members.contains(&requester) {
                            members.push(requester);
                        }
                    }
                    Payload::MemValue {
                        obj,
                        migrated: false,
                        replica: grant_replica,
                    }
                }
                None => {
                    let hint = st.hints.get(&addr).copied().filter(|h| *h != requester);
                    Payload::MemMissing { addr, hint }
                }
            }
        };
        site.reply_to(msg, ManagerId::Memory, reply);
    }

    /// Last-known-owner hint for an address not owned here: a recorded
    /// migration hint, or (when this site is the directory) the current
    /// directory entry.
    fn hint_for(&self, site: &SiteInner, addr: GlobalAddress, requester: SiteId) -> Option<SiteId> {
        let me = site.my_id();
        let is_directory = self.resolve_home(site, addr.home) == me;
        let st = self.shard(addr);
        st.hints
            .get(&addr)
            .copied()
            .or_else(|| {
                if is_directory {
                    st.directory.get(&addr).copied()
                } else {
                    None
                }
            })
            .filter(|h| h.is_valid() && *h != requester && *h != me)
    }
}

/// Helper-thread entry for forwarding a result whose frame is not local
/// (migration chasing; see [`MemoryManager::apply_or_forward`]).
pub(crate) fn forward_apply(
    site: &SiteInner,
    target: GlobalAddress,
    slot: u32,
    value: Value,
    ttl: u8,
) {
    let _ = site.memory.apply_or_forward(site, target, slot, value, ttl);
}
