//! The attraction memory (paper §4): the local part of the global
//! memory, a COMA-style owner/directory protocol.
//!
//! Every global object (and every microframe, which is a special kind of
//! global object) has a *homesite* encoded in its address. The homesite
//! keeps the directory entry tracking the object's current owner; the
//! object itself migrates ("is attracted") to the sites that use it.
//! Results applied to waiting microframes go through
//! [`MemoryManager::apply_or_forward`]; when the last missing parameter arrives the
//! frame becomes executable and is handed to the scheduling manager —
//! exactly Fig. 4's execution cycle.

use crate::frame::Microframe;
use crate::managers::backup;
use crate::site::{SiteInner, Task};
use crate::telemetry::trace_id_of;
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use sdvm_types::{GlobalAddress, ManagerId, ProgramId, SdvmError, SdvmResult, SiteId, Value};
use sdvm_wire::{Payload, SdMessage, TraceContext, WireMemObject};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A plain global memory object.
#[derive(Clone, Debug, PartialEq)]
pub struct MemObject {
    /// Owning program (objects are purged with their program).
    pub program: ProgramId,
    /// Contents.
    pub data: Value,
}

#[derive(Default)]
struct MemState {
    /// Objects currently owned by this site (homed here or migrated in).
    objects: HashMap<GlobalAddress, MemObject>,
    /// Incomplete microframes owned by this site.
    frames: HashMap<GlobalAddress, Microframe>,
    /// Homesite directory: current owner of every *live* object/frame
    /// homed here (or whose directory this site inherited). An absent
    /// entry for a locally-homed address means consumed/freed.
    directory: HashMap<GlobalAddress, SiteId>,
}

/// The attraction memory of one site.
pub struct MemoryManager {
    state: Mutex<MemState>,
    counter: AtomicU64,
}

impl Default for MemoryManager {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryManager {
    /// Fresh, empty memory.
    pub fn new() -> Self {
        MemoryManager {
            state: Mutex::new(MemState::default()),
            counter: AtomicU64::new(1),
        }
    }

    /// Allocate a fresh global address homed on this site.
    pub fn fresh_address(&self, site: &SiteInner) -> GlobalAddress {
        GlobalAddress::new(site.my_id(), self.counter.fetch_add(1, Ordering::Relaxed))
    }

    /// An address homed on this site arrived from outside (checkpoint
    /// restore, relocation): make sure we never hand its local id out
    /// again.
    fn note_foreign_address(&self, site: &SiteInner, addr: GlobalAddress) {
        if addr.home == site.my_id() {
            self.counter.fetch_max(addr.local + 1, Ordering::Relaxed);
        }
    }

    /// Clone (do not drain) this site's share of a program's state: the
    /// owned objects and incomplete frames. Queued executable frames are
    /// contributed by the scheduling manager.
    pub fn snapshot_program(&self, program: ProgramId) -> (Vec<WireMemObject>, Vec<Microframe>) {
        let st = self.state.lock();
        let objects = st
            .objects
            .iter()
            .filter(|(_, o)| o.program == program)
            .map(|(addr, o)| WireMemObject {
                addr: *addr,
                program: o.program,
                data: o.data.clone(),
            })
            .collect();
        let frames = st
            .frames
            .values()
            .filter(|f| f.program() == program)
            .cloned()
            .collect();
        (objects, frames)
    }

    /// Allocate a global object with initial contents.
    pub fn alloc(&self, site: &SiteInner, program: ProgramId, data: Value) -> GlobalAddress {
        let addr = self.fresh_address(site);
        {
            let mut st = self.state.lock();
            st.objects.insert(
                addr,
                MemObject {
                    program,
                    data: data.clone(),
                },
            );
            st.directory.insert(addr, site.my_id());
        }
        backup::mirror_object(site, addr, program, data);
        addr
    }

    /// Register a freshly created microframe (allocation, paper §3.2:
    /// "every microframe should be allocated as soon as possible, because
    /// its global address is known not before its allocation").
    pub fn create_frame(&self, site: &SiteInner, frame: Microframe) {
        site.emit(TraceEvent::FrameCreated {
            site: site.my_id(),
            frame: frame.id,
            thread: frame.thread,
            slots: frame.slots.len(),
        });
        backup::mirror_frame(site, &frame);
        let executable = frame.is_executable();
        {
            let mut st = self.state.lock();
            st.directory.insert(frame.id, site.my_id());
            if !executable {
                st.frames.insert(frame.id, frame.clone());
            }
        }
        if executable {
            self.promote(site, frame);
        }
    }

    /// Adopt a frame that migrated here (help reply, relocation,
    /// recovery). Updates the homesite directory.
    pub fn adopt_frame(&self, site: &SiteInner, frame: Microframe) {
        self.note_foreign_address(site, frame.id);
        backup::mirror_frame(site, &frame);
        let me = site.my_id();
        let home = self.resolve_home(site, frame.id.home);
        let executable = frame.is_executable();
        {
            let mut st = self.state.lock();
            if home == me {
                st.directory.insert(frame.id, me);
            }
            if !executable {
                st.frames.insert(frame.id, frame.clone());
            }
        }
        if home != me {
            let _ = site.send_payload(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                site.next_seq(),
                Payload::OwnerUpdate {
                    addr: frame.id,
                    owner: me,
                },
            );
        }
        if executable {
            self.promote(site, frame);
        }
    }

    /// Remove an owned frame (it is about to migrate away via a help
    /// reply). Caller is responsible for the directory update.
    pub fn take_frame(&self, id: GlobalAddress) -> Option<Microframe> {
        self.state.lock().frames.remove(&id)
    }

    /// Adopt a memory object that migrated here by relocation or crash
    /// recovery; updates the (possibly inherited) directory.
    pub fn adopt_object(&self, site: &SiteInner, obj: sdvm_wire::WireMemObject) {
        self.note_foreign_address(site, obj.addr);
        let me = site.my_id();
        let home = self.resolve_home(site, obj.addr.home);
        {
            let mut st = self.state.lock();
            st.objects.insert(
                obj.addr,
                MemObject {
                    program: obj.program,
                    data: obj.data.clone(),
                },
            );
            if home == me {
                st.directory.insert(obj.addr, me);
            }
        }
        if home != me {
            let _ = site.send_payload(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                site.next_seq(),
                Payload::OwnerUpdate {
                    addr: obj.addr,
                    owner: me,
                },
            );
        }
        backup::mirror_object(site, obj.addr, obj.program, obj.data);
    }

    /// Called after a frame was executed: free its directory entry and
    /// its backup ("the microframe is consumed and thus vanishes").
    pub fn consume_frame(&self, site: &SiteInner, id: GlobalAddress) {
        let me = site.my_id();
        let home = self.resolve_home(site, id.home);
        if home == me {
            self.state.lock().directory.remove(&id);
        } else {
            let _ = site.send_payload(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                site.next_seq(),
                Payload::OwnerUpdate {
                    addr: id,
                    owner: SiteId::NONE,
                },
            );
        }
        backup::mirror_consumed(site, id);
    }

    fn promote(&self, site: &SiteInner, frame: Microframe) {
        site.emit(TraceEvent::FrameExecutable {
            site: site.my_id(),
            frame: frame.id,
        });
        site.scheduling.enqueue_executable(site, frame);
    }

    /// Resolve the (possibly inherited) homesite of an address: follows
    /// the succession chain past signed-off/crashed sites.
    pub fn resolve_home(&self, site: &SiteInner, home: SiteId) -> SiteId {
        site.cluster.resolve_succession(home)
    }

    /// A site crashed: its homesite directory died with it. Re-register
    /// everything *we* own that was homed on the dead site with the
    /// directory successor, so late results and reads keep resolving.
    /// (State owned by the dead site itself is rebuilt by backup
    /// revival; orderly sign-off hands the directory over explicitly.)
    pub fn reregister_after_crash(&self, site: &SiteInner, dead: SiteId, successor: SiteId) {
        let me = site.my_id();
        let owned: Vec<GlobalAddress> = {
            let st = self.state.lock();
            st.frames
                .keys()
                .chain(st.objects.keys())
                .copied()
                .filter(|a| a.home == dead)
                .collect()
        };
        for addr in owned {
            if successor == me {
                self.state.lock().directory.insert(addr, me);
            } else {
                let _ = site.send_payload(
                    successor,
                    ManagerId::Memory,
                    ManagerId::Memory,
                    site.next_seq(),
                    Payload::OwnerUpdate { addr, owner: me },
                );
            }
        }
    }

    /// Apply a result to a frame owned here. `Ok(true)` if applied,
    /// `Ok(false)` if the frame is not local.
    pub fn apply_local(
        &self,
        site: &SiteInner,
        target: GlobalAddress,
        slot: u32,
        value: Value,
    ) -> SdvmResult<bool> {
        let mut st = self.state.lock();
        let Some(frame) = st.frames.get_mut(&target) else {
            return Ok(false);
        };
        let fired = frame.apply(slot, value)?;
        let missing = frame.missing();
        let fired_frame = if fired {
            st.frames.remove(&target)
        } else {
            None
        };
        drop(st);
        site.emit(TraceEvent::ParamApplied {
            site: site.my_id(),
            frame: target,
            slot,
            missing,
        });
        if let Some(f) = fired_frame {
            self.promote(site, f);
        }
        Ok(true)
    }

    /// Apply a result wherever the frame currently lives: locally, or by
    /// forwarding an `ApplyResult` to the current owner (with directory
    /// resolution and migration chasing, bounded by `ttl`). May block on
    /// remote lookups — call from worker/helper threads only.
    ///
    /// Retries around site failures: if the homesite times out (it may
    /// have just crashed) or reports the frame unknown (its directory may
    /// still be rebuilding after a crash), the resolution is retried; by
    /// then crash detection has rerouted the succession and the
    /// re-registered directory answers. A frame that is genuinely
    /// consumed stays unknown through every retry and the (duplicate)
    /// result is dropped idempotently.
    pub fn apply_or_forward(
        &self,
        site: &SiteInner,
        target: GlobalAddress,
        slot: u32,
        value: Value,
        ttl: u8,
    ) -> SdvmResult<()> {
        let attempts = if site.config.crash_tolerance { 5 } else { 1 };
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                // Growing backoff: long enough for crash detection to
                // reroute succession and for backup revival to finish.
                std::thread::sleep(std::time::Duration::from_millis(100 << attempt.min(4)));
            }
            match self.try_apply_or_forward(site, target, slot, value.clone(), ttl) {
                Ok(true) => return Ok(()),
                Ok(false) => {
                    // Unknown at the directory: consumed, or mid-crash
                    // rebuild. Retry before concluding "consumed".
                    last_err = None;
                    continue;
                }
                Err(
                    e @ (SdvmError::Timeout(_)
                    | SdvmError::UnknownSite(_)
                    | SdvmError::Transport(_)),
                ) => {
                    // The peer may have just crashed: retry after the
                    // cluster has had time to detect and recover.
                    last_err = Some(e);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        if crate::config::debug_enabled() {
            eprintln!(
                "[dbg site{}] apply_or_forward gave up: target={target} slot={slot} err={last_err:?}",
                site.my_id().0
            );
        }
        match last_err {
            Some(e) => Err(e),
            None => Ok(()), // consistently unknown: consumed duplicate
        }
    }

    /// One resolution attempt. `Ok(true)` = applied/forwarded,
    /// `Ok(false)` = frame unknown at its directory.
    fn try_apply_or_forward(
        &self,
        site: &SiteInner,
        target: GlobalAddress,
        slot: u32,
        value: Value,
        ttl: u8,
    ) -> SdvmResult<bool> {
        if self.apply_local(site, target, slot, value.clone())? {
            backup::mirror_apply(site, site.my_id(), target, slot, value);
            return Ok(true);
        }
        if ttl == 0 {
            return Err(SdvmError::ObjectMissing(target));
        }
        let me = site.my_id();
        let home = self.resolve_home(site, target.home);
        let owner = if home == me {
            match self.state.lock().directory.get(&target) {
                Some(&o) => o,
                None => return Ok(false),
            }
        } else {
            let reply = site.request(
                home,
                ManagerId::Memory,
                ManagerId::Memory,
                Payload::OwnerQuery { addr: target },
                site.config.request_timeout,
            )?;
            match reply.payload {
                Payload::OwnerReply { owner: Some(o), .. } => o,
                Payload::OwnerReply { owner: None, .. } => return Ok(false),
                other => {
                    return Err(SdvmError::InvalidState(format!(
                        "unexpected owner reply {}",
                        other.name()
                    )))
                }
            }
        };
        if owner == me {
            // Directory says we own it but it is not in `frames`: it sits
            // in the scheduling queue already executable, or was consumed
            // concurrently. Either way this result is stale — drop.
            if crate::config::debug_enabled() {
                eprintln!(
                    "[dbg site{}] drop owner==me target={target} slot={slot}",
                    site.my_id().0
                );
            }
            return Ok(true);
        }
        if !owner.is_valid() {
            if crate::config::debug_enabled() {
                eprintln!(
                    "[dbg site{}] drop tombstone target={target} slot={slot}",
                    site.my_id().0
                );
            }
            return Ok(true); // consumed tombstone
        }
        backup::mirror_apply(site, owner, target, slot, value.clone());
        // The forwarded result belongs to the target frame's career:
        // stamp its trace context so the owner's inbound hop stitches to
        // the same trace.
        site.send_payload_traced(
            owner,
            ManagerId::Memory,
            ManagerId::Memory,
            site.next_seq(),
            Payload::ApplyResult {
                target,
                slot,
                value,
            },
            TraceContext {
                origin: target.home,
                id: trace_id_of(target),
            },
        )?;
        Ok(true)
    }

    /// Read a global object. With `migrate`, ownership moves here
    /// (attraction); otherwise a snapshot copy is returned. Blocks on
    /// remote objects.
    pub fn read(&self, site: &SiteInner, addr: GlobalAddress, migrate: bool) -> SdvmResult<Value> {
        if let Some(obj) = self.state.lock().objects.get(&addr) {
            return Ok(obj.data.clone());
        }
        let me = site.my_id();
        for attempt in 0..6 {
            if attempt > 0 {
                // Directory updates of in-flight migrations race us;
                // back off briefly before chasing again.
                std::thread::sleep(std::time::Duration::from_millis(2 << attempt));
            }
            let owner = self.lookup_owner(site, addr)?;
            if owner == me {
                // Migrated here concurrently, or the directory update of
                // an outbound migration is still in flight.
                if let Some(obj) = self.state.lock().objects.get(&addr) {
                    return Ok(obj.data.clone());
                }
                continue;
            }
            let reply = site.request(
                owner,
                ManagerId::Memory,
                ManagerId::Memory,
                Payload::MemRead { addr, migrate },
                site.config.request_timeout,
            )?;
            match reply.payload {
                Payload::MemValue { obj, migrated } => {
                    if migrated {
                        let program = obj.program;
                        let data = obj.data.clone();
                        self.state.lock().objects.insert(
                            addr,
                            MemObject {
                                program,
                                data: data.clone(),
                            },
                        );
                        let home = self.resolve_home(site, addr.home);
                        if home == me {
                            self.state.lock().directory.insert(addr, me);
                        } else {
                            let _ = site.send_payload(
                                home,
                                ManagerId::Memory,
                                ManagerId::Memory,
                                site.next_seq(),
                                Payload::OwnerUpdate { addr, owner: me },
                            );
                        }
                        backup::mirror_object(site, addr, program, data.clone());
                        return Ok(data);
                    }
                    return Ok(obj.data);
                }
                Payload::MemMissing { .. } => continue, // chase migration
                other => {
                    return Err(SdvmError::InvalidState(format!(
                        "unexpected read reply {}",
                        other.name()
                    )))
                }
            }
        }
        Err(SdvmError::ObjectMissing(addr))
    }

    /// Write a global object in place at its current owner. Blocks on
    /// remote objects.
    pub fn write(&self, site: &SiteInner, addr: GlobalAddress, value: Value) -> SdvmResult<()> {
        {
            let mut st = self.state.lock();
            if let Some(obj) = st.objects.get_mut(&addr) {
                obj.data = value.clone();
                let program = obj.program;
                drop(st);
                backup::mirror_object(site, addr, program, value);
                return Ok(());
            }
        }
        for attempt in 0..6 {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(2 << attempt));
            }
            let owner = self.lookup_owner(site, addr)?;
            if owner == site.my_id() {
                // The directory says it's ours but it wasn't in `objects`
                // above: an inbound migration or its directory update is
                // still settling — re-check locally.
                let mut st = self.state.lock();
                if let Some(obj) = st.objects.get_mut(&addr) {
                    obj.data = value.clone();
                    let program = obj.program;
                    drop(st);
                    backup::mirror_object(site, addr, program, value);
                    return Ok(());
                }
                continue;
            }
            let reply = site.request(
                owner,
                ManagerId::Memory,
                ManagerId::Memory,
                Payload::MemWrite {
                    addr,
                    value: value.clone(),
                },
                site.config.request_timeout,
            )?;
            match reply.payload {
                Payload::MemWriteAck { .. } => return Ok(()),
                Payload::MemMissing { .. } => continue,
                other => {
                    return Err(SdvmError::InvalidState(format!(
                        "unexpected write reply {}",
                        other.name()
                    )))
                }
            }
        }
        Err(SdvmError::ObjectMissing(addr))
    }

    fn lookup_owner(&self, site: &SiteInner, addr: GlobalAddress) -> SdvmResult<SiteId> {
        let me = site.my_id();
        let home = self.resolve_home(site, addr.home);
        if home == me {
            return self
                .state
                .lock()
                .directory
                .get(&addr)
                .copied()
                .ok_or(SdvmError::ObjectMissing(addr));
        }
        let reply = site.request(
            home,
            ManagerId::Memory,
            ManagerId::Memory,
            Payload::OwnerQuery { addr },
            site.config.request_timeout,
        )?;
        match reply.payload {
            Payload::OwnerReply { owner: Some(o), .. } => Ok(o),
            Payload::OwnerReply { owner: None, .. } => Err(SdvmError::ObjectMissing(addr)),
            other => Err(SdvmError::InvalidState(format!(
                "unexpected owner reply {}",
                other.name()
            ))),
        }
    }

    /// Everything this site owns for relocation at sign-off: objects,
    /// incomplete frames, and the homesite directory entries.
    pub fn drain_for_relocation(
        &self,
    ) -> (
        Vec<WireMemObject>,
        Vec<Microframe>,
        Vec<(GlobalAddress, SiteId)>,
    ) {
        let mut st = self.state.lock();
        let objects = st
            .objects
            .drain()
            .map(|(addr, o)| WireMemObject {
                addr,
                program: o.program,
                data: o.data,
            })
            .collect();
        let frames = st.frames.drain().map(|(_, f)| f).collect();
        let directory = st.directory.drain().collect();
        (objects, frames, directory)
    }

    /// Snapshot of incomplete frames: (address, microthread, missing,
    /// filled-slot indices). Diagnostic aid for stalled dataflow.
    pub fn incomplete_frames(
        &self,
    ) -> Vec<(GlobalAddress, sdvm_types::MicrothreadId, usize, Vec<u32>)> {
        self.state
            .lock()
            .frames
            .values()
            .map(|f| {
                let filled = f
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(i, _)| i as u32)
                    .collect();
                (f.id, f.thread, f.missing(), filled)
            })
            .collect()
    }

    /// Counts for load reports / status.
    pub fn stats(&self) -> (usize, usize, u64) {
        let st = self.state.lock();
        let bytes = st.objects.values().map(|o| o.data.len() as u64).sum();
        (st.objects.len(), st.frames.len(), bytes)
    }

    /// Purge everything belonging to a terminated program.
    pub fn purge_program(&self, program: ProgramId) {
        let mut st = self.state.lock();
        st.objects.retain(|_, o| o.program != program);
        let dead: Vec<GlobalAddress> = st
            .frames
            .iter()
            .filter(|(_, f)| f.program() == program)
            .map(|(a, _)| *a)
            .collect();
        for a in dead {
            st.frames.remove(&a);
            st.directory.remove(&a);
        }
    }

    /// Handle an incoming memory-manager message.
    pub fn handle(&self, site: &SiteInner, msg: SdMessage) {
        match msg.payload.clone() {
            Payload::ApplyResult {
                target,
                slot,
                value,
            } => {
                match self.apply_local(site, target, slot, value.clone()) {
                    Ok(true) => {
                        backup::mirror_apply(site, site.my_id(), target, slot, value);
                    }
                    Ok(false) => {
                        // Not here (frame migrated on, or consumed):
                        // resolve and forward off the router thread.
                        site.spawn_task(Task::ForwardApply {
                            target,
                            slot,
                            value,
                            ttl: 4,
                        });
                    }
                    Err(_) => { /* duplicate/stale result: drop */ }
                }
            }
            Payload::MemRead { addr, migrate } => {
                let mut st = self.state.lock();
                let (reply, removed) = if migrate {
                    match st.objects.remove(&addr) {
                        Some(o) => (
                            Payload::MemValue {
                                obj: WireMemObject {
                                    addr,
                                    program: o.program,
                                    data: o.data.clone(),
                                },
                                migrated: true,
                            },
                            Some(o),
                        ),
                        None => (Payload::MemMissing { addr }, None),
                    }
                } else {
                    match st.objects.get(&addr) {
                        Some(o) => (
                            Payload::MemValue {
                                obj: WireMemObject {
                                    addr,
                                    program: o.program,
                                    data: o.data.clone(),
                                },
                                migrated: false,
                            },
                            None,
                        ),
                        None => (Payload::MemMissing { addr }, None),
                    }
                };
                drop(st);
                let sent = {
                    let r = msg.reply(site.next_seq(), ManagerId::Memory, reply);
                    site.send_msg(r)
                };
                if sent.is_err() {
                    if let Some(o) = removed {
                        // The requester became unreachable between request
                        // and reply: the migrating object must not vanish
                        // from the cluster — take it back.
                        self.state.lock().objects.insert(addr, o);
                    }
                }
            }
            Payload::MemWrite { addr, value } => {
                let mut st = self.state.lock();
                let reply = match st.objects.get_mut(&addr) {
                    Some(o) => {
                        o.data = value.clone();
                        let program = o.program;
                        drop(st);
                        backup::mirror_object(site, addr, program, value);
                        Payload::MemWriteAck { addr }
                    }
                    None => {
                        drop(st);
                        Payload::MemMissing { addr }
                    }
                };
                site.reply_to(&msg, ManagerId::Memory, reply);
            }
            Payload::OwnerQuery { addr } => {
                // Any traffic about an address homed here proves that
                // local id is in use (e.g. after a checkpoint restore
                // elsewhere): never allocate it again.
                self.note_foreign_address(site, addr);
                let owner = self.state.lock().directory.get(&addr).copied();
                site.reply_to(&msg, ManagerId::Memory, Payload::OwnerReply { addr, owner });
            }
            Payload::OwnerUpdate { addr, owner } => {
                self.note_foreign_address(site, addr);
                let mut st = self.state.lock();
                if owner.is_valid() {
                    st.directory.insert(addr, owner);
                } else {
                    st.directory.remove(&addr);
                }
            }
            Payload::Relocate {
                objects,
                frames,
                directory,
            } => {
                {
                    let mut st = self.state.lock();
                    for o in &objects {
                        st.objects.insert(
                            o.addr,
                            MemObject {
                                program: o.program,
                                data: o.data.clone(),
                            },
                        );
                        // Ownership moved here; record it if we will act
                        // as the address's directory too.
                        st.directory.insert(o.addr, site.my_id());
                    }
                    for (addr, owner) in directory {
                        // Inherited directory entries keep their owner,
                        // except entries pointing at the leaver itself —
                        // those objects are in this very relocation.
                        if owner == msg.src_site {
                            st.directory.insert(addr, site.my_id());
                        } else {
                            st.directory.insert(addr, owner);
                        }
                    }
                }
                // Incomplete frames first: executable ones start running
                // on adoption and their results must find every waiting
                // frame already registered.
                let (incomplete, executable): (Vec<_>, Vec<_>) =
                    frames.into_iter().partition(|f| !f.is_executable());
                for f in incomplete.into_iter().chain(executable) {
                    self.adopt_frame(site, Microframe::from_wire(f));
                }
                site.reply_to(&msg, ManagerId::Memory, Payload::RelocateAck {});
            }
            // A migrated object whose requesting waiter timed out: the
            // old owner already removed it — adopt it here or it is lost.
            Payload::MemValue {
                obj,
                migrated: true,
            } => {
                self.adopt_object(site, obj);
            }
            Payload::MemValue {
                migrated: false, ..
            } => {}
            Payload::BackupFrame { frame } => {
                site.backup.on_frame(msg.src_site, frame);
            }
            Payload::BackupRelease { frame, owner } => {
                site.backup.on_release(owner, frame);
            }
            Payload::BackupApply {
                target,
                slot,
                value,
            } => {
                // If the frame lives *here* (it was already revived from
                // backup, or migrated to us while the sender still
                // believed the old owner), deliver the result for real —
                // recording it into the (drained) backup bucket would
                // strand it. Duplicate deliveries are rejected by the
                // slot-fill check, so this is idempotent.
                match self.apply_local(site, target, slot, value.clone()) {
                    Ok(true) => {}
                    _ => site.backup.on_apply(msg.src_site, target, slot, value),
                }
            }
            Payload::BackupConsumed { frame } => {
                site.backup.on_consumed(frame);
            }
            Payload::BackupObject { obj } => {
                site.backup.on_object(msg.src_site, obj);
            }
            Payload::RecoverSite { dead } => {
                site.spawn_task(Task::Recover { dead });
            }
            other => {
                site.reply_to(
                    &msg,
                    ManagerId::Memory,
                    Payload::Error {
                        message: format!("memory: unexpected {}", other.name()),
                    },
                );
            }
        }
    }
}

/// Helper-thread entry for forwarding a result whose frame is not local
/// (migration chasing; see [`MemoryManager::apply_or_forward`]).
pub(crate) fn forward_apply(
    site: &SiteInner,
    target: GlobalAddress,
    slot: u32,
    value: Value,
    ttl: u8,
) {
    let _ = site.memory.apply_or_forward(site, target, slot, value, ttl);
}
