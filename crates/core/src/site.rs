//! One SDVM site: the daemon run on every participating machine.
//!
//! A [`Site`] owns the manager stack of Fig. 3 plus the background
//! threads: a *router* (receives, decrypts and dispatches SDMessages), a
//! set of *processing workers* (the processing manager's virtual-parallel
//! microthread slots), one *helper* (blocking work the router must not do
//! itself, e.g. forwarding results whose owner has to be looked up
//! remotely), and a *maintenance* thread (heartbeats, crash detection).

use crate::config::SiteConfig;
use crate::managers::backup::BackupManager;
use crate::managers::cluster::ClusterManager;
use crate::managers::code::CodeManager;
use crate::managers::deadletter::DeadLetterManager;
use crate::managers::io::IoManager;
use crate::managers::memory::MemoryManager;
use crate::managers::processing;
use crate::managers::program::ProgramManager;
use crate::managers::replication::ReplicationManager;
use crate::managers::scheduling::SchedulingManager;
use crate::managers::security::SecurityManager;
use crate::managers::site_mgr::SiteManager;
use crate::pending::PendingMap;
use crate::telemetry::{manager_index, Metrics};
use crate::thread::AppRegistry;
use crate::trace::{Category, TraceEvent, TraceLog};
use parking_lot::RwLock;
use sdvm_net::Transport;
use sdvm_types::{ManagerId, PhysicalAddr, SdvmError, SdvmResult, SiteDescriptor, SiteId};
use sdvm_wire::{Payload, SdMessage, TraceContext};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Work the router hands to the helper thread because it might block.
pub(crate) enum Task {
    /// Forward a result to a frame whose owner must be resolved remotely.
    ForwardApply {
        /// Destination frame.
        target: sdvm_types::GlobalAddress,
        /// Slot to fill.
        slot: u32,
        /// The result value.
        value: sdvm_types::Value,
        /// Remaining forwarding attempts (migration chases).
        ttl: u8,
    },
    /// Handle a sign-on that needs a remote id allocation.
    SignOn {
        /// The original request (to reply to).
        msg: SdMessage,
        /// Where the joiner can be reached before it has an id.
        reply_addr: PhysicalAddr,
    },
    /// Revive backed-up state of a crashed site.
    Recover {
        /// The dead site.
        dead: SiteId,
    },
    /// Run a closure (used by managers for one-off background sends).
    Run(Box<dyn FnOnce(&SiteInner) + Send>),
}

/// Shared state of one site; all managers and threads hang off this.
pub struct SiteInner {
    /// Static configuration.
    pub config: SiteConfig,
    id: RwLock<SiteId>,
    /// The transport (network manager's lower half).
    pub transport: Arc<dyn Transport>,
    /// Program code registry (see [`crate::thread`]).
    pub registry: Arc<AppRegistry>,
    /// Optional event trace.
    pub trace: Option<TraceLog>,
    /// Always-on per-site metrics registry (counters, gauges, latency
    /// histograms); snapshotable via the site manager's status.
    pub metrics: Metrics,
    /// Cluster-wide metrics rollup: latest digest per peer, fed by the
    /// `MetricsSummary` payloads piggybacking on heartbeats (wire v7).
    pub rollup: crate::telemetry::ClusterRollup,
    /// Crash-triggered flight recorder; `None` (the default) unless
    /// [`SiteConfig::postmortem_dir`] is set.
    pub recorder: Option<crate::telemetry::FlightRecorder>,
    /// Where the ops-plane HTTP listener actually bound (resolves
    /// `"127.0.0.1:0"`); `None` when no listener runs.
    ops_bound: parking_lot::Mutex<Option<std::net::SocketAddr>>,
    /// Outstanding request correlation.
    pub pending: PendingMap,
    seq: AtomicU64,
    running: AtomicBool,
    draining: AtomicBool,
    /// This site's incarnation: 1 from birth, bumped (monotonically) when
    /// refuting a false death declaration. Stamped into every outgoing
    /// message so receivers can fence zombies.
    incarnation: AtomicU64,
    /// Freeze flag for the chaos harness (GC-pause emulation): while set,
    /// every site thread parks at its loop top, so the site goes silent
    /// without dying — exactly what a long GC pause looks like from
    /// outside.
    paused: AtomicBool,
    /// Whether the transport seals at writer-drain time (a
    /// [`crate::managers::security::WriterSealer`] is installed): peer
    /// traffic then skips seal-at-send and hands the transport plaintext
    /// records, which the writer coalesces into batch-sealed frames.
    drain_seal: AtomicBool,

    /// Attraction memory (execution layer).
    pub memory: MemoryManager,
    /// Scheduling manager (execution layer).
    pub scheduling: SchedulingManager,
    /// Code manager (execution layer).
    pub code: CodeManager,
    /// I/O manager (execution layer).
    pub io: IoManager,
    /// Cluster manager (maintenance layer).
    pub cluster: ClusterManager,
    /// Program manager (maintenance layer).
    pub program: ProgramManager,
    /// Site manager (maintenance layer).
    pub site_mgr: SiteManager,
    /// Security manager (between message and network managers).
    pub security: SecurityManager,
    /// Crash-management backup store.
    pub backup: BackupManager,
    /// Dead-letter store: quarantined poison frames.
    pub deadletter: DeadLetterManager,
    /// Replicated/hedged execution: escrow ledger and ballot voting.
    pub replication: ReplicationManager,
    /// Chaos harness: silent result corruption armed on this site
    /// (`(nth, bit, seen)` — the `nth` outgoing result send gets `bit`
    /// flipped). Deterministic and seed-free: the count is the trigger.
    corrupt_plan: parking_lot::Mutex<Option<(u32, u8, u32)>>,

    /// Pending deterministic worker-exit requests (chaos harness): each
    /// unit makes exactly one worker slot leave its loop, exercising the
    /// supervisor's respawn path.
    worker_exit: AtomicU32,
    /// The processing slot threads, supervised by the maintenance
    /// thread: a slot that died (despite panic isolation) is respawned.
    worker_slots: parking_lot::Mutex<Vec<Option<std::thread::JoinHandle<()>>>>,

    tasks_tx: crossbeam::channel::Sender<Task>,
    tasks_rx: crossbeam::channel::Receiver<Task>,
    recovery_tx: crossbeam::channel::Sender<Task>,
    recovery_rx: crossbeam::channel::Receiver<Task>,
}

impl SiteInner {
    /// This site's logical id (`SiteId::NONE` before sign-on).
    pub fn my_id(&self) -> SiteId {
        *self.id.read()
    }

    pub(crate) fn set_id(&self, id: SiteId) {
        *self.id.write() = id;
        self.security.rekey(id);
    }

    /// Fresh message sequence number.
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// True until shutdown/sign-off.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::SeqCst)
    }

    /// True while the site is giving away its work to leave the cluster.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Flip the draining flag (the ops plane's `POST /drain` and the
    /// abort path of a failed drain).
    pub(crate) fn set_draining(&self, on: bool) {
        self.draining.store(on, Ordering::SeqCst);
    }

    /// Stop the site from one of its *own* threads (the ops-plane
    /// `POST /drain` finishes this way): flags shutdown and wakes
    /// everything but joins nothing — a site thread cannot join itself.
    /// The owning [`Site`](crate::site::Site) handle joins the exited
    /// threads on `stop`/drop as usual.
    pub(crate) fn soft_stop(&self) {
        self.running.store(false, Ordering::SeqCst);
        self.scheduling.wake_all();
        self.transport.shutdown();
    }

    /// This site's current incarnation number.
    pub fn my_incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::SeqCst)
    }

    /// Raise the incarnation to at least `at_least` (never lowers it).
    /// Returns the incarnation now in effect.
    pub fn bump_incarnation_to(&self, at_least: u64) -> u64 {
        self.incarnation.fetch_max(at_least, Ordering::SeqCst);
        self.incarnation.load(Ordering::SeqCst)
    }

    /// Consume one pending worker-exit request, if any. Checked by
    /// `next_work` so an idle or between-frames worker notices within
    /// its 20 ms wakeup and exits its loop deterministically.
    pub(crate) fn take_worker_exit(&self) -> bool {
        self.worker_exit
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
            .is_ok()
    }

    /// Ask one worker slot to exit its loop (chaos/testing). The
    /// maintenance thread's supervisor respawns the slot on its next
    /// tick, so this exercises the full die-and-respawn path.
    pub fn kill_worker(&self) {
        self.worker_exit.fetch_add(1, Ordering::SeqCst);
        self.scheduling.wake_all();
    }

    /// True while the chaos harness holds this site frozen.
    pub fn is_paused(&self) -> bool {
        self.paused.load(Ordering::SeqCst)
    }

    pub(crate) fn set_paused(&self, paused: bool) {
        self.paused.store(paused, Ordering::SeqCst);
    }

    /// Park the calling site thread while the site is paused. Called at
    /// the top of every site loop so a pause freezes the whole daemon.
    pub(crate) fn pause_gate(&self) {
        while self.is_paused() && self.is_running() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Record a trace-point: updates the event-derived metrics, hands
    /// the event to the trace bus if one is attached, and — when the
    /// flight recorder is armed — checks it against the black-box
    /// triggers. All four trigger events (crash verdicts, frame
    /// quarantines, result divergence, stuck programs) flow through
    /// this plain `emit`, never the batched hot-path variants, so this
    /// is the single chokepoint; without a recorder the extra cost is
    /// one `Option` branch.
    pub fn emit(&self, ev: TraceEvent) {
        self.metrics.observe(&ev);
        if self.recorder.is_some() {
            self.maybe_flight_record(&ev);
        }
        if let Some(t) = &self.trace {
            t.emit(ev);
        }
    }

    /// Flight-recorder trigger check: classify the event and, if it is
    /// an incident and a dump slot is free (rate limit + file cap),
    /// defer the actual dump to a helper thread. The emitting thread —
    /// which may hold manager locks — never touches the filesystem or
    /// takes status snapshots itself.
    fn maybe_flight_record(&self, ev: &TraceEvent) {
        let Some(rec) = &self.recorder else { return };
        let Some((trigger, detail)) = crate::telemetry::postmortem::trigger_of(ev) else {
            return;
        };
        if !rec.try_claim() {
            return;
        }
        self.spawn_task(Task::Run(Box::new(move |site: &SiteInner| {
            if let Some(r) = &site.recorder {
                if let Some(path) = r.record(site, trigger, &detail) {
                    site.emit(TraceEvent::PostmortemWritten {
                        site: site.my_id(),
                        trigger,
                        path: std::sync::Arc::new(path.display().to_string()),
                    });
                }
            }
        })));
    }

    /// Number of processing-slot threads currently alive.
    pub fn live_workers(&self) -> usize {
        self.worker_slots
            .lock()
            .iter()
            .filter(|h| h.as_ref().map(|h| !h.is_finished()).unwrap_or(false))
            .count()
    }

    /// The socket address the ops-plane HTTP listener bound, once it
    /// is up (`None` when `ops_addr` is unset or binding failed).
    pub fn ops_addr(&self) -> Option<std::net::SocketAddr> {
        *self.ops_bound.lock()
    }

    pub(crate) fn set_ops_bound(&self, addr: std::net::SocketAddr) {
        *self.ops_bound.lock() = Some(addr);
    }

    /// [`SiteInner::emit`] with a caller-supplied clock read, for hot
    /// paths that already timed their work (seal/open): sharing the
    /// `Instant` keeps telemetry to one clock read per event.
    pub fn emit_at(&self, ev: TraceEvent, now: std::time::Instant) {
        self.metrics.observe(&ev);
        if let Some(t) = &self.trace {
            t.emit_at(ev, now);
        }
    }

    /// True when a trace bus is attached *and* its filter keeps `cat`
    /// events. Hot paths check this before reading clocks or building
    /// events the bus would discard anyway — with no bus (the
    /// production default) the cost is one branch.
    pub fn trace_wants(&self, cat: Category) -> bool {
        self.trace.as_ref().is_some_and(|t| t.wants(cat))
    }

    /// Record two trace-points with caller-supplied clock reads, pushed
    /// to the bus under a single ring-lock acquisition (the outbound
    /// message path emits exactly two hops per message).
    pub fn emit_pair_at(
        &self,
        ev0: TraceEvent,
        t0: std::time::Instant,
        ev1: TraceEvent,
        t1: std::time::Instant,
    ) {
        self.metrics.observe(&ev0);
        self.metrics.observe(&ev1);
        if let Some(t) = &self.trace {
            t.emit_pair_at(ev0, t0, ev1, t1);
        }
    }

    /// Queue background work for the helper threads. Crash recovery gets
    /// its own lane: it must not wait behind result forwards that may be
    /// blocked on (dead-site) request timeouts.
    pub(crate) fn spawn_task(&self, task: Task) {
        match task {
            Task::Recover { .. } => {
                let _ = self.recovery_tx.send(task);
            }
            other => {
                let _ = self.tasks_tx.send(other);
            }
        }
    }

    /// Arm deterministic result corruption (chaos harness): the `nth`
    /// outgoing result send from this site gets `bit` flipped. Models
    /// silent data corruption — the site keeps heartbeating and the
    /// wire-level MACs still pass, because the value was corrupted
    /// *before* it was sealed.
    pub fn arm_corrupt_results(&self, nth: u32, bit: u8) {
        *self.corrupt_plan.lock() = Some((nth, bit, 0));
    }

    /// Chaos hook on the result-send path: count this send and flip the
    /// armed bit when the trigger count is reached. A no-op unless
    /// [`SiteInner::arm_corrupt_results`] armed this site.
    pub(crate) fn maybe_corrupt_result(&self, value: sdvm_types::Value) -> sdvm_types::Value {
        let mut plan = self.corrupt_plan.lock();
        let Some((nth, bit, seen)) = plan.as_mut() else {
            return value;
        };
        *seen += 1;
        if *seen != *nth {
            return value;
        }
        let mut bytes = value.bytes().to_vec();
        if bytes.is_empty() {
            bytes.push(0);
        }
        let idx = (*bit as usize / 8) % bytes.len();
        bytes[idx] ^= 1 << (*bit % 8);
        sdvm_types::Value::from_bytes(bytes)
    }

    // ---- the message manager (paper §4, Fig. 6) ----

    /// Send a payload to a manager on another (or this) site. Returns the
    /// sequence number used, so callers may have registered a waiter.
    pub fn send_payload(
        &self,
        dst_site: SiteId,
        dst_manager: ManagerId,
        src_manager: ManagerId,
        seq: u64,
        payload: Payload,
    ) -> SdvmResult<()> {
        self.send_payload_traced(
            dst_site,
            dst_manager,
            src_manager,
            seq,
            payload,
            TraceContext::NONE,
        )
    }

    /// [`SiteInner::send_payload`] with an explicit causal trace context
    /// stamped onto the message (wire v3), so telemetry on the receiving
    /// site can stitch the message to the operation it belongs to.
    pub fn send_payload_traced(
        &self,
        dst_site: SiteId,
        dst_manager: ManagerId,
        src_manager: ManagerId,
        seq: u64,
        payload: Payload,
        trace: TraceContext,
    ) -> SdvmResult<()> {
        let mut msg = SdMessage::new(
            self.my_id(),
            src_manager,
            dst_site,
            dst_manager,
            seq,
            payload,
        );
        msg.trace = trace;
        self.send_msg(msg)
    }

    /// Send a fully built message: loopback locally or resolve the
    /// logical id to a physical address (via the cluster manager), seal
    /// (security manager) and hand to the network manager.
    pub fn send_msg(&self, mut msg: SdMessage) -> SdvmResult<()> {
        if msg.dst_site == self.my_id() {
            msg.src_incarnation = self.my_incarnation();
            self.dispatch(msg);
            return Ok(());
        }
        let addr = self
            .cluster
            .addr_of(msg.dst_site)
            .ok_or(SdvmError::UnknownSite(msg.dst_site))?;
        self.send_msg_to_addr(&addr, msg)
    }

    /// Send to an explicit physical address (used during sign-on, before
    /// the peer's logical id is known).
    pub fn send_msg_to_addr(&self, addr: &PhysicalAddr, mut msg: SdMessage) -> SdvmResult<()> {
        // A paused (frozen) site emits nothing: threads parked deep in
        // blocking loops (idle workers begging for help, waiters) would
        // otherwise keep leaking liveness proof to the cluster. Gating
        // the one outbound choke point makes the freeze airtight.
        self.pause_gate();
        msg.src_incarnation = self.my_incarnation();
        // Drain-time sealing: for established peer traffic, hand the
        // transport the serialized message and let its writer thread
        // seal — coalescing bursts into batch-sealed records. Join
        // traffic (either id still unknown) keeps the per-frame path,
        // as does everything when the transport declined the sealer.
        if self.drain_seal.load(Ordering::Relaxed)
            && msg.dst_site.is_valid()
            && self.my_id().is_valid()
        {
            let hop = |manager| TraceEvent::MessageHop {
                site: self.my_id(),
                manager,
                payload: msg.payload.name(),
                outgoing: true,
                trace: msg.trace.id,
            };
            // Seal timing lives at the writer's drain now (one
            // histogram sample per batch), so per message the only
            // unconditional telemetry is the two hop counters; clock
            // reads happen just when a trace consumer wants the stamps.
            if self.trace_wants(Category::Hops) {
                let t0 = std::time::Instant::now();
                let body = self.security.encode_plain(&msg);
                let t1 = std::time::Instant::now();
                self.emit_pair_at(hop(ManagerId::Message), t0, hop(ManagerId::Network), t1);
                return self.transport.send_plain(addr, msg.dst_site.0, body);
            }
            let body = self.security.encode_plain(&msg);
            self.metrics.observe(&hop(ManagerId::Message));
            self.metrics.observe(&hop(ManagerId::Network));
            return self.transport.send_plain(addr, msg.dst_site.0, body);
        }
        // Two clock reads serve four consumers: `t0` stamps the
        // message-manager hop and starts the seal timer, `t1` stops it
        // and stamps the network-manager hop.
        let t0 = std::time::Instant::now();
        // Encode + seal + frame in one buffer (the zero-copy send path).
        let frame = self.security.seal_frame(self, msg.dst_site, &msg)?;
        let t1 = std::time::Instant::now();
        self.metrics
            .seal_us
            .observe_duration(t1.saturating_duration_since(t0));
        self.emit_pair_at(
            TraceEvent::MessageHop {
                site: self.my_id(),
                manager: ManagerId::Message,
                payload: msg.payload.name(),
                outgoing: true,
                trace: msg.trace.id,
            },
            t0,
            TraceEvent::MessageHop {
                site: self.my_id(),
                manager: ManagerId::Network,
                payload: msg.payload.name(),
                outgoing: true,
                trace: msg.trace.id,
            },
            t1,
        );
        self.transport.send(addr, frame)
    }

    /// Blocking request/response with timeout.
    pub fn request(
        &self,
        dst_site: SiteId,
        dst_manager: ManagerId,
        src_manager: ManagerId,
        payload: Payload,
        timeout: Duration,
    ) -> SdvmResult<SdMessage> {
        let seq = self.next_seq();
        let rx = self.pending.register(seq);
        if let Err(e) = self.send_payload(dst_site, dst_manager, src_manager, seq, payload) {
            self.pending.cancel(seq);
            return Err(e);
        }
        self.pending.await_reply(seq, &rx, timeout)
    }

    /// Request sent to an explicit address (sign-on).
    pub fn request_addr(
        &self,
        addr: &PhysicalAddr,
        dst_manager: ManagerId,
        src_manager: ManagerId,
        payload: Payload,
        timeout: Duration,
    ) -> SdvmResult<SdMessage> {
        let seq = self.next_seq();
        let rx = self.pending.register(seq);
        let msg = SdMessage::new(
            self.my_id(),
            src_manager,
            SiteId::NONE,
            dst_manager,
            seq,
            payload,
        );
        if let Err(e) = self.send_msg_to_addr(addr, msg) {
            self.pending.cancel(seq);
            return Err(e);
        }
        self.pending.await_reply(seq, &rx, timeout)
    }

    /// Reply to a received message.
    pub fn reply_to(&self, orig: &SdMessage, src_manager: ManagerId, payload: Payload) {
        let reply = orig.reply(self.next_seq(), src_manager, payload);
        // Replying to a joining site (id NONE) needs its physical address,
        // which the cluster manager records during sign-on.
        let _ = self.send_msg(reply);
    }

    /// Route an incoming (already decrypted/decoded) message to its
    /// target manager. Replies wake their waiters instead.
    pub fn dispatch(&self, msg: SdMessage) {
        self.emit(TraceEvent::MessageHop {
            site: self.my_id(),
            manager: msg.dst_manager,
            payload: msg.payload.name(),
            outgoing: false,
            trace: msg.trace.id,
        });
        // Zombie fencing + liveness bookkeeping: messages from declared-
        // dead incarnations are dropped here, before any manager (or
        // pending waiter) can act on them.
        if msg.src_site.is_valid()
            && msg.src_site != self.my_id()
            && !self
                .cluster
                .observe_inbound(self, msg.src_site, msg.src_incarnation)
        {
            return;
        }
        if let Some(r) = msg.in_reply_to {
            if self.pending.complete(r, msg.clone()) {
                return;
            }
            // Unclaimed replies can still carry state that must not be
            // lost: a HelpReply's microframe, or a migrating MemValue's
            // object (its owner already gave it up). Fall through to the
            // manager so the state is adopted instead of dropped.
            match &msg.payload {
                Payload::HelpReply { .. } => {}
                Payload::MemValue { migrated: true, .. } => {}
                _ => return,
            }
        }
        let handler = manager_index(msg.dst_manager);
        let handle_started = std::time::Instant::now();
        match msg.dst_manager {
            ManagerId::Scheduling => self.scheduling.handle(self, msg),
            ManagerId::Memory => self.memory.handle(self, msg),
            ManagerId::Code => self.code.handle(self, msg),
            ManagerId::Cluster => self.cluster.handle(self, msg),
            ManagerId::Program => self.program.handle(self, msg),
            ManagerId::Io => self.io.handle(self, msg),
            ManagerId::Site => self.site_mgr.handle(self, msg),
            other => {
                self.emit(TraceEvent::MessageHop {
                    site: self.my_id(),
                    manager: other,
                    payload: "undeliverable",
                    outgoing: false,
                    trace: 0,
                });
            }
        }
        if let Some(idx) = handler {
            self.metrics.dispatch_us[idx].observe_duration(handle_started.elapsed());
        }
    }
}

/// A running SDVM site.
pub struct Site {
    inner: Arc<SiteInner>,
    threads: parking_lot::Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Site {
    /// Build a site on the given transport. The site is inert until
    /// [`Site::start_first`] or [`Site::sign_on`] is called.
    pub fn new(
        config: SiteConfig,
        transport: Arc<dyn Transport>,
        registry: Arc<AppRegistry>,
        trace: Option<TraceLog>,
    ) -> Self {
        assert!(
            config.slots >= 1,
            "a site needs at least one processing slot (the paper suggests ~5)"
        );
        let (tasks_tx, tasks_rx) = crossbeam::channel::unbounded();
        let (recovery_tx, recovery_rx) = crossbeam::channel::unbounded();
        let security = SecurityManager::new(&config);
        let inner = Arc::new(SiteInner {
            scheduling: SchedulingManager::new(&config),
            memory: MemoryManager::with_shards(config.mem_shards),
            code: CodeManager::new(&config),
            io: IoManager::new(),
            cluster: ClusterManager::new(&config),
            program: ProgramManager::new(),
            site_mgr: SiteManager::new(),
            security,
            backup: BackupManager::new(),
            deadletter: DeadLetterManager::new(),
            replication: ReplicationManager::new(),
            corrupt_plan: parking_lot::Mutex::new(None),
            worker_exit: AtomicU32::new(0),
            worker_slots: parking_lot::Mutex::new(Vec::new()),
            recorder: config
                .postmortem_dir
                .clone()
                .map(crate::telemetry::FlightRecorder::new),
            config,
            id: RwLock::new(SiteId::NONE),
            transport,
            registry,
            trace,
            metrics: Metrics::new(),
            rollup: crate::telemetry::ClusterRollup::new(),
            ops_bound: parking_lot::Mutex::new(None),
            pending: PendingMap::new(),
            seq: AtomicU64::new(1),
            running: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            incarnation: AtomicU64::new(1),
            paused: AtomicBool::new(false),
            drain_seal: AtomicBool::new(false),
            tasks_tx,
            tasks_rx,
            recovery_tx,
            recovery_rx,
        });
        // With encryption on, move sealing onto the transport's writer
        // threads so coalesced bursts are sealed as single batch records
        // (transports without a writer stage decline and the per-frame
        // seal-at-send path stays in effect).
        if inner.security.enabled() {
            let sealer = crate::managers::security::WriterSealer::new(&inner);
            inner.drain_seal.store(
                inner.transport.install_drain_sealer(sealer),
                Ordering::SeqCst,
            );
        }
        Site {
            inner,
            threads: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Access to the shared state (managers, message sending).
    pub fn inner(&self) -> &Arc<SiteInner> {
        &self.inner
    }

    /// This site's logical id.
    pub fn id(&self) -> SiteId {
        self.inner.my_id()
    }

    /// This site's physical address (give it to joining sites).
    pub fn addr(&self) -> PhysicalAddr {
        self.inner.transport.local_addr()
    }

    /// Start as the *first* site of a new cluster: takes `SiteId::FIRST`,
    /// becomes the initial id server and a code distribution site.
    pub fn start_first(&self) {
        self.inner.set_id(SiteId::FIRST);
        self.inner.cluster.init_first(&self.inner);
        self.spawn_threads();
    }

    /// Join an existing cluster through a site at `contact`. Blocks until
    /// the sign-on handshake completes.
    pub fn sign_on(&self, contact: &PhysicalAddr) -> SdvmResult<()> {
        // The router must run to receive the SignOnAck.
        self.spawn_threads();
        self.inner.cluster.sign_on(&self.inner, contact)
    }

    /// Graceful drain: announce `Draining` cluster-wide (peers stop
    /// granting this site help, stop targeting it as a backup buddy and
    /// drop it from code distribution), quiesce local execution, sweep
    /// dead letters and code-source duty to the successor, relocate all
    /// owned frames, objects and the homesite directory, flush the
    /// outbound queues, then announce departure and stop.
    ///
    /// On failure the site re-adopts its work and re-announces its
    /// descriptor (withdrawing the `Draining` state on peers), so a
    /// failed drain leaves a fully working member.
    pub fn drain(&self) -> SdvmResult<()> {
        self.inner.draining.store(true, Ordering::SeqCst);
        let res = self.inner.cluster.sign_off(&self.inner);
        if res.is_err() {
            // Drain aborted: resume normal duty.
            self.inner.draining.store(false, Ordering::SeqCst);
            return res;
        }
        self.stop();
        res
    }

    /// Orderly sign-off: [`Site::drain`] under its historical name.
    pub fn sign_off(&self) -> SdvmResult<()> {
        self.drain()
    }

    /// Abrupt stop, *without* relocation — simulates a crash (tests and
    /// the crash-recovery experiments).
    pub fn crash(&self) {
        self.stop();
    }

    /// Freeze the whole site (GC-pause emulation, chaos harness): every
    /// site thread parks, the site goes silent but does not die. From
    /// the cluster's perspective this is indistinguishable from a crash
    /// — which is exactly what the suspicion machinery must cope with.
    pub fn pause(&self) {
        self.inner.set_paused(true);
    }

    /// Chaos hook: arm silent result corruption on this site — the
    /// `nth` outgoing result send has `bit` flipped in its value (see
    /// [`crate::ChaosAction::CorruptResult`]).
    pub fn corrupt_results(&self, nth: u32, bit: u8) {
        self.inner.arm_corrupt_results(nth, bit);
    }

    /// Unfreeze after [`Site::pause`]. Liveness clocks for every known
    /// peer are reset *before* the threads wake, so the freshly resumed
    /// site doesn't instantly declare the whole (silent-to-it) cluster
    /// dead out of its own stale timestamps.
    pub fn resume(&self) {
        self.inner.cluster.refresh_liveness();
        self.inner.set_paused(false);
    }

    fn stop(&self) {
        self.inner.running.store(false, Ordering::SeqCst);
        self.inner.scheduling.wake_all();
        self.inner.transport.shutdown();
        let handles: Vec<_> = self.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        let workers: Vec<_> = self.inner.worker_slots.lock().drain(..).collect();
        for h in workers.into_iter().flatten() {
            let _ = h.join();
        }
    }

    fn spawn_threads(&self) {
        if self.inner.running.swap(true, Ordering::SeqCst) {
            return; // already running
        }
        let mut threads = self.threads.lock();

        // Router: network manager's upper half + message manager receive.
        {
            let inner = self.inner.clone();
            let rx = inner.transport.incoming();
            let name = format!("sdvm-router-{}", inner.my_id());
            threads.extend(spawn_named(name, move || {
                while inner.is_running() {
                    inner.pause_gate();
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(raw) => {
                            let open_started = std::time::Instant::now();
                            let opened = inner.security.open_traffic(raw);
                            inner
                                .metrics
                                .open_us
                                .observe_duration(open_started.elapsed());
                            let Ok(opened) = opened else {
                                continue; // forged/corrupt: drop
                            };
                            for rec in opened.records() {
                                let Ok(rec) = rec else {
                                    break; // malformed batch interior: drop rest
                                };
                                let Ok(msg) = SdMessage::from_bytes(rec) else {
                                    continue; // undecodable record: drop
                                };
                                inner.dispatch(msg);
                            }
                        }
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(_) => break,
                    }
                }
            }));
        }

        // Helpers: blocking background tasks (two, so one dead-site
        // timeout does not stall all forwarding), plus a dedicated
        // recovery lane.
        for (n, rx) in [
            (0, self.inner.tasks_rx.clone()),
            (1, self.inner.tasks_rx.clone()),
            (2, self.inner.recovery_rx.clone()),
        ] {
            let inner = self.inner.clone();
            let name = format!("sdvm-helper-{}-{}", inner.my_id(), n);
            threads.extend(spawn_named(name, move || {
                while inner.is_running() {
                    inner.pause_gate();
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(task) => crate::managers::run_task(&inner, task),
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                        Err(_) => break,
                    }
                }
            }));
        }

        // Processing manager: `slots` microthreads in (virtual)
        // parallel, tracked per slot so the supervisor can respawn one
        // that died.
        *self.inner.worker_slots.lock() = (0..self.inner.config.slots)
            .map(|slot| spawn_worker(self.inner.clone(), slot))
            .collect();

        // Ops plane: the HTTP introspection listener, when configured.
        // Bound synchronously (inside start/sign-on), so callers can
        // resolve a `"127.0.0.1:0"` bind right after start.
        threads.extend(crate::telemetry::http::spawn_ops_listener(&self.inner));

        // Maintenance: heartbeats, crash detection, worker supervision,
        // stuck-program watchdog.
        {
            let inner = self.inner.clone();
            let name = format!("sdvm-maint-{}", inner.my_id());
            threads.extend(spawn_named(name, move || {
                while inner.is_running() {
                    std::thread::sleep(inner.config.heartbeat_interval);
                    inner.pause_gate();
                    if !inner.is_running() {
                        break;
                    }
                    inner.cluster.heartbeat_tick(&inner);
                    supervise_workers(&inner);
                    inner.program.watchdog_tick(&inner);
                    inner.replication.tick(&inner);
                }
            }));
        }
    }

    /// Ask one worker slot to exit (the supervisor respawns it).
    pub fn kill_worker(&self) {
        self.inner.kill_worker();
    }

    /// Number of worker slot threads currently alive.
    pub fn live_workers(&self) -> usize {
        self.inner.live_workers()
    }

    /// The address the ops-plane HTTP listener bound (`None` when
    /// `ops_addr` is unset or the bind failed).
    pub fn ops_addr(&self) -> Option<std::net::SocketAddr> {
        self.inner.ops_addr()
    }

    /// The descriptor this site announces about itself.
    pub fn descriptor(&self) -> SiteDescriptor {
        SiteDescriptor {
            site: self.id(),
            addr: self.addr(),
            platform: self.inner.config.platform,
            speed: self.inner.config.speed,
            code_distribution: self.inner.config.code_distribution,
            incarnation: self.inner.my_incarnation(),
        }
    }
}

impl Drop for Site {
    fn drop(&mut self) {
        if self.inner.is_running() {
            self.stop();
        }
    }
}

/// Spawn a named thread; a spawn failure (fd/thread exhaustion) is
/// reported, not fatal — the caller gets `None` and the site runs
/// degraded rather than aborting the daemon.
pub(crate) fn spawn_named(
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> Option<std::thread::JoinHandle<()>> {
    match std::thread::Builder::new().name(name.clone()).spawn(f) {
        Ok(h) => Some(h),
        Err(e) => {
            eprintln!("sdvm: failed to spawn thread {name}: {e}");
            None
        }
    }
}

/// Spawn one processing slot thread.
fn spawn_worker(inner: Arc<SiteInner>, slot: usize) -> Option<std::thread::JoinHandle<()>> {
    let name = format!("sdvm-worker-{}-{}", inner.my_id(), slot);
    spawn_named(name, move || processing::worker_loop(&inner))
}

/// Worker supervision (maintenance tick): respawn any slot thread that
/// exited — a chaos-injected exit, a thread the OS killed, or a panic
/// that somehow escaped the engine's isolation.
fn supervise_workers(inner: &Arc<SiteInner>) {
    if !inner.is_running() {
        return;
    }
    let mut slots = inner.worker_slots.lock();
    for (i, slot) in slots.iter_mut().enumerate() {
        let dead = slot.as_ref().map(|h| h.is_finished()).unwrap_or(true);
        if dead {
            if let Some(h) = slot.take() {
                let _ = h.join();
            }
            *slot = spawn_worker(inner.clone(), i);
            inner.emit(TraceEvent::WorkerRespawned {
                site: inner.my_id(),
                slot: i as u32,
            });
        }
    }
}
