//! Program checkpointing (paper §2.2, §4, §6): "the SDVM has an
//! automatic backup and recovery mechanism (which uses checkpointing)".
//!
//! A checkpoint is a cluster-wide snapshot of one program: every site's
//! incomplete and queued microframes plus its global memory objects.
//! Taking one quiesces the program first — it is paused cluster-wide,
//! running microthreads drain (microthreads are atomic, so draining is
//! bounded by the longest one), in-flight results settle into parked
//! frames — then every site contributes its share, the assembled
//! [`ProgramSnapshot`] is stored on the checkpoint sites recorded by the
//! program manager, and the program resumes.
//!
//! A snapshot can be restored on the same cluster (or a rebuilt cluster
//! reusing the same logical site ids — addresses embed homesites):
//! every frame and object is re-adopted and the dataflow continues from
//! the cut. Together with the continuous backup mirroring
//! ([`crate::managers::backup`]) this covers both recovery granularities
//! the paper sketches: fine-grained crash survival and coarse
//! stop-the-program/disaster restart.

use crate::api::ProgramHandle;
use crate::frame::Microframe;
use crate::site::Site;
use crate::thread::RESULT_THREAD_INDEX;
use bytes::Bytes;
use sdvm_types::{GlobalAddress, ManagerId, ProgramId, SdvmError, SdvmResult};
use sdvm_wire::{Decode, Encode, Payload, WireFrame, WireMemObject, WireReader, WireWriter};

/// A cluster-wide snapshot of one running program.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramSnapshot {
    /// The program (restore keeps the id — addresses reference it).
    pub program: ProgramId,
    /// Monotone checkpoint number.
    pub epoch: u64,
    /// Program name (sanity check at restore).
    pub name: String,
    /// Code-table size (sanity check at restore).
    pub threads: u32,
    /// All live microframes (incomplete + queued), cluster-wide.
    pub frames: Vec<WireFrame>,
    /// All global memory objects of the program, cluster-wide.
    pub objects: Vec<WireMemObject>,
}

impl ProgramSnapshot {
    /// The hidden result frame's address, if captured (absent once the
    /// program has delivered its result).
    pub fn result_addr(&self) -> Option<GlobalAddress> {
        self.frames
            .iter()
            .find(|f| f.thread.index == RESULT_THREAD_INDEX)
            .map(|f| f.id)
    }

    /// Serialize (wire codec; also used for on-disk checkpoints).
    pub fn to_bytes(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(1024);
        self.program.encode(&mut w);
        w.put_varint(self.epoch);
        w.put_str(&self.name);
        self.threads.encode(&mut w);
        self.frames.encode(&mut w);
        self.objects.encode(&mut w);
        Bytes::from(w.finish())
    }

    /// Deserialize.
    pub fn from_bytes(buf: &[u8]) -> SdvmResult<Self> {
        let mut r = WireReader::new(buf);
        let snap = ProgramSnapshot {
            program: ProgramId::decode(&mut r)?,
            epoch: r.get_varint()?,
            name: r.get_str()?.to_owned(),
            threads: u32::decode(&mut r)?,
            frames: Vec::decode(&mut r)?,
            objects: Vec::decode(&mut r)?,
        };
        r.expect_end()?;
        Ok(snap)
    }

    /// Write the snapshot to a file (length-framed, so several snapshots
    /// can share a file if appended).
    pub fn save_to_file(&self, path: &std::path::Path) -> SdvmResult<()> {
        let mut f = std::fs::File::create(path)?;
        sdvm_wire::write_frame(&mut f, &self.to_bytes())
    }

    /// Read a snapshot back from a file.
    pub fn load_from_file(path: &std::path::Path) -> SdvmResult<Self> {
        let mut f = std::fs::File::open(path)?;
        let body = sdvm_wire::read_frame(&mut f)?
            .ok_or_else(|| SdvmError::Checkpoint("empty checkpoint file".into()))?;
        Self::from_bytes(&body)
    }
}

impl Site {
    /// Take a cluster-wide checkpoint of `program`: pause → quiesce →
    /// collect every site's share → resume → store on the checkpoint
    /// sites. Returns the snapshot (also retrievable later with
    /// [`Site::fetch_checkpoint`]).
    pub fn checkpoint_program(&self, program: ProgramId) -> SdvmResult<ProgramSnapshot> {
        let site = self.inner();
        let info = site
            .program
            .code_home(program)
            .ok_or(SdvmError::UnknownProgram(program))?;
        let _ = info;
        let members = site.cluster.known_sites();

        // 1. Pause cluster-wide (loopback handles ourselves).
        for &m in &members {
            let _ = site.send_payload(
                m,
                ManagerId::Program,
                ManagerId::Program,
                site.next_seq(),
                Payload::ProgramPause {
                    program,
                    paused: true,
                },
            );
        }

        // 2. Collect every site's share — twice. Each site only replies
        // once it is locally quiesced, so the *end of round one* is a
        // cluster-wide quiescence barrier: every in-flight result from a
        // draining execution has been sent by then and lands during the
        // per-site settle windows. Round two's parts are therefore a
        // stable cut; round one's are discarded.
        let mut frames = Vec::new();
        let mut objects = Vec::new();
        let mut collect_err = None;
        for round in 0..2 {
            frames.clear();
            objects.clear();
            if collect_err.is_some() {
                break;
            }
            let _ = round;
            for &m in &members {
                match site.request(
                    m,
                    ManagerId::Program,
                    ManagerId::Program,
                    Payload::SnapshotCollect { program },
                    site.config.request_timeout,
                ) {
                    Ok(reply) => match reply.payload {
                        Payload::SnapshotPart {
                            frames: f,
                            objects: o,
                            ..
                        } => {
                            frames.extend(f);
                            objects.extend(o);
                        }
                        other => {
                            collect_err = Some(SdvmError::Checkpoint(format!(
                                "unexpected snapshot reply {}",
                                other.name()
                            )));
                        }
                    },
                    Err(e) => {
                        collect_err = Some(SdvmError::Checkpoint(format!("collect from {m}: {e}")));
                    }
                }
                if collect_err.is_some() {
                    break;
                }
            }
        }

        // 3. Resume cluster-wide, whatever happened.
        for &m in &members {
            let _ = site.send_payload(
                m,
                ManagerId::Program,
                ManagerId::Program,
                site.next_seq(),
                Payload::ProgramPause {
                    program,
                    paused: false,
                },
            );
        }
        if let Some(e) = collect_err {
            return Err(e);
        }

        frames.sort_by_key(|f| f.id);
        frames.dedup_by_key(|f| f.id);
        objects.sort_by_key(|o| o.addr);
        objects.dedup_by_key(|o| o.addr);

        let epoch = self
            .inner()
            .program
            .stored_checkpoint(program)
            .map(|(e, _)| e + 1)
            .unwrap_or(1);
        let (name, threads) = {
            let reg = &site.registry;
            (
                reg.program_name(program)
                    .or_else(|| site.program.name_of(program))
                    .unwrap_or_default(),
                site.registry.thread_count(program) as u32,
            )
        };
        let snapshot = ProgramSnapshot {
            program,
            epoch,
            name,
            threads,
            frames,
            objects,
        };

        // 4. Store on the checkpoint sites (the code distribution sites,
        // ourselves included) — "the sites where checkpoints are stored".
        let bytes = snapshot.to_bytes();
        let mut stores = site.cluster.code_distribution_sites();
        if !stores.contains(&site.my_id()) {
            stores.push(site.my_id());
        }
        for &m in &stores {
            let _ = site.request(
                m,
                ManagerId::Program,
                ManagerId::Program,
                Payload::CheckpointStore {
                    program,
                    epoch,
                    snapshot: Bytes::copy_from_slice(&bytes),
                },
                site.config.request_timeout,
            );
        }
        Ok(snapshot)
    }

    /// Take an **incremental, pause-free** checkpoint of `program`.
    ///
    /// Unlike [`Site::checkpoint_program`] this never pauses the program
    /// and never waits for quiescence: every site contributes a
    /// copy-on-write style cut (dirty shards re-captured under their own
    /// shard lock, clean shards answered from the previous cut), so the
    /// execution engine keeps running throughout and no worker is ever
    /// blocked longer than one shard capture.
    ///
    /// The price is a weaker cut: consistency is per-shard, not
    /// cluster-wide. A restore from an incremental snapshot is
    /// *at-least-once* — a frame captured mid-flight may re-execute and
    /// re-deliver its results, which the receiving frames' slot-fill
    /// checks reject as duplicates — rather than the exactly-from-the-cut
    /// semantics of the quiesced path. Use the quiesced path for
    /// disaster-recovery archives; use this one for frequent online
    /// checkpoints where stopping the world is unacceptable (the drain
    /// and rolling-restart flows).
    pub fn checkpoint_program_incremental(
        &self,
        program: ProgramId,
    ) -> SdvmResult<ProgramSnapshot> {
        let site = self.inner();
        site.program
            .code_home(program)
            .ok_or(SdvmError::UnknownProgram(program))?;
        let members = site.cluster.known_sites();

        // Single collect round, no pause barrier: each site cuts its
        // shards immediately and replies.
        let mut frames = Vec::new();
        let mut objects = Vec::new();
        for &m in &members {
            match site.request(
                m,
                ManagerId::Program,
                ManagerId::Program,
                Payload::SnapshotCollectIncremental { program },
                site.config.request_timeout,
            ) {
                Ok(reply) => match reply.payload {
                    Payload::SnapshotPart {
                        frames: f,
                        objects: o,
                        ..
                    } => {
                        frames.extend(f);
                        objects.extend(o);
                    }
                    other => {
                        return Err(SdvmError::Checkpoint(format!(
                            "unexpected incremental snapshot reply {}",
                            other.name()
                        )));
                    }
                },
                Err(e) => {
                    return Err(SdvmError::Checkpoint(format!(
                        "incremental collect from {m}: {e}"
                    )));
                }
            }
        }

        // Objects can legitimately appear twice (one site's fresh cut,
        // another's cached cut from before a migration): keep the
        // highest version. Frames dedup by address.
        frames.sort_by_key(|f| f.id);
        frames.dedup_by_key(|f| f.id);
        objects.sort_by(|a, b| a.addr.cmp(&b.addr).then(b.version.cmp(&a.version)));
        objects.dedup_by_key(|o| o.addr);

        let epoch = self
            .inner()
            .program
            .stored_checkpoint(program)
            .map(|(e, _)| e + 1)
            .unwrap_or(1);
        let (name, threads) = {
            (
                site.registry
                    .program_name(program)
                    .or_else(|| site.program.name_of(program))
                    .unwrap_or_default(),
                site.registry.thread_count(program) as u32,
            )
        };
        let snapshot = ProgramSnapshot {
            program,
            epoch,
            name,
            threads,
            frames,
            objects,
        };

        let bytes = snapshot.to_bytes();
        let mut stores = site.cluster.code_distribution_sites();
        if !stores.contains(&site.my_id()) {
            stores.push(site.my_id());
        }
        for &m in &stores {
            let _ = site.request(
                m,
                ManagerId::Program,
                ManagerId::Program,
                Payload::CheckpointStore {
                    program,
                    epoch,
                    snapshot: Bytes::copy_from_slice(&bytes),
                },
                site.config.request_timeout,
            );
        }
        Ok(snapshot)
    }

    /// Fetch the latest stored checkpoint for `program` from the
    /// checkpoint sites (or the local store).
    pub fn fetch_checkpoint(&self, program: ProgramId) -> SdvmResult<ProgramSnapshot> {
        let site = self.inner();
        if let Some((_, bytes)) = site.program.stored_checkpoint(program) {
            return ProgramSnapshot::from_bytes(&bytes);
        }
        let mut candidates = site.cluster.code_distribution_sites();
        candidates.extend(site.cluster.known_sites());
        candidates.dedup();
        let mut best: Option<(u64, Bytes)> = None;
        for m in candidates {
            if m == site.my_id() {
                continue;
            }
            if let Ok(reply) = site.request(
                m,
                ManagerId::Program,
                ManagerId::Program,
                Payload::CheckpointFetch { program },
                site.config.request_timeout,
            ) {
                if let Payload::CheckpointData {
                    epoch, snapshot, ..
                } = reply.payload
                {
                    if best.as_ref().map(|(e, _)| *e < epoch).unwrap_or(true) {
                        best = Some((epoch, snapshot));
                    }
                }
            }
        }
        match best {
            Some((_, bytes)) => ProgramSnapshot::from_bytes(&bytes),
            None => Err(SdvmError::Checkpoint(format!(
                "no checkpoint stored for {program}"
            ))),
        }
    }

    /// Resume a checkpointed program on this site (the cluster must
    /// resolve the snapshot's site ids — same cluster, or a rebuilt one
    /// reusing the same logical ids). The application's code table must
    /// be provided again, exactly as at the original launch.
    pub fn restore_program(
        &self,
        app: &crate::api::AppBuilder,
        snapshot: &ProgramSnapshot,
    ) -> SdvmResult<ProgramHandle> {
        if app.thread_count() != snapshot.threads {
            return Err(SdvmError::Checkpoint(format!(
                "code table mismatch: snapshot has {} microthreads, app has {}",
                snapshot.threads,
                app.thread_count()
            )));
        }
        let result_addr = snapshot.result_addr().ok_or_else(|| {
            SdvmError::Checkpoint("snapshot has no result frame (program finished?)".into())
        })?;
        let handle = self.relaunch_registered(app, snapshot.program, result_addr)?;
        let site = self.inner();
        // The restore rewinds object state: replicas cut from the
        // pre-restore timeline must not survive it (peers drop theirs on
        // the ProgramRegister broadcast).
        site.memory.purge_replicas(snapshot.program);
        for obj in &snapshot.objects {
            site.memory.adopt_object(site, obj.clone());
        }
        // Adopt incomplete frames before executable ones: adopting an
        // executable frame starts it running, and its results must find
        // every waiting frame already registered — otherwise the
        // directory reports them unknown and the results are dropped.
        let (incomplete, executable): (Vec<_>, Vec<_>) = snapshot
            .frames
            .iter()
            .cloned()
            .partition(|f| !f.is_executable());
        for f in incomplete.into_iter().chain(executable) {
            site.memory.adopt_frame(site, Microframe::from_wire(f));
        }
        Ok(handle)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use sdvm_types::{MicrothreadId, SchedulingHint, SiteId, Value};

    fn sample() -> ProgramSnapshot {
        ProgramSnapshot {
            program: ProgramId(65536),
            epoch: 3,
            name: "demo".into(),
            threads: 2,
            frames: vec![WireFrame {
                id: GlobalAddress::new(SiteId(1), 9),
                thread: MicrothreadId::new(ProgramId(65536), RESULT_THREAD_INDEX),
                slots: vec![None],
                targets: vec![],
                hint: SchedulingHint {
                    sticky: true,
                    ..Default::default()
                },
            }],
            objects: vec![WireMemObject {
                addr: GlobalAddress::new(SiteId(2), 4),
                program: ProgramId(65536),
                data: Value::from_u64(7),
                version: 2,
            }],
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let s = sample();
        let back = ProgramSnapshot::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.result_addr(), Some(GlobalAddress::new(SiteId(1), 9)));
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sdvm-cp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let s = sample();
        s.save_to_file(&path).unwrap();
        assert_eq!(ProgramSnapshot::load_from_file(&path).unwrap(), s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(ProgramSnapshot::from_bytes(&bytes).is_err());
    }
}
