//! The telemetry event bus: machine-checkable reproductions of the
//! paper's behavioural figures, with timestamps.
//!
//! Figure 4 (execution cycle) and Figure 5 (the career of microframes:
//! *incomplete → executable → ready → work*) describe runtime behaviour;
//! Figure 6 shows a message's hops through message → cluster → security →
//! network managers. Sites emit [`TraceEvent`]s at those points, so tests
//! can assert the exact lifecycle and the `trace_career` example prints
//! it for inspection.
//!
//! Since PR 3 the collector is a *bounded ring buffer* rather than an
//! unbounded `Vec`: every recorded event is wrapped in a [`BusEvent`]
//! carrying a bus-global sequence number, a per-site sequence number and
//! a monotonic microsecond timestamp (wall-clock time is derived on
//! demand from the bus construction epoch, so the emit hot path costs a
//! single `Instant::now()` and a short lock). Old events are overwritten
//! once the ring is full ([`TraceLog::dropped`] counts them), and
//! non-blocking subscriber taps ([`TraceLog::subscribe`]) receive live
//! copies without ever stalling an emitting site. The pre-PR 3 snapshot
//! API (`events`, `filter`, `len`, `career_of`, …) is preserved verbatim
//! so the chaos harness and the existing tests keep working unchanged.

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::{Mutex, RwLock};
use sdvm_types::{GlobalAddress, ManagerId, MicrothreadId, PlatformId, ProgramId, SiteId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Default ring capacity: large enough that every existing test and
/// example sees the complete event stream, small enough to bound memory
/// on long chaos runs.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Default depth of a subscriber tap's channel.
pub const DEFAULT_TAP_CAPACITY: usize = 1024;

/// Something observable happened inside a site.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A microframe was allocated (career state: *incomplete*).
    FrameCreated {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// The microthread it will fire.
        thread: MicrothreadId,
        /// Number of parameters it waits for.
        slots: usize,
    },
    /// A parameter was applied to a waiting frame.
    ParamApplied {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// Which slot was filled.
        slot: u32,
        /// Parameters still missing afterwards.
        missing: usize,
    },
    /// The frame received its last parameter (career: *executable*).
    FrameExecutable {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
    },
    /// The corresponding microthread's code was obtained (career: *ready*).
    FrameReady {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
    },
    /// The processing manager executed the frame (career: *work*; the
    /// frame is consumed).
    FrameExecuted {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// The microthread that ran.
        thread: MicrothreadId,
    },
    /// The scheduling manager sent a help request.
    HelpRequested {
        /// Requesting (idle) site.
        site: SiteId,
        /// Asked site.
        target: SiteId,
    },
    /// A help request was answered with a frame (work migrates).
    HelpGranted {
        /// Site that gave work away.
        site: SiteId,
        /// Site that asked.
        requester: SiteId,
        /// The migrated frame.
        frame: GlobalAddress,
        /// Locality score of the pick (argument objects near the
        /// requester / far from the granter score higher).
        score: i32,
    },
    /// A help request was answered with can't-help.
    HelpDenied {
        /// Site that had no work either.
        site: SiteId,
        /// Site that asked.
        requester: SiteId,
    },
    /// Code was requested from another site.
    CodeRequested {
        /// Requesting site.
        site: SiteId,
        /// The microthread.
        thread: MicrothreadId,
        /// Platform the binary is wanted for.
        platform: PlatformId,
    },
    /// Source code was compiled on the fly.
    CodeCompiled {
        /// Compiling site.
        site: SiteId,
        /// The microthread.
        thread: MicrothreadId,
        /// Target platform.
        platform: PlatformId,
    },
    /// One hop of an SDMessage through the manager stack (Fig. 6).
    MessageHop {
        /// Site the hop happened on.
        site: SiteId,
        /// Manager the message passed through.
        manager: ManagerId,
        /// Payload kind name.
        payload: &'static str,
        /// `true` while sending, `false` while receiving.
        outgoing: bool,
        /// Trace id the message's wire [`TraceContext`] carried
        /// (0 = untraced). Lets exporters stitch one logical operation's
        /// hops across sites.
        ///
        /// [`TraceContext`]: sdvm_wire::TraceContext
        trace: u32,
    },
    /// A site joined the cluster.
    SiteJoined {
        /// Observer.
        site: SiteId,
        /// The new site.
        joined: SiteId,
    },
    /// The failure detector moved a silent site to *suspected* (first
    /// phase of the two-phase detector; indirect probes are in flight).
    SiteSuspected {
        /// Observer.
        site: SiteId,
        /// The suspect.
        suspect: SiteId,
    },
    /// A suspicion was withdrawn: the suspect answered a probe, gossiped
    /// fresh liveness, or refuted with a bumped incarnation.
    SuspicionRefuted {
        /// Observer.
        site: SiteId,
        /// The no-longer-suspect.
        suspect: SiteId,
        /// Incarnation the site is now known to live at.
        incarnation: u64,
    },
    /// A message from a declared-dead incarnation of a site was fenced
    /// (dropped) instead of re-admitting the zombie into membership.
    StaleIncarnation {
        /// Observer that fenced the message.
        site: SiteId,
        /// The zombie sender.
        from: SiteId,
        /// The stale incarnation the message carried.
        incarnation: u64,
    },
    /// A site left (orderly) or was declared crashed.
    SiteGone {
        /// Observer.
        site: SiteId,
        /// The departed site.
        gone: SiteId,
        /// True if it crashed, false if it signed off.
        crashed: bool,
    },
    /// Crash recovery revived backed-up state.
    Recovered {
        /// Site performing the recovery.
        site: SiteId,
        /// The dead site whose work was revived.
        dead: SiteId,
        /// Frames revived.
        frames: usize,
        /// Memory objects revived.
        objects: usize,
    },
    /// A frame's execution failed on an infrastructure error and it was
    /// re-enqueued with backoff (budgeted — see
    /// `SiteConfig::max_frame_retries`).
    FrameRetried {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// The microthread it fires.
        thread: MicrothreadId,
        /// Which retry this is (1-based).
        attempt: u32,
    },
    /// A poisoned frame (panicked handler, application error, or
    /// exhausted retry budget) was moved to the site's dead-letter store.
    FrameQuarantined {
        /// Site that quarantined it.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// The microthread it would have fired.
        thread: MicrothreadId,
        /// The cause, stringified. Boxed behind an `Arc` so this cold
        /// variant does not grow `TraceEvent` (and with it every ring
        /// slot) past one cache line.
        cause: Arc<String>,
    },
    /// The supervisor replaced a worker-slot thread that died despite
    /// panic isolation.
    WorkerRespawned {
        /// Site whose worker died.
        site: SiteId,
        /// The processing slot that was respawned.
        slot: u32,
    },
    /// The stuck-program watchdog declared a program stuck: undelivered
    /// result, no runnable frames, no in-flight requests.
    ProgramStuck {
        /// The program's frontend site.
        site: SiteId,
        /// The stuck program.
        program: ProgramId,
    },
    /// The flight recorder wrote a postmortem black box.
    PostmortemWritten {
        /// Site whose recorder fired.
        site: SiteId,
        /// The trigger that claimed the dump slot (stable name, e.g.
        /// `declare_crashed`).
        trigger: &'static str,
        /// Path of the written file, `Arc`'d so this cold variant does
        /// not grow every ring slot.
        path: Arc<String>,
    },
    /// A cached read replica was dropped on an owner's invalidation.
    ReplicaInvalidated {
        /// Site that held (and dropped) the replica.
        site: SiteId,
        /// The invalidated object.
        object: GlobalAddress,
        /// The owner's new write version that made the copy stale.
        version: u64,
    },
    /// The replication manager dispatched one replica of a frame
    /// (vote-mode ballot or hedge duplicate).
    ReplicaDispatched {
        /// Coordinating site (the frame's home).
        site: SiteId,
        /// The replicated frame.
        frame: GlobalAddress,
        /// Executing site the replica went to.
        target: SiteId,
        /// Dispatch round.
        generation: u32,
        /// Replica index within the round.
        replica: u8,
        /// True for vote-mode ballots, false for hedge duplicates.
        vote: bool,
    },
    /// Successful vote-mode replicas of a frame disagreed on the result
    /// — silent data corruption surfaced.
    ResultDivergence {
        /// Coordinating site that compared the ballots.
        site: SiteId,
        /// The frame whose replicas diverged.
        frame: GlobalAddress,
        /// The microthread that ran.
        thread: MicrothreadId,
    },
    /// A frame blew its hedge deadline and a duplicate was dispatched to
    /// another site.
    HedgeFired {
        /// Coordinating site (the frame's home).
        site: SiteId,
        /// The straggling frame.
        frame: GlobalAddress,
        /// Site the hedge duplicate went to.
        target: SiteId,
    },
    /// A hedge duplicate finished first: the hedge won the race against
    /// the straggler.
    HedgeWon {
        /// Coordinating site.
        site: SiteId,
        /// The hedged frame.
        frame: GlobalAddress,
        /// Site whose execution completed the frame.
        winner: SiteId,
    },
}

impl TraceEvent {
    /// The site that observed/emitted this event.
    pub fn site(&self) -> SiteId {
        match self {
            TraceEvent::FrameCreated { site, .. }
            | TraceEvent::ParamApplied { site, .. }
            | TraceEvent::FrameExecutable { site, .. }
            | TraceEvent::FrameReady { site, .. }
            | TraceEvent::FrameExecuted { site, .. }
            | TraceEvent::HelpRequested { site, .. }
            | TraceEvent::HelpGranted { site, .. }
            | TraceEvent::HelpDenied { site, .. }
            | TraceEvent::CodeRequested { site, .. }
            | TraceEvent::CodeCompiled { site, .. }
            | TraceEvent::MessageHop { site, .. }
            | TraceEvent::SiteJoined { site, .. }
            | TraceEvent::SiteSuspected { site, .. }
            | TraceEvent::SuspicionRefuted { site, .. }
            | TraceEvent::StaleIncarnation { site, .. }
            | TraceEvent::SiteGone { site, .. }
            | TraceEvent::Recovered { site, .. }
            | TraceEvent::FrameRetried { site, .. }
            | TraceEvent::FrameQuarantined { site, .. }
            | TraceEvent::WorkerRespawned { site, .. }
            | TraceEvent::ProgramStuck { site, .. }
            | TraceEvent::PostmortemWritten { site, .. }
            | TraceEvent::ReplicaInvalidated { site, .. }
            | TraceEvent::ReplicaDispatched { site, .. }
            | TraceEvent::ResultDivergence { site, .. }
            | TraceEvent::HedgeFired { site, .. }
            | TraceEvent::HedgeWon { site, .. } => *site,
        }
    }

    /// The telemetry category this event belongs to (the unit the
    /// `SDVM_TELEMETRY` env filter selects on).
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::FrameCreated { .. }
            | TraceEvent::ParamApplied { .. }
            | TraceEvent::FrameExecutable { .. }
            | TraceEvent::FrameReady { .. }
            | TraceEvent::FrameExecuted { .. } => Category::Career,
            TraceEvent::HelpRequested { .. }
            | TraceEvent::HelpGranted { .. }
            | TraceEvent::HelpDenied { .. } => Category::Help,
            TraceEvent::CodeRequested { .. } | TraceEvent::CodeCompiled { .. } => Category::Code,
            TraceEvent::MessageHop { .. } => Category::Hops,
            TraceEvent::SiteJoined { .. } | TraceEvent::SiteGone { .. } => Category::Membership,
            TraceEvent::SiteSuspected { .. }
            | TraceEvent::SuspicionRefuted { .. }
            | TraceEvent::StaleIncarnation { .. } => Category::Detector,
            TraceEvent::Recovered { .. } => Category::Recovery,
            TraceEvent::FrameRetried { .. }
            | TraceEvent::FrameQuarantined { .. }
            | TraceEvent::WorkerRespawned { .. }
            | TraceEvent::ProgramStuck { .. }
            | TraceEvent::PostmortemWritten { .. }
            | TraceEvent::ReplicaDispatched { .. }
            | TraceEvent::ResultDivergence { .. }
            | TraceEvent::HedgeFired { .. }
            | TraceEvent::HedgeWon { .. } => Category::Engine,
            TraceEvent::ReplicaInvalidated { .. } => Category::Memory,
        }
    }
}

/// Coarse event families the `SDVM_TELEMETRY` filter selects on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum Category {
    /// Microframe career transitions (Fig. 5).
    Career = 1 << 0,
    /// Help-request traffic (work stealing / migration).
    Help = 1 << 1,
    /// Code requests and on-the-fly compiles.
    Code = 1 << 2,
    /// Message hops through the manager stack (Fig. 6).
    Hops = 1 << 3,
    /// Join / sign-off / crash declarations.
    Membership = 1 << 4,
    /// Failure-detector internals (suspicions, refutations, fencing).
    Detector = 1 << 5,
    /// Crash recovery.
    Recovery = 1 << 6,
    /// Execution-engine robustness: retries, quarantines, worker
    /// respawns, stuck-program verdicts.
    Engine = 1 << 7,
    /// Attraction-memory coherence (replica invalidations).
    Memory = 1 << 8,
}

impl Category {
    const ALL: u32 = 0x1ff;

    fn from_name(name: &str) -> Option<u32> {
        Some(match name {
            "career" => Category::Career as u32,
            "help" => Category::Help as u32,
            "code" => Category::Code as u32,
            "hops" => Category::Hops as u32,
            "membership" => Category::Membership as u32,
            "detector" => Category::Detector as u32,
            "recovery" => Category::Recovery as u32,
            "engine" => Category::Engine as u32,
            "memory" => Category::Memory as u32,
            "all" => Category::ALL,
            "off" | "none" => 0,
            _ => return None,
        })
    }

    /// Parse an `SDVM_TELEMETRY`-style spec (comma-separated category
    /// names, `all`, or `off`) into a category bitmask. Unknown names are
    /// ignored; an empty spec means *all*.
    pub fn parse_spec(spec: &str) -> u32 {
        let spec = spec.trim();
        if spec.is_empty() {
            return Category::ALL;
        }
        let mut mask = 0u32;
        let mut any = false;
        for part in spec.split(',') {
            if let Some(bits) = Category::from_name(part.trim()) {
                mask |= bits;
                any = true;
            }
        }
        if any {
            mask
        } else {
            Category::ALL
        }
    }
}

/// One recorded event with its bus metadata: timestamps and sequencing.
#[derive(Clone, Debug, PartialEq)]
pub struct BusEvent {
    /// Bus-global sequence number (total order of arrival at this log).
    pub seq: u64,
    /// Per-site sequence number (order within the emitting site).
    pub site_seq: u64,
    /// Monotonic microseconds since the bus was created. Wall-clock time
    /// is `TraceLog::epoch_wall_micros() + at_micros`.
    pub at_micros: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// The bounded ring holding recent events, behind one short lock.
struct Ring {
    buf: VecDeque<BusEvent>,
    cap: usize,
    next_seq: u64,
    // Linear scan beats hashing: a cluster has a handful of sites and
    // this sits on the per-emit hot path under the lock.
    site_seqs: Vec<(SiteId, u64)>,
}

struct BusInner {
    ring: Mutex<Ring>,
    /// Monotonic zero point for every `at_micros`.
    epoch: Instant,
    /// Wall-clock microseconds since the UNIX epoch at `epoch`, captured
    /// once so the emit path never makes a wall-clock syscall.
    epoch_wall_micros: u64,
    /// Category bitmask; events outside it are not recorded.
    filter_mask: u32,
    /// Echo each event to stderr (examples / debugging).
    echo: bool,
    /// Events overwritten by ring wraparound.
    overwritten: AtomicU64,
    /// Events a full subscriber tap failed to receive.
    tap_dropped: AtomicU64,
    /// Cheap emptiness check so emit skips the subscriber lock entirely
    /// in the common no-subscriber case.
    sub_count: AtomicUsize,
    subscribers: RwLock<Vec<Sender<BusEvent>>>,
}

/// A shared, thread-safe trace collector: the telemetry event bus.
#[derive(Clone)]
pub struct TraceLog {
    inner: Arc<BusInner>,
}

impl Default for TraceLog {
    fn default() -> Self {
        Self::with_options(DEFAULT_RING_CAPACITY, Category::ALL, false)
    }
}

impl TraceLog {
    /// A collecting log with the default capacity, recording everything.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log that also prints each event to stderr (for the examples).
    /// The line is formatted *before* the ring lock is taken, so echoing
    /// never serializes sites through lock-held I/O.
    pub fn echoing() -> Self {
        Self::with_options(DEFAULT_RING_CAPACITY, Category::ALL, true)
    }

    /// A log with a specific ring capacity (`cap >= 1`).
    pub fn with_capacity(cap: usize) -> Self {
        Self::with_options(cap, Category::ALL, false)
    }

    /// A log recording only the categories in `mask` (see
    /// [`Category::parse_spec`]).
    pub fn with_filter(mask: u32) -> Self {
        Self::with_options(DEFAULT_RING_CAPACITY, mask, false)
    }

    /// A log configured from the `SDVM_TELEMETRY` environment variable
    /// (comma-separated category names, `all`, or `off`; unset = all).
    pub fn from_env() -> Self {
        let mask = match std::env::var("SDVM_TELEMETRY") {
            Ok(spec) => Category::parse_spec(&spec),
            Err(_) => Category::ALL,
        };
        Self::with_filter(mask)
    }

    fn with_options(cap: usize, filter_mask: u32, echo: bool) -> Self {
        let cap = cap.max(1);
        let epoch_wall_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        TraceLog {
            inner: Arc::new(BusInner {
                ring: Mutex::new(Ring {
                    buf: VecDeque::with_capacity(cap),
                    cap,
                    next_seq: 0,
                    site_seqs: Vec::new(),
                }),
                epoch: Instant::now(),
                epoch_wall_micros,
                filter_mask,
                echo,
                overwritten: AtomicU64::new(0),
                tap_dropped: AtomicU64::new(0),
                sub_count: AtomicUsize::new(0),
                subscribers: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Record one event, reading the clock once.
    pub fn emit(&self, ev: TraceEvent) {
        if ev.category() as u32 & self.inner.filter_mask == 0 {
            return;
        }
        self.record(ev, Instant::now());
    }

    /// Record one event using an [`Instant`] the caller already read —
    /// the hot paths time their work anyway (seal, open, dispatch), so
    /// sharing that read keeps telemetry to one clock read per event.
    pub fn emit_at(&self, ev: TraceEvent, now: Instant) {
        if ev.category() as u32 & self.inner.filter_mask == 0 {
            return;
        }
        self.record(ev, now);
    }

    /// Record two events under a single ring-lock acquisition, using
    /// clocks the caller already read. The send path emits exactly two
    /// hops per outbound message (message manager, then network
    /// manager); pairing them halves its lock traffic.
    pub fn emit_pair_at(&self, ev0: TraceEvent, t0: Instant, ev1: TraceEvent, t1: Instant) {
        let mask = self.inner.filter_mask;
        let keep0 = ev0.category() as u32 & mask != 0;
        let keep1 = ev1.category() as u32 & mask != 0;
        match (keep0, keep1) {
            (true, true) => {
                let at0 = self.micros_since_epoch(t0);
                let at1 = self.micros_since_epoch(t1);
                self.record_pair(ev0, at0, ev1, at1);
            }
            (true, false) => self.record(ev0, t0),
            (false, true) => self.record(ev1, t1),
            (false, false) => {}
        }
    }

    /// Whether this log records events of `cat` at all. Hot paths check
    /// before paying for work that only feeds the bus (clock reads,
    /// event construction) — a filtered-out category costs one mask
    /// test.
    pub fn wants(&self, cat: Category) -> bool {
        cat as u32 & self.inner.filter_mask != 0
    }

    fn micros_since_epoch(&self, now: Instant) -> u64 {
        // u64 arithmetic: `Duration::as_micros` divides in u128, which
        // shows up on the per-event hot path.
        let d = now.saturating_duration_since(self.inner.epoch);
        d.as_secs() * 1_000_000 + d.subsec_micros() as u64
    }

    fn record(&self, ev: TraceEvent, now: Instant) {
        let inner = &*self.inner;
        let at_micros = self.micros_since_epoch(now);
        // Format the echo line *outside* the ring lock (satellite fix:
        // echo mode used to serialize all sites through lock + stdout).
        let echo_line = inner.echo.then(|| format!("[trace +{at_micros}us] {ev:?}"));
        // Only clone the event out of the ring when a subscriber wants a
        // copy — the common no-subscriber emit stays clone-free.
        let want_copy = inner.sub_count.load(Ordering::Acquire) > 0;
        let mut overwrote = 0u64;
        let for_subs = {
            let mut ring = inner.ring.lock();
            push_locked(&mut ring, ev, at_micros, want_copy, &mut overwrote)
        };
        if overwrote > 0 {
            inner.overwritten.fetch_add(overwrote, Ordering::Relaxed);
        }
        if let Some(line) = echo_line {
            eprintln!("{line}");
        }
        if let Some(bus_ev) = for_subs {
            self.fan_out(&bus_ev);
        }
    }

    fn record_pair(&self, ev0: TraceEvent, at0: u64, ev1: TraceEvent, at1: u64) {
        let inner = &*self.inner;
        let echo_lines = inner.echo.then(|| {
            (
                format!("[trace +{at0}us] {ev0:?}"),
                format!("[trace +{at1}us] {ev1:?}"),
            )
        });
        let want_copy = inner.sub_count.load(Ordering::Acquire) > 0;
        let mut overwrote = 0u64;
        let (s0, s1) = {
            let mut ring = inner.ring.lock();
            (
                push_locked(&mut ring, ev0, at0, want_copy, &mut overwrote),
                push_locked(&mut ring, ev1, at1, want_copy, &mut overwrote),
            )
        };
        if overwrote > 0 {
            inner.overwritten.fetch_add(overwrote, Ordering::Relaxed);
        }
        if let Some((l0, l1)) = echo_lines {
            eprintln!("{l0}\n{l1}");
        }
        for bus_ev in [s0, s1].into_iter().flatten() {
            self.fan_out(&bus_ev);
        }
    }

    fn fan_out(&self, bus_ev: &BusEvent) {
        let inner = &*self.inner;
        let subs = inner.subscribers.read();
        for tx in subs.iter() {
            match tx.try_send(bus_ev.clone()) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    inner.tap_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Attach a non-blocking subscriber tap with the default channel
    /// depth. Emitters never block on a slow subscriber: once the tap's
    /// channel is full, further events are dropped for that tap (counted
    /// in [`TraceLog::tap_dropped`]) while the ring keeps recording.
    pub fn subscribe(&self) -> Receiver<BusEvent> {
        self.subscribe_with_capacity(DEFAULT_TAP_CAPACITY)
    }

    /// Attach a subscriber tap with an explicit channel depth.
    pub fn subscribe_with_capacity(&self, cap: usize) -> Receiver<BusEvent> {
        let (tx, rx) = bounded(cap.max(1));
        let mut subs = self.inner.subscribers.write();
        subs.push(tx);
        self.inner.sub_count.store(subs.len(), Ordering::Release);
        rx
    }

    /// Events overwritten by ring wraparound so far.
    pub fn dropped(&self) -> u64 {
        self.inner.overwritten.load(Ordering::Relaxed)
    }

    /// Events dropped because a subscriber tap's channel was full.
    pub fn tap_dropped(&self) -> u64 {
        self.inner.tap_dropped.load(Ordering::Relaxed)
    }

    /// Total events recorded since creation (including overwritten ones).
    pub fn total_emitted(&self) -> u64 {
        self.inner.ring.lock().next_seq
    }

    /// Wall-clock microseconds (since the UNIX epoch) at bus creation;
    /// add a [`BusEvent::at_micros`] to place an event on the wall clock.
    pub fn epoch_wall_micros(&self) -> u64 {
        self.inner.epoch_wall_micros
    }

    /// Snapshot of the buffered events with their bus metadata
    /// (sequence numbers and timestamps), oldest first.
    pub fn timestamped(&self) -> Vec<BusEvent> {
        self.inner.ring.lock().buf.iter().cloned().collect()
    }

    /// Snapshot of all buffered events so far (compat API).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner
            .ring
            .lock()
            .buf
            .iter()
            .map(|b| b.event.clone())
            .collect()
    }

    /// Buffered events matching a predicate (compat API).
    pub fn filter(&self, f: impl Fn(&TraceEvent) -> bool) -> Vec<TraceEvent> {
        self.inner
            .ring
            .lock()
            .buf
            .iter()
            .filter(|b| f(&b.event))
            .map(|b| b.event.clone())
            .collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().buf.len()
    }

    /// True if no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.ring.lock().buf.is_empty()
    }

    /// The career (ordered trace states) of one frame, as Figure 5 names
    /// them: `created → applied* → executable → ready → executed`, with
    /// possible migration in between.
    pub fn career_of(&self, frame: GlobalAddress) -> Vec<String> {
        self.inner
            .ring
            .lock()
            .buf
            .iter()
            .filter_map(|b| match &b.event {
                TraceEvent::FrameCreated { frame: f, .. } if *f == frame => {
                    Some("incomplete".to_string())
                }
                TraceEvent::ParamApplied { frame: f, .. } if *f == frame => {
                    Some("param".to_string())
                }
                TraceEvent::FrameExecutable { frame: f, .. } if *f == frame => {
                    Some("executable".to_string())
                }
                TraceEvent::FrameReady { frame: f, .. } if *f == frame => Some("ready".to_string()),
                TraceEvent::FrameExecuted { frame: f, .. } if *f == frame => {
                    Some("executed".to_string())
                }
                TraceEvent::HelpGranted { frame: f, .. } if *f == frame => {
                    Some("migrated".to_string())
                }
                _ => None,
            })
            .collect()
    }
}

/// Append one event to the ring (the lock is already held), assigning
/// its sequence numbers and handling wraparound. Returns a copy for
/// subscriber fan-out when `want_copy` is set. Overwritten events are
/// tallied into `overwrote` so the caller can settle the shared counter
/// once, outside the lock.
fn push_locked(
    ring: &mut Ring,
    ev: TraceEvent,
    at_micros: u64,
    want_copy: bool,
    overwrote: &mut u64,
) -> Option<BusEvent> {
    let seq = ring.next_seq;
    ring.next_seq += 1;
    let site = ev.site();
    let site_seq = match ring.site_seqs.iter_mut().find(|(s, _)| *s == site) {
        Some((_, n)) => {
            let v = *n;
            *n += 1;
            v
        }
        None => {
            ring.site_seqs.push((site, 1));
            0
        }
    };
    let bus_ev = BusEvent {
        seq,
        site_seq,
        at_micros,
        event: ev,
    };
    if ring.buf.len() == ring.cap {
        ring.buf.pop_front();
        *overwrote += 1;
    }
    let for_subs = want_copy.then(|| bus_ev.clone());
    ring.buf.push_back(bus_ev);
    for_subs
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use sdvm_types::ProgramId;

    #[test]
    fn collects_and_filters() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        log.emit(TraceEvent::SiteJoined {
            site: SiteId(1),
            joined: SiteId(2),
        });
        log.emit(TraceEvent::SiteGone {
            site: SiteId(1),
            gone: SiteId(2),
            crashed: true,
        });
        assert_eq!(log.len(), 2);
        let crashes = log.filter(|e| matches!(e, TraceEvent::SiteGone { crashed: true, .. }));
        assert_eq!(crashes.len(), 1);
    }

    #[test]
    fn career_extraction() {
        let log = TraceLog::new();
        let frame = GlobalAddress::new(SiteId(1), 1);
        let other = GlobalAddress::new(SiteId(1), 2);
        let thread = MicrothreadId::new(ProgramId(1), 0);
        log.emit(TraceEvent::FrameCreated {
            site: SiteId(1),
            frame,
            thread,
            slots: 1,
        });
        log.emit(TraceEvent::FrameCreated {
            site: SiteId(1),
            frame: other,
            thread,
            slots: 1,
        });
        log.emit(TraceEvent::ParamApplied {
            site: SiteId(1),
            frame,
            slot: 0,
            missing: 0,
        });
        log.emit(TraceEvent::FrameExecutable {
            site: SiteId(1),
            frame,
        });
        log.emit(TraceEvent::FrameReady {
            site: SiteId(1),
            frame,
        });
        log.emit(TraceEvent::FrameExecuted {
            site: SiteId(1),
            frame,
            thread,
        });
        assert_eq!(
            log.career_of(frame),
            vec!["incomplete", "param", "executable", "ready", "executed"]
        );
        assert_eq!(log.career_of(other), vec!["incomplete"]);
    }

    #[test]
    fn sequences_and_timestamps_are_monotonic() {
        let log = TraceLog::new();
        for i in 0..5 {
            log.emit(TraceEvent::SiteJoined {
                site: SiteId(1 + (i % 2)),
                joined: SiteId(9),
            });
        }
        let evs = log.timestamped();
        assert_eq!(evs.len(), 5);
        for (i, b) in evs.iter().enumerate() {
            assert_eq!(b.seq, i as u64);
        }
        for w in evs.windows(2) {
            assert!(w[1].at_micros >= w[0].at_micros);
        }
        // Per-site sequences count independently.
        let site1: Vec<u64> = evs
            .iter()
            .filter(|b| b.event.site() == SiteId(1))
            .map(|b| b.site_seq)
            .collect();
        assert_eq!(site1, vec![0, 1, 2]);
    }

    #[test]
    fn category_spec_parses() {
        assert_eq!(Category::parse_spec("all"), Category::ALL);
        assert_eq!(Category::parse_spec("off"), 0);
        assert_eq!(
            Category::parse_spec("career,hops"),
            Category::Career as u32 | Category::Hops as u32
        );
        // Unknown-only specs fall back to everything.
        assert_eq!(Category::parse_spec("bogus"), Category::ALL);
    }

    #[test]
    fn filtered_categories_are_not_recorded() {
        let log = TraceLog::with_filter(Category::Career as u32);
        log.emit(TraceEvent::SiteJoined {
            site: SiteId(1),
            joined: SiteId(2),
        });
        assert!(log.is_empty());
        log.emit(TraceEvent::FrameExecutable {
            site: SiteId(1),
            frame: GlobalAddress::new(SiteId(1), 1),
        });
        assert_eq!(log.len(), 1);
    }
}
