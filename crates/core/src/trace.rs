//! Event tracing: machine-checkable reproductions of the paper's
//! behavioural figures.
//!
//! Figure 4 (execution cycle) and Figure 5 (the career of microframes:
//! *incomplete → executable → ready → work*) describe runtime behaviour;
//! Figure 6 shows a message's hops through message → cluster → security →
//! network managers. Sites emit [`TraceEvent`]s at those points, so tests
//! can assert the exact lifecycle and the `trace_career` example prints
//! it for inspection.

use parking_lot::Mutex;
use sdvm_types::{GlobalAddress, ManagerId, MicrothreadId, PlatformId, SiteId};
use std::sync::Arc;

/// Something observable happened inside a site.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A microframe was allocated (career state: *incomplete*).
    FrameCreated {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// The microthread it will fire.
        thread: MicrothreadId,
        /// Number of parameters it waits for.
        slots: usize,
    },
    /// A parameter was applied to a waiting frame.
    ParamApplied {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// Which slot was filled.
        slot: u32,
        /// Parameters still missing afterwards.
        missing: usize,
    },
    /// The frame received its last parameter (career: *executable*).
    FrameExecutable {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
    },
    /// The corresponding microthread's code was obtained (career: *ready*).
    FrameReady {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
    },
    /// The processing manager executed the frame (career: *work*; the
    /// frame is consumed).
    FrameExecuted {
        /// Site where it happened.
        site: SiteId,
        /// The frame.
        frame: GlobalAddress,
        /// The microthread that ran.
        thread: MicrothreadId,
    },
    /// The scheduling manager sent a help request.
    HelpRequested {
        /// Requesting (idle) site.
        site: SiteId,
        /// Asked site.
        target: SiteId,
    },
    /// A help request was answered with a frame (work migrates).
    HelpGranted {
        /// Site that gave work away.
        site: SiteId,
        /// Site that asked.
        requester: SiteId,
        /// The migrated frame.
        frame: GlobalAddress,
    },
    /// A help request was answered with can't-help.
    HelpDenied {
        /// Site that had no work either.
        site: SiteId,
        /// Site that asked.
        requester: SiteId,
    },
    /// Code was requested from another site.
    CodeRequested {
        /// Requesting site.
        site: SiteId,
        /// The microthread.
        thread: MicrothreadId,
        /// Platform the binary is wanted for.
        platform: PlatformId,
    },
    /// Source code was compiled on the fly.
    CodeCompiled {
        /// Compiling site.
        site: SiteId,
        /// The microthread.
        thread: MicrothreadId,
        /// Target platform.
        platform: PlatformId,
    },
    /// One hop of an SDMessage through the manager stack (Fig. 6).
    MessageHop {
        /// Site the hop happened on.
        site: SiteId,
        /// Manager the message passed through.
        manager: ManagerId,
        /// Payload kind name.
        payload: &'static str,
        /// `true` while sending, `false` while receiving.
        outgoing: bool,
    },
    /// A site joined the cluster.
    SiteJoined {
        /// Observer.
        site: SiteId,
        /// The new site.
        joined: SiteId,
    },
    /// The failure detector moved a silent site to *suspected* (first
    /// phase of the two-phase detector; indirect probes are in flight).
    SiteSuspected {
        /// Observer.
        site: SiteId,
        /// The suspect.
        suspect: SiteId,
    },
    /// A suspicion was withdrawn: the suspect answered a probe, gossiped
    /// fresh liveness, or refuted with a bumped incarnation.
    SuspicionRefuted {
        /// Observer.
        site: SiteId,
        /// The no-longer-suspect.
        suspect: SiteId,
        /// Incarnation the site is now known to live at.
        incarnation: u64,
    },
    /// A message from a declared-dead incarnation of a site was fenced
    /// (dropped) instead of re-admitting the zombie into membership.
    StaleIncarnation {
        /// Observer that fenced the message.
        site: SiteId,
        /// The zombie sender.
        from: SiteId,
        /// The stale incarnation the message carried.
        incarnation: u64,
    },
    /// A site left (orderly) or was declared crashed.
    SiteGone {
        /// Observer.
        site: SiteId,
        /// The departed site.
        gone: SiteId,
        /// True if it crashed, false if it signed off.
        crashed: bool,
    },
    /// Crash recovery revived backed-up state.
    Recovered {
        /// Site performing the recovery.
        site: SiteId,
        /// The dead site whose work was revived.
        dead: SiteId,
        /// Frames revived.
        frames: usize,
        /// Memory objects revived.
        objects: usize,
    },
}

/// A shared, thread-safe trace collector.
#[derive(Clone, Default)]
pub struct TraceLog {
    inner: Arc<Mutex<Vec<TraceEvent>>>,
    echo: bool,
}

impl TraceLog {
    /// A collecting log.
    pub fn new() -> Self {
        Self::default()
    }

    /// A log that also prints each event to stdout (for the examples).
    pub fn echoing() -> Self {
        TraceLog {
            inner: Arc::default(),
            echo: true,
        }
    }

    /// Record one event.
    pub fn emit(&self, ev: TraceEvent) {
        if self.echo {
            println!("[trace] {ev:?}");
        }
        self.inner.lock().push(ev);
    }

    /// Snapshot of all events so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.lock().clone()
    }

    /// Events matching a predicate.
    pub fn filter(&self, f: impl Fn(&TraceEvent) -> bool) -> Vec<TraceEvent> {
        self.inner.lock().iter().filter(|e| f(e)).cloned().collect()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// The career (ordered trace states) of one frame, as Figure 5 names
    /// them: `created → applied* → executable → ready → executed`, with
    /// possible migration in between.
    pub fn career_of(&self, frame: GlobalAddress) -> Vec<String> {
        self.inner
            .lock()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::FrameCreated { frame: f, .. } if *f == frame => {
                    Some("incomplete".to_string())
                }
                TraceEvent::ParamApplied { frame: f, .. } if *f == frame => {
                    Some("param".to_string())
                }
                TraceEvent::FrameExecutable { frame: f, .. } if *f == frame => {
                    Some("executable".to_string())
                }
                TraceEvent::FrameReady { frame: f, .. } if *f == frame => Some("ready".to_string()),
                TraceEvent::FrameExecuted { frame: f, .. } if *f == frame => {
                    Some("executed".to_string())
                }
                TraceEvent::HelpGranted { frame: f, .. } if *f == frame => {
                    Some("migrated".to_string())
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdvm_types::ProgramId;

    #[test]
    fn collects_and_filters() {
        let log = TraceLog::new();
        assert!(log.is_empty());
        log.emit(TraceEvent::SiteJoined {
            site: SiteId(1),
            joined: SiteId(2),
        });
        log.emit(TraceEvent::SiteGone {
            site: SiteId(1),
            gone: SiteId(2),
            crashed: true,
        });
        assert_eq!(log.len(), 2);
        let crashes = log.filter(|e| matches!(e, TraceEvent::SiteGone { crashed: true, .. }));
        assert_eq!(crashes.len(), 1);
    }

    #[test]
    fn career_extraction() {
        let log = TraceLog::new();
        let frame = GlobalAddress::new(SiteId(1), 1);
        let other = GlobalAddress::new(SiteId(1), 2);
        let thread = MicrothreadId::new(ProgramId(1), 0);
        log.emit(TraceEvent::FrameCreated {
            site: SiteId(1),
            frame,
            thread,
            slots: 1,
        });
        log.emit(TraceEvent::FrameCreated {
            site: SiteId(1),
            frame: other,
            thread,
            slots: 1,
        });
        log.emit(TraceEvent::ParamApplied {
            site: SiteId(1),
            frame,
            slot: 0,
            missing: 0,
        });
        log.emit(TraceEvent::FrameExecutable {
            site: SiteId(1),
            frame,
        });
        log.emit(TraceEvent::FrameReady {
            site: SiteId(1),
            frame,
        });
        log.emit(TraceEvent::FrameExecuted {
            site: SiteId(1),
            frame,
            thread,
        });
        assert_eq!(
            log.career_of(frame),
            vec!["incomplete", "param", "executable", "ready", "executed"]
        );
        assert_eq!(log.career_of(other), vec!["incomplete"]);
    }
}
