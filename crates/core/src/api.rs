//! The SDVM programming interface.
//!
//! An application is split into microthreads registered on an
//! [`AppBuilder`]; inside a microthread, every interaction with the SDVM
//! goes through the [`ExecCtx`] — the paper's "special instructions [...]
//! the only interface between the program running on the SDVM and the
//! SDVM itself": extracting parameters, creating (allocating) new
//! microframes, sending results to target microframes, global memory
//! access, and I/O.
//!
//! [`InProcessCluster`] builds whole clusters inside one process on the
//! in-memory transport — the unit under test for almost everything in
//! this repository; the same [`Site`] API runs over TCP for real
//! multi-process clusters (see the `secure_cluster` example).

use crate::config::SiteConfig;
use crate::frame::Microframe;
use crate::managers::program::ProgramInfo;
use crate::site::{Site, SiteInner};
use crate::thread::{AppRegistry, ThreadSpec, RESULT_THREAD_INDEX};
use crate::trace::TraceLog;
use bytes::Bytes;
use parking_lot::Mutex;
use sdvm_net::{MemHub, Transport};
use sdvm_types::{
    FailurePolicy, FileHandle, GlobalAddress, ManagerId, MicrothreadId, ProgramId,
    ReplicationPolicy, SchedulingHint, SdvmError, SdvmResult, SiteId, Value,
};
use sdvm_wire::Payload;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Builder for an SDVM application: a named collection of microthreads.
///
/// The partitioning into microthreads is the programmer's (or a
/// compiler's) job — "the programmer only has to split his application
/// into tasks" (§2.1). No knowledge of the cluster is needed: the same
/// application runs on any SDVM cluster.
#[derive(Default)]
pub struct AppBuilder {
    name: String,
    threads: Vec<ThreadSpec>,
    failure_policy: FailurePolicy,
    replication: ReplicationPolicy,
}

impl AppBuilder {
    /// Start building an application.
    pub fn new(name: &str) -> Self {
        AppBuilder {
            name: name.to_string(),
            threads: Vec::new(),
            failure_policy: FailurePolicy::default(),
            replication: ReplicationPolicy::default(),
        }
    }

    /// What the frontend does when a frame of this program is
    /// quarantined as poison: fail the whole program (default) or report
    /// the loss and keep the rest running.
    pub fn on_failure(mut self, policy: FailurePolicy) -> Self {
        self.failure_policy = policy;
        self
    }

    /// Set the failure policy in place (for builders held by reference).
    pub fn set_failure_policy(&mut self, policy: FailurePolicy) {
        self.failure_policy = policy;
    }

    /// How this program's microframes are dispatched: plainly
    /// (default), as `k` voting replicas on distinct sites (against
    /// silent data corruption), or with a hedged duplicate after a delay
    /// (against stragglers). Announced cluster-wide at registration.
    pub fn replicate(mut self, policy: ReplicationPolicy) -> Self {
        self.replication = policy;
        self
    }

    /// Set the replication policy in place (for builders held by
    /// reference).
    pub fn set_replication(&mut self, policy: ReplicationPolicy) {
        self.replication = policy;
    }

    /// The configured replication policy.
    pub fn replication(&self) -> ReplicationPolicy {
        self.replication
    }

    /// Register a microthread; returns its code-table index, used when
    /// creating microframes for it.
    pub fn thread<F>(&mut self, name: &str, f: F) -> u32
    where
        F: Fn(&mut ExecCtx<'_>) -> SdvmResult<()> + Send + Sync + 'static,
    {
        let idx = self.threads.len() as u32;
        self.threads.push(ThreadSpec {
            name: name.to_string(),
            func: Arc::new(f),
        });
        idx
    }

    /// The application's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of registered microthreads.
    pub fn thread_count(&self) -> u32 {
        self.threads.len() as u32
    }
}

/// Handle to a launched program: await its result, read its output,
/// feed it input.
pub struct ProgramHandle {
    /// The program's cluster-wide id.
    pub program: ProgramId,
    /// Address of the hidden result frame (send the final value here).
    pub result_addr: GlobalAddress,
    result_rx: crossbeam::channel::Receiver<SdvmResult<Value>>,
    output_rx: crossbeam::channel::Receiver<String>,
    input_queue: Arc<Mutex<VecDeque<String>>>,
}

impl ProgramHandle {
    /// Block until the program settles: `Ok(value)` on success, or the
    /// error that terminated it (quarantined poison frame under
    /// fail-fast, stuck-program watchdog) — the handle never hangs on a
    /// program the cluster has given up on.
    pub fn wait(&self, timeout: Duration) -> SdvmResult<Value> {
        self.result_rx
            .recv_timeout(timeout)
            .map_err(|_| SdvmError::Timeout(format!("program {} result", self.program)))?
    }

    /// Drain all frontend output produced so far.
    pub fn drain_output(&self) -> Vec<String> {
        let mut out = Vec::new();
        while let Ok(line) = self.output_rx.try_recv() {
            out.push(line);
        }
        out
    }

    /// Block for the next output line.
    pub fn next_output(&self, timeout: Duration) -> SdvmResult<String> {
        self.output_rx
            .recv_timeout(timeout)
            .map_err(|_| SdvmError::Timeout("program output".into()))
    }

    /// Push a line of user input (consumed by `ExecCtx::input`).
    pub fn push_input(&self, line: &str) {
        self.input_queue.lock().push_back(line.to_string());
    }
}

/// Channels wired up when a program is installed on its frontend site:
/// (result receiver, output receiver, input queue).
type ProgramChannels = (
    crossbeam::channel::Receiver<SdvmResult<Value>>,
    crossbeam::channel::Receiver<String>,
    Arc<Mutex<VecDeque<String>>>,
);

/// The execution context handed to every microthread (and to the launch
/// bootstrap). Wraps one site's managers.
pub struct ExecCtx<'a> {
    site: &'a SiteInner,
    program: ProgramId,
    frame: Option<&'a Microframe>,
    /// Ballot buffer of a replicated execution: when set, `send` records
    /// `(target, slot, value)` here instead of applying it, so the
    /// coordinator can compare replicas and apply exactly one winner.
    ballot: Option<Arc<Mutex<Vec<sdvm_wire::WireSend>>>>,
}

impl<'a> ExecCtx<'a> {
    pub(crate) fn for_frame(site: &'a SiteInner, frame: &'a Microframe) -> Self {
        ExecCtx {
            site,
            program: frame.program(),
            frame: Some(frame),
            ballot: None,
        }
    }

    pub(crate) fn for_replica(
        site: &'a SiteInner,
        frame: &'a Microframe,
        ballot: Arc<Mutex<Vec<sdvm_wire::WireSend>>>,
    ) -> Self {
        ExecCtx {
            site,
            program: frame.program(),
            frame: Some(frame),
            ballot: Some(ballot),
        }
    }

    pub(crate) fn bootstrap(site: &'a SiteInner, program: ProgramId) -> Self {
        ExecCtx {
            site,
            program,
            frame: None,
            ballot: None,
        }
    }

    /// The program this execution belongs to.
    pub fn program(&self) -> ProgramId {
        self.program
    }

    /// The site executing this microthread.
    pub fn site_id(&self) -> SiteId {
        self.site.my_id()
    }

    /// The current frame's global id.
    pub fn frame_id(&self) -> SdvmResult<GlobalAddress> {
        self.frame
            .map(|f| f.id)
            .ok_or_else(|| SdvmError::InvalidState("bootstrap has no frame".into()))
    }

    /// Extract parameter `slot` from the microframe.
    pub fn param(&self, slot: u32) -> SdvmResult<&Value> {
        self.frame
            .ok_or_else(|| SdvmError::InvalidState("bootstrap has no parameters".into()))?
            .param(slot)
    }

    /// Number of parameter slots of the current frame.
    pub fn param_count(&self) -> usize {
        self.frame.map(|f| f.slots.len()).unwrap_or(0)
    }

    /// A statically attached target address of the current frame.
    pub fn target(&self, i: usize) -> SdvmResult<GlobalAddress> {
        self.frame
            .and_then(|f| f.targets.get(i).copied())
            .ok_or_else(|| SdvmError::InvalidState(format!("no target {i}")))
    }

    /// Number of target addresses of the current frame.
    pub fn target_count(&self) -> usize {
        self.frame.map(|f| f.targets.len()).unwrap_or(0)
    }

    /// Create (allocate) a new microframe for `thread_index`, waiting for
    /// `nslots` parameters, with result target addresses `targets`.
    /// Returns its global address, so results can be directed to it —
    /// "every microframe should be allocated as soon as possible, because
    /// its global address is known not before its allocation" (§3.2).
    pub fn create_frame(
        &mut self,
        thread_index: u32,
        nslots: usize,
        targets: Vec<GlobalAddress>,
        hint: SchedulingHint,
    ) -> GlobalAddress {
        let id = self.site.memory.fresh_address(self.site);
        let frame = Microframe::new(
            id,
            MicrothreadId::new(self.program, thread_index),
            nslots,
            targets,
            hint,
        );
        self.site.memory.create_frame(self.site, frame);
        id
    }

    /// Send a result to a target microframe's parameter slot (step 4 of
    /// a microthread's execution, §3.2). The frame may live anywhere in
    /// the cluster. In a replicated execution the send is buffered into
    /// the replica's ballot instead of applied — the coordinator applies
    /// the winning ballot exactly once.
    pub fn send(&mut self, target: GlobalAddress, slot: u32, value: Value) -> SdvmResult<()> {
        // Chaos hook: armed silent data corruption flips a bit here, in
        // the computed value, before buffering/applying — exactly what a
        // broken DIMM would do.
        let value = self.site.maybe_corrupt_result(value);
        if let Some(ballot) = &self.ballot {
            ballot.lock().push(sdvm_wire::WireSend {
                target,
                slot,
                value,
            });
            return Ok(());
        }
        self.site
            .memory
            .apply_or_forward(self.site, target, slot, value, 4)
    }

    /// Allocate a global memory object; it is accessible (and migrates)
    /// cluster-wide.
    pub fn alloc(&mut self, data: Value) -> GlobalAddress {
        self.site.memory.alloc(self.site, self.program, data)
    }

    /// Read a global object (snapshot copy; the object stays put).
    pub fn read(&mut self, addr: GlobalAddress) -> SdvmResult<Value> {
        self.site.memory.read(self.site, addr, false)
    }

    /// Read a global object and attract it to this site (ownership
    /// migration — the attraction-memory behaviour).
    pub fn read_migrate(&mut self, addr: GlobalAddress) -> SdvmResult<Value> {
        self.site.memory.read(self.site, addr, true)
    }

    /// Overwrite a global object at its current owner.
    pub fn write(&mut self, addr: GlobalAddress, value: Value) -> SdvmResult<()> {
        self.site.memory.write(self.site, addr, value)
    }

    /// Emit program output (routed to the frontend).
    pub fn output(&mut self, text: impl Into<String>) {
        self.site.io.output(self.site, self.program, text.into());
    }

    /// Request a line of user input (routed to the frontend).
    pub fn input(&mut self, prompt: &str) -> SdvmResult<String> {
        self.site.io.input(self.site, self.program, prompt)
    }

    /// Open a file on the executing site; the handle works cluster-wide.
    pub fn file_open(&mut self, path: &str, create: bool) -> SdvmResult<FileHandle> {
        self.site.io.file_open(self.site, path, create)
    }

    /// Read from a (possibly remote) file.
    pub fn file_read(&mut self, handle: FileHandle, offset: u64, len: u32) -> SdvmResult<Bytes> {
        self.site.io.file_read(self.site, handle, offset, len)
    }

    /// Write to a (possibly remote) file.
    pub fn file_write(&mut self, handle: FileHandle, offset: u64, data: Bytes) -> SdvmResult<()> {
        self.site.io.file_write(self.site, handle, offset, data)
    }

    /// Close a (possibly remote) file.
    pub fn file_close(&mut self, handle: FileHandle) -> SdvmResult<()> {
        self.site.io.file_close(self.site, handle)
    }

    /// Internal: the hidden result microthread delivers the program's
    /// final value.
    pub(crate) fn deliver_result(&mut self, value: Value) {
        self.site
            .program
            .finish_local(self.site, self.program, value);
    }
}

impl Site {
    /// Shared registration machinery of [`Site::launch`] and
    /// [`Site::restore_program`]: install the code table, program
    /// metadata, frontend and result waiter for `program` on this site
    /// and announce it cluster-wide.
    pub(crate) fn register_program_here(
        &self,
        app: &AppBuilder,
        program: ProgramId,
    ) -> SdvmResult<ProgramChannels> {
        let site = self.inner();
        if !site.my_id().is_valid() {
            return Err(SdvmError::InvalidState(
                "site not started (call start_first or sign_on)".into(),
            ));
        }
        site.registry
            .register(program, &app.name, app.threads.clone());
        site.program.register(
            program,
            ProgramInfo {
                code_home: site.my_id(),
                name: app.name.clone(),
                threads: app.thread_count(),
                terminated: false,
            },
        );
        site.code.mark_program_local(program, app.thread_count());
        site.program.set_policy(program, app.failure_policy);
        site.program.set_replication(program, app.replication);
        let (output_rx, input_queue) = site.io.attach_frontend(program);
        let result_rx = site.program.install_waiter(program);

        // Announce the program cluster-wide so foreign sites know its
        // code home.
        for p in site.cluster.known_sites() {
            if p != site.my_id() {
                let _ = site.send_payload(
                    p,
                    ManagerId::Program,
                    ManagerId::Program,
                    site.next_seq(),
                    Payload::ProgramRegister {
                        program,
                        code_home: site.my_id(),
                        name: app.name.clone(),
                        threads: app.thread_count(),
                        replication: app.replication,
                    },
                );
            }
        }
        Ok((result_rx, output_rx, input_queue))
    }

    /// Re-install an already-id'd program (checkpoint restore): no new
    /// result frame is created — the restored frames include it.
    pub(crate) fn relaunch_registered(
        &self,
        app: &AppBuilder,
        program: ProgramId,
        result_addr: GlobalAddress,
    ) -> SdvmResult<ProgramHandle> {
        let (result_rx, output_rx, input_queue) = self.register_program_here(app, program)?;
        Ok(ProgramHandle {
            program,
            result_addr,
            result_rx,
            output_rx,
            input_queue,
        })
    }

    /// Launch an application on this site. `bootstrap` runs once (like an
    /// initial microthread): it creates the program's first microframes
    /// and wires them to `result_addr`, the address the program's final
    /// value must be sent to.
    pub fn launch<F>(&self, app: &AppBuilder, bootstrap: F) -> SdvmResult<ProgramHandle>
    where
        F: FnOnce(&mut ExecCtx<'_>, GlobalAddress) -> SdvmResult<()>,
    {
        let site = self.inner();
        if !site.my_id().is_valid() {
            return Err(SdvmError::InvalidState(
                "site not started (call start_first or sign_on)".into(),
            ));
        }
        let program = site.program.alloc_program_id(site);
        let (result_rx, output_rx, input_queue) = self.register_program_here(app, program)?;

        // The hidden result frame: one slot, sticky (never migrates away
        // from the frontend site).
        let result_addr = {
            let id = site.memory.fresh_address(site);
            let hint = SchedulingHint {
                sticky: true,
                ..Default::default()
            };
            let frame = Microframe::new(
                id,
                MicrothreadId::new(program, RESULT_THREAD_INDEX),
                1,
                Vec::new(),
                hint,
            );
            site.memory.create_frame(site, frame);
            id
        };

        let mut ctx = ExecCtx::bootstrap(site, program);
        bootstrap(&mut ctx, result_addr)?;

        Ok(ProgramHandle {
            program,
            result_addr,
            result_rx,
            output_rx,
            input_queue,
        })
    }
}

/// A whole SDVM cluster inside one process, on the in-memory transport.
pub struct InProcessCluster {
    hub: MemHub,
    registry: Arc<AppRegistry>,
    trace: Option<TraceLog>,
    sites: Vec<Site>,
}

impl InProcessCluster {
    /// Build a cluster of `n` sites with identical configuration.
    pub fn new(n: usize, config: SiteConfig) -> SdvmResult<Self> {
        Self::with_configs(vec![config; n], None)
    }

    /// Build a cluster with per-site configurations and optional tracing.
    pub fn with_configs(configs: Vec<SiteConfig>, trace: Option<TraceLog>) -> SdvmResult<Self> {
        let mut iter = configs.into_iter();
        let Some(first_cfg) = iter.next() else {
            return Err(SdvmError::InvalidState(
                "cluster needs at least one site".into(),
            ));
        };
        let hub = MemHub::new();
        let registry = AppRegistry::new();
        let mut cluster = InProcessCluster {
            hub,
            registry,
            trace,
            sites: Vec::new(),
        };
        let first = cluster.build_site(first_cfg);
        first.start_first();
        cluster.sites.push(first);
        for cfg in iter {
            cluster.add_site(cfg)?;
        }
        Ok(cluster)
    }

    fn build_site(&self, config: SiteConfig) -> Site {
        let transport: Arc<dyn Transport> = Arc::new(self.hub.endpoint());
        Site::new(config, transport, self.registry.clone(), self.trace.clone())
    }

    /// Dynamic entry at runtime (§3.4): add a site, joined through the
    /// first site. Returns its index.
    pub fn add_site(&mut self, config: SiteConfig) -> SdvmResult<usize> {
        let contact = self.sites[0].addr();
        self.add_site_via(config, &contact)
    }

    /// Add a site joining through an arbitrary contact address.
    pub fn add_site_via(
        &mut self,
        config: SiteConfig,
        contact: &sdvm_types::PhysicalAddr,
    ) -> SdvmResult<usize> {
        let site = self.build_site(config);
        site.sign_on(contact)?;
        self.sites.push(site);
        Ok(self.sites.len() - 1)
    }

    /// Access a site by index.
    pub fn site(&self, i: usize) -> &Site {
        &self.sites[i]
    }

    /// Number of sites (including departed ones' slots).
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True if the cluster has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The shared in-process transport hub (fault injection, severing).
    pub fn hub(&self) -> &MemHub {
        &self.hub
    }

    /// The shared code registry.
    pub fn registry(&self) -> &Arc<AppRegistry> {
        &self.registry
    }

    /// Orderly sign-off of site `i` (dynamic exit at runtime, §3.4).
    pub fn sign_off(&self, i: usize) -> SdvmResult<()> {
        self.sites[i].sign_off()
    }

    /// Crash site `i` abruptly: its network endpoint is severed and the
    /// daemon killed without relocation.
    pub fn crash(&self, i: usize) {
        self.hub.sever(&self.sites[i].addr());
        self.sites[i].crash();
    }

    /// Freeze site `i` (GC-pause emulation): its threads park at the next
    /// gate but its endpoint stays reachable, so peers see pure silence.
    pub fn pause_site(&self, i: usize) {
        self.sites[i].pause();
    }

    /// Unfreeze site `i`; its liveness clocks are refreshed first so it
    /// does not mistake its own pause for cluster-wide death.
    pub fn resume_site(&self, i: usize) {
        self.sites[i].resume();
    }

    /// Blackhole all traffic between sites `a` and `b` (both directions)
    /// until [`InProcessCluster::heal`].
    pub fn partition(&self, a: usize, b: usize) {
        self.hub
            .partition(&self.sites[a].addr(), &self.sites[b].addr());
    }

    /// Remove the partition between sites `a` and `b`.
    pub fn heal(&self, a: usize, b: usize) {
        self.hub.heal(&self.sites[a].addr(), &self.sites[b].addr());
    }

    /// Arm silent result corruption on site `i`: the `nth` outgoing
    /// result send from that site gets `bit` flipped in its value.
    /// Deterministic — the trigger is a send count, not a coin flip.
    pub fn corrupt_results(&self, i: usize, nth: u32, bit: u8) {
        self.sites[i].corrupt_results(nth, bit);
    }
}
