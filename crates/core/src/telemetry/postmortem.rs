//! The crash-triggered flight recorder (ops plane).
//!
//! A site configured with [`postmortem_dir`] keeps a black box: when a
//! crash verdict lands, a frame is quarantined as poison, replicated
//! execution detects result divergence, or the watchdog declares a
//! program stuck, the recorder dumps the trace-bus tail, a metrics
//! snapshot, the membership view and the config into
//! `postmortem-<site>-<seq>.json` — the evidence an operator needs
//! *after* the incident, captured at the moment it happened.
//!
//! The dump itself runs on a helper thread (via [`Task::Run`]), so the
//! emitting hot path pays one branch and one channel send; it is
//! rate-limited and bounded in file count so a crash storm cannot fill
//! the disk; and each file is written to a temp name and renamed, so a
//! half-written postmortem is never observed.
//!
//! [`postmortem_dir`]: crate::config::SiteConfig::postmortem_dir
//! [`Task::Run`]: crate::site::Task

use crate::site::SiteInner;
use crate::telemetry::export::json_escape;
use crate::trace::TraceEvent;
use parking_lot::Mutex;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bound on postmortem files one recorder writes over its life —
/// a crash storm must not fill the disk.
pub const MAX_POSTMORTEM_FILES: u64 = 16;

/// Minimum spacing between two dumps; triggers inside the window are
/// counted but not dumped (the next dump's `suppressed` field says how
/// many).
pub const POSTMORTEM_MIN_INTERVAL: Duration = Duration::from_secs(1);

/// How many trailing bus events a postmortem captures.
pub const POSTMORTEM_EVENT_WINDOW: usize = 512;

/// Classify a trace event as a flight-recorder trigger. Returns the
/// trigger name (stable, machine-matchable) and a human detail line.
pub(crate) fn trigger_of(ev: &TraceEvent) -> Option<(&'static str, String)> {
    match ev {
        TraceEvent::SiteGone {
            gone,
            crashed: true,
            ..
        } => Some((
            "declare_crashed",
            format!("site {} declared crashed", gone.0),
        )),
        TraceEvent::FrameQuarantined {
            frame,
            thread,
            cause,
            ..
        } => Some((
            "frame_quarantined",
            format!("frame {frame} thread {thread} quarantined: {cause}"),
        )),
        TraceEvent::ResultDivergence { frame, thread, .. } => Some((
            "result_divergence",
            format!("replica results diverged for frame {frame} thread {thread}"),
        )),
        TraceEvent::ProgramStuck { program, .. } => {
            Some(("program_stuck", format!("program {} stuck", program.0)))
        }
        _ => None,
    }
}

/// The per-site flight recorder. Cheap when idle: the emit path only
/// checks an `Option<FlightRecorder>` and matches the event kind.
pub struct FlightRecorder {
    dir: PathBuf,
    seq: AtomicU64,
    written: AtomicU64,
    suppressed: AtomicU64,
    last_dump: Mutex<Option<Instant>>,
}

impl FlightRecorder {
    /// Recorder writing into `dir` (created on first dump).
    pub fn new(dir: PathBuf) -> Self {
        FlightRecorder {
            dir,
            seq: AtomicU64::new(0),
            written: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
            last_dump: Mutex::new(None),
        }
    }

    /// Directory the recorder writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Postmortems written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Try to claim a dump slot: enforces the file-count bound and the
    /// rate limit. Suppressed triggers are counted into the next dump.
    pub(crate) fn try_claim(&self) -> bool {
        if self.written.load(Ordering::Relaxed) >= MAX_POSTMORTEM_FILES {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut last = self.last_dump.lock();
        if let Some(at) = *last {
            if at.elapsed() < POSTMORTEM_MIN_INTERVAL {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        }
        *last = Some(Instant::now());
        self.written.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Write one postmortem file. Runs on a helper thread — never on
    /// the thread that emitted the trigger. Returns the final path, or
    /// `None` when the filesystem refused (reported to stderr; the
    /// daemon must not die over its own black box).
    pub fn record(&self, site: &SiteInner, trigger: &str, detail: &str) -> Option<PathBuf> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let body = render_postmortem(site, trigger, detail, seq, self);
        let name = format!("postmortem-{}-{}.json", site.my_id().0, seq);
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!(".{name}.tmp"));
        let result = std::fs::create_dir_all(&self.dir)
            .and_then(|()| std::fs::write(&tmp, body))
            .and_then(|()| std::fs::rename(&tmp, &path));
        match result {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!(
                    "sdvm: flight recorder failed to write {}: {e}",
                    path.display()
                );
                let _ = std::fs::remove_file(&tmp);
                None
            }
        }
    }
}

/// Assemble the postmortem JSON by hand (the codebase's exporters are
/// deliberately serde-free; the black box follows suit).
fn render_postmortem(
    site: &SiteInner,
    trigger: &str,
    detail: &str,
    seq: u64,
    rec: &FlightRecorder,
) -> String {
    let status = site.site_mgr.status(site);
    let m = &status.metrics;
    let view = site.cluster.membership_view();
    let wall_micros = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut out = String::with_capacity(64 * 1024);
    let _ = write!(
        out,
        "{{\n  \"schema\": \"sdvm-postmortem-v1\",\n  \"seq\": {seq},\n  \"trigger\": \"{}\",\n  \"detail\": \"{}\",\n  \"wall_unix_micros\": {wall_micros},\n  \"suppressed_since_last\": {},\n",
        json_escape(trigger),
        json_escape(detail),
        rec.suppressed.swap(0, Ordering::Relaxed),
    );
    let _ = write!(
        out,
        "  \"site\": {},\n  \"incarnation\": {},\n  \"running\": {},\n  \"draining\": {},\n",
        site.my_id().0,
        site.my_incarnation(),
        site.is_running(),
        site.is_draining(),
    );
    // Config highlights: the knobs that decide crash behavior.
    let c = &site.config;
    let _ = writeln!(
        out,
        "  \"config\": {{\"slots\": {}, \"crash_tolerance\": {}, \"suspicion\": {}, \"heartbeat_interval_ms\": {}, \"suspect_timeout_ms\": {}, \"crash_timeout_ms\": {}, \"max_frame_retries\": {}, \"mem_shards\": {}}},",
        c.slots,
        c.crash_tolerance,
        c.suspicion,
        c.heartbeat_interval.as_millis(),
        c.suspect_timeout.as_millis(),
        c.crash_timeout.as_millis(),
        c.max_frame_retries,
        c.mem_shards,
    );
    let _ = writeln!(
        out,
        "  \"status\": {{\"queued_frames\": {}, \"busy_slots\": {}, \"objects\": {}, \"incomplete_frames\": {}, \"programs\": {}, \"known_sites\": {}, \"outbound_queued\": {}, \"dead_letters\": {}, \"delayed_frames\": {}}},",
        status.queued_frames,
        status.busy_slots,
        status.objects,
        status.incomplete_frames,
        status.programs,
        status.known_sites,
        status.outbound_queued,
        status.dead_letters,
        status.delayed_frames,
    );
    let _ = writeln!(
        out,
        "  \"metrics\": {{\"messages_sent\": {}, \"messages_received\": {}, \"frames_executed\": {}, \"frames_retried\": {}, \"frames_quarantined\": {}, \"crashes_declared\": {}, \"programs_stuck\": {}, \"result_divergence\": {}, \"bus_dropped\": {}, \"career_p50_us\": {}, \"career_p99_us\": {}}},",
        m.messages_sent,
        m.messages_received,
        m.frames_executed,
        m.frames_retried,
        m.frames_quarantined,
        m.crashes_declared,
        m.programs_stuck,
        m.result_divergence,
        m.bus_dropped,
        m.career_total_us.quantile(0.5),
        m.career_total_us.quantile(0.99),
    );
    out.push_str("  \"membership\": {\"members\": [");
    for (i, mv) in view.members.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"site\": {}, \"incarnation\": {}, \"suspected\": {}, \"accusers\": {}, \"silent_ms\": {}, \"queued_frames\": {}}}",
            mv.site.0,
            mv.incarnation,
            mv.suspected,
            mv.accusers,
            mv.silent_for.as_millis(),
            mv.load.queued_frames,
        );
    }
    out.push_str("], \"dead\": [");
    for (i, d) in view.dead.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{{\"site\": {}, \"floor\": {}}}", d.site.0, d.floor);
    }
    out.push_str("], \"succession\": [");
    for (i, (from, to)) in view.succession.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{}, {}]", from.0, to.0);
    }
    out.push_str("]},\n");
    // Trace-bus tail: the last events before the trigger, wall-clocked.
    out.push_str("  \"events\": [");
    if let Some(t) = &site.trace {
        let events = t.timestamped();
        let skip = events.len().saturating_sub(POSTMORTEM_EVENT_WINDOW);
        for (i, e) in events[skip..].iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"seq\": {}, \"site_seq\": {}, \"at_micros\": {}, \"event\": \"{}\"}}",
                e.seq,
                e.site_seq,
                e.at_micros,
                json_escape(&format!("{:?}", e.event)),
            );
        }
        if events.len() > skip {
            out.push('\n');
        }
        out.push_str("  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use sdvm_types::{GlobalAddress, MicrothreadId, ProgramId, SiteId};
    use std::sync::Arc;

    #[test]
    fn triggers_classify_the_four_black_box_events() {
        let gone = TraceEvent::SiteGone {
            site: SiteId(1),
            gone: SiteId(2),
            crashed: true,
        };
        assert_eq!(trigger_of(&gone).unwrap().0, "declare_crashed");
        let benign = TraceEvent::SiteGone {
            site: SiteId(1),
            gone: SiteId(2),
            crashed: false,
        };
        assert!(
            trigger_of(&benign).is_none(),
            "orderly sign-off is no incident"
        );
        let q = TraceEvent::FrameQuarantined {
            site: SiteId(1),
            frame: GlobalAddress::new(SiteId(1), 7),
            thread: MicrothreadId::new(ProgramId(1), 0),
            cause: Arc::new("poison".to_string()),
        };
        assert_eq!(trigger_of(&q).unwrap().0, "frame_quarantined");
        let d = TraceEvent::ResultDivergence {
            site: SiteId(1),
            frame: GlobalAddress::new(SiteId(1), 7),
            thread: MicrothreadId::new(ProgramId(1), 0),
        };
        assert_eq!(trigger_of(&d).unwrap().0, "result_divergence");
        let s = TraceEvent::ProgramStuck {
            site: SiteId(1),
            program: ProgramId(3),
        };
        assert_eq!(trigger_of(&s).unwrap().0, "program_stuck");
    }

    #[test]
    fn rate_limit_and_file_cap_claiming() {
        let r = FlightRecorder::new(std::env::temp_dir().join("sdvm-pm-test-claim"));
        assert!(r.try_claim(), "first claim passes");
        assert!(
            !r.try_claim(),
            "second claim inside the interval is suppressed"
        );
        assert_eq!(r.suppressed.load(Ordering::Relaxed), 1);
        // Exhaust the file budget: claims after the cap always fail.
        r.written.store(MAX_POSTMORTEM_FILES, Ordering::Relaxed);
        *r.last_dump.lock() = None;
        assert!(!r.try_claim(), "file cap wins even with the window open");
    }
}
